"""Fixed-width text tables for experiment reports."""

from __future__ import annotations

from collections.abc import Sequence


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_table(
    headers: Sequence[object],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    rule: str = "=",
) -> str:
    """Render a fixed-width table; floats are shown with two decimals.

    Examples
    --------
    >>> print(format_table(["x", "y"], [[1, 2.5], [10, 0.125]]))
    x   y
    1   2.50
    10  0.12
    """
    if rows and any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    formatted = [[_format_cell(c) for c in row] for row in rows]
    widths = [
        max(len(_format_cell(h)), *(len(r[i]) for r in formatted)) + 2
        if formatted
        else len(_format_cell(h)) + 2
        for i, h in enumerate(headers)
    ]
    lines = []
    if title is not None:
        bar = rule * max(len(title), 8)
        lines += [bar, title, bar]
    lines.append(
        "".join(_format_cell(h).ljust(w) for h, w in zip(headers, widths))
        .rstrip()
    )
    for row in formatted:
        lines.append(
            "".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)
