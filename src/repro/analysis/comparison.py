"""Side-by-side comparisons of seed engines and tag-selection methods.

Each engine/method reports its own internal spread estimate, which is
not comparable across estimators (RR coverage vs MC vs strict-path
sketches). These helpers therefore re-evaluate every candidate solution
with one shared Monte-Carlo estimator — the pattern every fair
comparison in the paper's evaluation (and this repo's benchmarks) uses.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.diffusion.monte_carlo import estimate_spread
from repro.graphs.tag_graph import TagGraph
from repro.seeds.api import ENGINES, find_seeds
from repro.sketch.theta import SketchConfig
from repro.tags.api import METHODS, find_tags
from repro.tags.paths import TagPath, TagSelectionConfig, collect_paths
from repro.utils.rng import ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.parallel import SamplingEngine


@dataclass(frozen=True)
class EngineReport:
    """One seed engine's outcome under a shared evaluator.

    Attributes
    ----------
    engine:
        Engine name.
    seeds:
        Selected seed set.
    internal_estimate:
        The engine's own spread estimate.
    verified_spread:
        The shared Monte-Carlo estimate for the same seed set.
    elapsed_seconds:
        Selection wall-clock time.
    """

    engine: str
    seeds: tuple[int, ...]
    internal_estimate: float
    verified_spread: float
    elapsed_seconds: float


def compare_seed_engines(
    graph: TagGraph,
    targets: Sequence[int],
    tags: Sequence[str],
    k: int,
    engines: Sequence[str] = ("trs", "ltrs", "lltrs"),
    config: SketchConfig = SketchConfig(),
    eval_samples: int = 300,
    rng: np.random.Generator | int | None = None,
    sampler: "SamplingEngine | None" = None,
) -> list[EngineReport]:
    """Run several engines on one query; verify all with one MC estimator."""
    rng = ensure_rng(rng)
    unknown = [e for e in engines if e not in ENGINES]
    if unknown:
        raise ValueError(f"unknown engines: {unknown}; expected {ENGINES}")
    reports = []
    for engine in engines:
        selection = find_seeds(
            graph, targets, tags, k, engine=engine, config=config, rng=rng,
            sampler=sampler,
        )
        verified = estimate_spread(
            graph, selection.seeds, targets, tags,
            num_samples=eval_samples, rng=rng, engine=sampler,
        )
        reports.append(
            EngineReport(
                engine=engine,
                seeds=selection.seeds,
                internal_estimate=selection.estimated_spread,
                verified_spread=verified,
                elapsed_seconds=selection.elapsed_seconds,
            )
        )
    return reports


@dataclass(frozen=True)
class TagMethodReport:
    """One tag-selection method's outcome under a shared evaluator."""

    method: str
    tags: tuple[str, ...]
    internal_estimate: float
    verified_spread: float
    elapsed_seconds: float


def compare_tag_methods(
    graph: TagGraph,
    seeds: Sequence[int],
    targets: Sequence[int],
    r: int,
    methods: Sequence[str] = METHODS,
    config: TagSelectionConfig = TagSelectionConfig(),
    eval_samples: int = 300,
    rng: np.random.Generator | int | None = None,
    paths: Sequence[TagPath] | None = None,
) -> list[TagMethodReport]:
    """Run both tag-selection methods over one shared path pool."""
    rng = ensure_rng(rng)
    unknown = [m for m in methods if m not in METHODS]
    if unknown:
        raise ValueError(f"unknown methods: {unknown}; expected {METHODS}")
    if paths is None:
        paths = collect_paths(graph, seeds, targets, config, rng)
    reports = []
    for method in methods:
        selection = find_tags(
            graph, seeds, targets, r,
            method=method, config=config, rng=rng, paths=paths,
        )
        verified = (
            estimate_spread(
                graph, seeds, targets, selection.tags,
                num_samples=eval_samples, rng=rng,
            )
            if selection.tags
            else 0.0
        )
        reports.append(
            TagMethodReport(
                method=method,
                tags=selection.tags,
                internal_estimate=selection.estimated_spread,
                verified_spread=verified,
                elapsed_seconds=selection.elapsed_seconds,
            )
        )
    return reports
