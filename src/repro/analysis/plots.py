"""Terminal-friendly plots: sparklines and trajectory charts.

No plotting libraries are available offline, so the examples and
benchmarks render optimization trajectories as unicode sparklines and
labelled ASCII lines.
"""

from __future__ import annotations

from collections.abc import Sequence

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline of ``values``.

    Examples
    --------
    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    >>> sparkline([5, 5, 5])
    '▁▁▁'
    >>> sparkline([])
    ''
    """
    data = [float(v) for v in values]
    if not data:
        return ""
    lo, hi = min(data), max(data)
    if hi <= lo:
        return _BLOCKS[0] * len(data)
    scale = (len(_BLOCKS) - 1) / (hi - lo)
    return "".join(_BLOCKS[int(round((v - lo) * scale))] for v in data)


def trajectory_chart(
    series: dict[str, Sequence[float]],
    width: int = 40,
) -> str:
    """Multi-line chart: one labelled sparkline per series, shared scale.

    All series are normalized against the global min/max so their
    relative levels are comparable — exactly what Table 6-style
    convergence comparisons need.
    """
    if not series:
        return ""
    all_values = [float(v) for vs in series.values() for v in vs]
    if not all_values:
        return ""
    lo, hi = min(all_values), max(all_values)
    span = hi - lo

    label_width = max(len(name) for name in series) + 2
    lines = []
    for name, values in series.items():
        data = [float(v) for v in values][:width]
        if span <= 0:
            bar = _BLOCKS[0] * len(data)
        else:
            scale = (len(_BLOCKS) - 1) / span
            bar = "".join(
                _BLOCKS[int(round((v - lo) * scale))] for v in data
            )
        last = f" {data[-1]:.1f}" if data else ""
        lines.append(f"{name.ljust(label_width)}{bar}{last}")
    return "\n".join(lines)
