"""Analysis helpers: engine/method comparisons and report formatting.

Everything the benchmark harness needs to build the paper's tables is
ordinary library functionality — comparing seed engines under one
independent estimator, comparing tag-selection methods over one path
pool, and rendering fixed-width tables — so it lives here where
downstream users can reach it too.
"""

from repro.analysis.comparison import (
    EngineReport,
    TagMethodReport,
    compare_seed_engines,
    compare_tag_methods,
)
from repro.analysis.plots import sparkline, trajectory_chart
from repro.analysis.tables import format_table

__all__ = [
    "EngineReport",
    "TagMethodReport",
    "compare_seed_engines",
    "compare_tag_methods",
    "format_table",
    "sparkline",
    "trajectory_chart",
]
