"""Command-line interface: run queries against TSV graphs from a shell.

Subcommands
-----------
``dataset``
    Generate a named synthetic analogue and write it as a TSV graph
    (plus a ``.targets`` file with a BFS-built target set).
``seeds``
    Top-k seed selection for a fixed tag set.
``tags``
    Top-r tag selection for a fixed seed set.
``joint``
    The full iterative algorithm (Algorithm 2).
``spread``
    Monte-Carlo estimate of σ(S, T, C1) for a given plan.
``report``
    Render a saved observability report (``--metrics-out`` output)
    as text, or convert its trace to Chrome trace-event JSON.
``serve``
    Long-lived campaign server: loads the graph once and answers
    line-delimited JSON queries on stdin (one response per line on
    stdout) with cross-query asset reuse. ``--warm FILE`` prebuilds
    assets from a JSON request array before serving; ``--warm-index``
    builds and freezes a shared possible-world index at startup.
    ``--listen HOST:PORT`` embeds a live telemetry endpoint
    (``/metrics`` in OpenMetrics text, ``/healthz``, ``/events``,
    ``/trace``, ``/debug/slow``); ``--events-out PATH`` mirrors the
    query-lifecycle event log (JSONL, schema ``repro.obs.events/2``)
    to a file, flushed even on SIGTERM/Ctrl-C, with optional
    size-based rotation (``--events-max-bytes`` / ``--events-backups``;
    with ``--workers N`` the causally merged fleet stream is written at
    shutdown instead). ``--trace PATH`` enables distributed tracing and
    writes the stitched Chrome trace at shutdown; ``--flight-slow-ms``
    tunes the slow-query flight recorder. QoS/overload knobs
    (``--shed-threshold`` / ``--stale-threshold``) and the seeded
    chaos harness (``--chaos-*``) are wired straight into the server.
``loadgen``
    Synthetic serving traffic against an embedded server: Zipfian tag
    popularity, overlapping target sets, a configurable class mix, and
    an open- or closed-loop arrival process; sweeps offered rates and
    writes a capacity report (``BENCH_load.json``, schema
    ``repro.bench.load/1``) with the max sustainable qps under the
    interactive p95 SLO and a full done/degraded/rejected breakdown.
    ``--replay`` reuses the op/class sequence from a recorded
    ``--events-out`` JSONL.
``top``
    Live single-screen dashboard for a ``--listen`` endpoint: scrapes
    ``/metrics`` + ``/healthz`` every ``--interval`` seconds and
    renders qps, cache hit ratio, per-op p50/p95/p99 latency, cache
    bytes/evictions, in-flight/queued, and uptime. Against a sharded
    fleet it adds a per-worker table (qps, in-flight, respawns, epoch)
    plus the unreachable-scrape counter.
``flightrec``
    Dump the slow-query flight recorder of a ``--listen`` endpoint
    (``/debug/slow``): recent rejected / cancelled / deadline-missed /
    slow queries, each with its QoS decisions and — when tracing is
    on — the stitched trace of the offending query.

All subcommands accept ``--seed`` for deterministic replays. Node lists
are comma-separated; target files contain one node id per line.

Query subcommands accept observability flags: ``--metrics-out PATH``
writes the full run report (metrics + trace + phase table, schema
``repro.obs.report/1``), ``--trace PATH`` writes the span trace as
Chrome trace-event JSON (loadable by Perfetto / chrome://tracing /
speedscope for flamegraphs), and ``--profile`` additionally enables
the per-kernel profiling hooks. Observability is off — and costs
nothing — unless one of these flags is given.

Sampler-enabled subcommands additionally expose the fault-tolerant
runtime: ``--retries`` (per-shard retry count), ``--deadline`` /
``--max-samples`` (run budget — a tripped limit prints the partial
result), and ``--checkpoint-dir`` / ``--resume`` (shard-granular
checkpointing; an interrupted run re-issued with ``--resume`` splices
the checkpointed prefixes back in and yields identical output).
``SIGTERM``/``Ctrl-C`` exit cleanly after flushing checkpoints.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys
from collections.abc import Sequence
from pathlib import Path

from repro import obs
from repro.core.baseline import BaselineConfig, baseline_greedy
from repro.core.joint import JointConfig, jointly_select
from repro.core.problem import JointQuery
from repro.datasets import bfs_targets
from repro.datasets.named import ALL_DATASETS
from repro.diffusion.monte_carlo import estimate_spread
from repro.exceptions import BudgetExceededError
from repro.graphs.io import load_tag_graph, save_tag_graph
from repro.seeds.api import ENGINES, find_seeds
from repro.sketch.theta import SketchConfig
from repro.tags.api import METHODS, find_tags


def _parse_nodes(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _read_targets(path: str) -> list[int]:
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    return [int(line) for line in lines if line.strip()]


def _parse_tags(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _make_sampler(args: argparse.Namespace):
    """Build a ``SamplingEngine`` from the sampler/runtime flags, or None.

    ``--retries`` or ``--checkpoint-dir`` without an explicit
    ``--sampler`` implies the vectorized engine — the runtime layer
    lives on the engine, so asking for it opts in.
    """
    mode = getattr(args, "sampler", None)
    retries = getattr(args, "retries", None)
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    if mode is None:
        if retries is None and checkpoint_dir is None:
            return None
        mode = "vectorized"
    from repro.engine.parallel import SamplingEngine

    retry_policy = None
    if retries is not None:
        from repro.engine.runtime import RetryPolicy

        retry_policy = RetryPolicy(max_attempts=max(int(retries), 0) + 1)
    checkpoint = None
    if checkpoint_dir is not None:
        from repro.engine.checkpoint import CheckpointManager

        checkpoint = CheckpointManager(
            checkpoint_dir, resume=bool(getattr(args, "resume", False))
        )
    return SamplingEngine(
        mode=mode,
        workers=getattr(args, "workers", 1),
        retry_policy=retry_policy,
        checkpoint=checkpoint,
    )


def _make_budget(args: argparse.Namespace):
    """Build a ``RunBudget`` from ``--deadline``/``--max-samples``, or None."""
    deadline = getattr(args, "deadline", None)
    max_samples = getattr(args, "max_samples", None)
    if deadline is None and max_samples is None:
        return None
    from repro.engine.runtime import RunBudget

    return RunBudget(wall_seconds=deadline, max_samples=max_samples)


def _sampler_scope(sampler):
    """Context manager guaranteeing pool shutdown even on errors."""
    return sampler if sampler is not None else contextlib.nullcontext()


def _print_runtime_summary(sampler) -> None:
    summary = None if sampler is None else sampler.telemetry.summary()
    if summary and summary != "clean":
        print(f"runtime: {summary}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Joint seed & tag selection for targeted influence "
            "maximization (Ke, Khan, Cong; SIGMOD 2018)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ds = sub.add_parser("dataset", help="generate a synthetic dataset")
    ds.add_argument("name", choices=sorted(ALL_DATASETS))
    ds.add_argument("output", help="output TSV path")
    ds.add_argument("--scale", type=float, default=0.25)
    ds.add_argument("--targets", type=int, default=50,
                    help="also write a BFS target set of this size")
    ds.add_argument("--seed", type=int, default=0)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("graph", help="TSV graph file")
        p.add_argument("--targets-file", required=True,
                       help="file with one target node id per line")
        p.add_argument("--seed", type=int, default=0)

    def add_sampler(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--sampler",
            choices=("scalar", "vectorized", "bitparallel"),
            default=None,
            help=(
                "sampling substrate: 'vectorized' runs frontier-batched "
                "numpy kernels, 'bitparallel' packs 64 possible worlds "
                "per machine word (fastest); default keeps the scalar "
                "reference path"
            ),
        )
        p.add_argument(
            "--workers", type=int, default=1,
            help=(
                "worker processes for the vectorized/bitparallel "
                "samplers (default 1); multi-worker runs share the "
                "graph via shared memory"
            ),
        )
        p.add_argument(
            "--retries", type=int, default=None,
            help=(
                "retries per shard for transient failures (implies "
                "--sampler vectorized; engine default is 2)"
            ),
        )
        p.add_argument(
            "--deadline", type=float, default=None,
            help=(
                "wall-clock budget in seconds; when it trips, the "
                "partial result computed so far is printed"
            ),
        )
        p.add_argument(
            "--max-samples", type=int, default=None,
            help="cap on total RR sets / cascades drawn (run budget)",
        )
        p.add_argument(
            "--checkpoint-dir", default=None,
            help=(
                "directory for shard-granular checkpoints (implies "
                "--sampler vectorized)"
            ),
        )
        p.add_argument(
            "--resume", action="store_true",
            help=(
                "resume from matching checkpoints in --checkpoint-dir; "
                "the spliced run is bit-identical to an uninterrupted one"
            ),
        )

    def add_obs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--metrics-out", default=None, metavar="PATH",
            help=(
                "write the full observability report (metrics + trace + "
                "phases, JSON schema repro.obs.report/1) to PATH"
            ),
        )
        p.add_argument(
            "--trace", default=None, metavar="PATH",
            help=(
                "write the span trace as Chrome trace-event JSON to PATH "
                "(open in Perfetto / chrome://tracing for a flamegraph)"
            ),
        )
        p.add_argument(
            "--profile", action="store_true",
            help=(
                "also enable per-kernel profiling hooks (hot-kernel call "
                "counts and timing histograms; implies observability on)"
            ),
        )

    seeds = sub.add_parser("seeds", help="top-k seeds for fixed tags")
    add_common(seeds)
    seeds.add_argument("-k", type=int, required=True)
    seeds.add_argument("--tags", required=True,
                       help="comma-separated tag set")
    seeds.add_argument("--engine", choices=ENGINES, default="trs")
    add_sampler(seeds)
    add_obs(seeds)

    tags = sub.add_parser("tags", help="top-r tags for fixed seeds")
    add_common(tags)
    tags.add_argument("-r", type=int, required=True)
    tags.add_argument("--seeds", required=True,
                      help="comma-separated seed node ids")
    tags.add_argument("--method", choices=METHODS, default="batch")
    add_obs(tags)

    joint = sub.add_parser("joint", help="joint top-k seeds and top-r tags")
    add_common(joint)
    joint.add_argument("-k", type=int, required=True)
    joint.add_argument("-r", type=int, required=True)
    joint.add_argument("--baseline", action="store_true",
                       help="use the interleaved greedy baseline instead")
    joint.add_argument("--max-rounds", type=int, default=4)
    add_sampler(joint)
    add_obs(joint)

    spread = sub.add_parser("spread", help="estimate σ(S, T, C1) by MC")
    add_common(spread)
    spread.add_argument("--seeds", required=True)
    spread.add_argument("--tags", required=True)
    spread.add_argument("--samples", type=int, default=500)
    add_sampler(spread)
    add_obs(spread)

    compare = sub.add_parser(
        "compare", help="compare seed engines on one query"
    )
    add_common(compare)
    compare.add_argument("-k", type=int, required=True)
    compare.add_argument("--tags", required=True)
    compare.add_argument(
        "--engines", default="trs,imm,lltrs",
        help="comma-separated engine list",
    )
    add_sampler(compare)
    add_obs(compare)

    serve = sub.add_parser(
        "serve", help="serve campaign queries as line-delimited JSON"
    )
    serve.add_argument("graph", help="TSV graph file")
    serve.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="default seed engine for requests that omit one",
    )
    serve.add_argument(
        "--pool-size", type=int, default=4,
        help="worker threads executing queries (default 4)",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=32,
        help=(
            "queries allowed to wait beyond the running ones; submits "
            "past pool-size + queue-capacity are rejected (default 32)"
        ),
    )
    serve.add_argument(
        "--cache-bytes", type=int, default=256 * 1024 * 1024,
        help="byte budget for the shared asset cache (default 256 MiB)",
    )
    serve.add_argument(
        "--warm", default=None, metavar="FILE",
        help=(
            "JSON array of protocol requests to execute (and thereby "
            "cache) before reading stdin"
        ),
    )
    serve.add_argument(
        "--warm-index", default=None, metavar="TAGS",
        help=(
            "comma-separated tags (or 'all') to index and freeze at "
            "startup for ltrs/itrs queries"
        ),
    )
    serve.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the final serve.* metrics snapshot as JSON to PATH",
    )
    serve.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help=(
            "embed a live telemetry HTTP endpoint serving /metrics "
            "(OpenMetrics text), /healthz, /events, /trace, and "
            "/debug/slow; port 0 picks a free port (the resolved URL "
            "is printed to stderr)"
        ),
    )
    serve.add_argument(
        "--events-out", default=None, metavar="PATH",
        help=(
            "mirror query-lifecycle events to PATH as JSONL (schema "
            "repro.obs.events/2), flushed even on SIGTERM/Ctrl-C; with "
            "--workers N the causally merged fleet stream is written "
            "once at shutdown instead of streaming"
        ),
    )
    serve.add_argument(
        "--events-max-bytes", type=int, default=None, metavar="N",
        help=(
            "rotate the --events-out file when it would exceed N bytes "
            "(default: never rotate)"
        ),
    )
    serve.add_argument(
        "--events-backups", type=int, default=3, metavar="N",
        help=(
            "rotated event-file generations to keep (default 3; with "
            "--events-max-bytes, disk use is bounded by (N+1) files)"
        ),
    )
    serve.add_argument(
        "--telemetry-interval", type=float, default=1.0,
        help="exporter snapshot interval in seconds for --listen (default 1)",
    )
    serve.add_argument(
        "--telemetry-window", type=float, default=60.0,
        help="rolling SLO window in seconds for --listen (default 60)",
    )
    serve.add_argument(
        "--slo-target", type=float, default=0.999,
        help="availability SLO target for the error budget (default 0.999)",
    )
    serve.add_argument(
        "--shed-threshold", type=float, default=None, metavar="FRAC",
        help=(
            "utilization at which best_effort queries degrade to the "
            "reduced-θ approximate tier (default 0.6)"
        ),
    )
    serve.add_argument(
        "--stale-threshold", type=float, default=None, metavar="FRAC",
        help=(
            "utilization past which best_effort queries are served from "
            "resident cache only, else shed (default 0.85)"
        ),
    )
    serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help=(
            "enable distributed tracing and write the Chrome "
            "trace-event JSON of every served query to PATH at "
            "shutdown (with --workers N: the fleet-stitched trace, "
            "worker spans clock-aligned under the router's); also "
            "served live at the --listen /trace route"
        ),
    )
    serve.add_argument(
        "--flight-slow-ms", type=float, default=None, metavar="MS",
        help=(
            "flight-record successful queries slower than MS ms "
            "(rejections, cancellations and deadline misses are always "
            "recorded; inspect via /debug/slow or 'repro flightrec')"
        ),
    )
    serve.add_argument(
        "--mutable", action="store_true",
        help=(
            "serve a versioned mutable graph: accept apply_edits "
            "requests, repair cached RR sketches incrementally, and "
            "tag every reply with its graph epoch"
        ),
    )
    serve.add_argument(
        "--repair-mode", choices=("scalar", "bitparallel"),
        default="scalar",
        help=(
            "RR-sampling kernel for repairable sketches under "
            "--mutable (default scalar)"
        ),
    )

    def add_chaos(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--chaos-seed", type=int, default=None, metavar="SEED",
            help=(
                "enable the deterministic serve-layer fault plan with "
                "this seed (required for the other --chaos-* flags)"
            ),
        )
        p.add_argument(
            "--chaos-admission-rate", type=float, default=0.0,
            help="probability of an injected error at admission",
        )
        p.add_argument(
            "--chaos-dequeue-rate", type=float, default=0.0,
            help="probability of an injected error at dequeue",
        )
        p.add_argument(
            "--chaos-build-error-rate", type=float, default=0.0,
            help="probability of failing an asset build (trips breakers)",
        )
        p.add_argument(
            "--chaos-build-slow-rate", type=float, default=0.0,
            help="probability of slowing an asset build",
        )
        p.add_argument(
            "--chaos-build-slow-seconds", type=float, default=0.05,
            help="sleep injected by --chaos-build-slow-rate (default 0.05)",
        )
        p.add_argument(
            "--chaos-deadline-skew", type=float, default=0.0,
            help=(
                "seconds subtracted from every query deadline at "
                "admission (models a fast-running clock)"
            ),
        )

    add_chaos(serve)
    add_sampler(serve)

    loadgen = sub.add_parser(
        "loadgen",
        help=(
            "drive an embedded campaign server with synthetic traffic "
            "and write a capacity report (BENCH_load.json)"
        ),
    )
    loadgen.add_argument("graph", help="TSV graph file")
    loadgen.add_argument(
        "--rates", default="4,8,16", metavar="QPS[,QPS...]",
        help="offered rates to sweep, comma-separated (default 4,8,16)",
    )
    loadgen.add_argument(
        "--queries", type=int, default=60,
        help="queries issued at each swept rate (default 60)",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--slo-ms", type=float, default=500.0,
        help="interactive p95 SLO the capacity verdict uses (default 500)",
    )
    loadgen.add_argument(
        "--out", default="BENCH_load.json", metavar="PATH",
        help="capacity report path (default BENCH_load.json)",
    )
    loadgen.add_argument(
        "--pool-size", type=int, default=4,
        help="server worker threads (default 4)",
    )
    loadgen.add_argument(
        "--queue-capacity", type=int, default=8,
        help="server queue capacity beyond the pool (default 8)",
    )
    loadgen.add_argument(
        "--closed-loop", action="store_true",
        help=(
            "closed-loop mode: N synchronous clients back to back "
            "instead of scheduled open-loop arrivals"
        ),
    )
    loadgen.add_argument(
        "--concurrency", type=int, default=8,
        help="closed-loop client count (default 8)",
    )
    loadgen.add_argument(
        "--replay", default=None, metavar="EVENTS_JSONL",
        help=(
            "replay the op/class sequence from a serve --events-out "
            "JSONL instead of drawing from the synthetic mixes"
        ),
    )
    loadgen.add_argument(
        "--theta-max", type=int, default=2000,
        help="sketch theta_max for the embedded server (default 2000)",
    )
    add_chaos(loadgen)

    top = sub.add_parser(
        "top", help="live dashboard for a serve --listen endpoint"
    )
    top.add_argument(
        "url", help="telemetry endpoint base URL (http://HOST:PORT)"
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between dashboard refreshes (default 2)",
    )
    top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="render N frames then exit (default 0 = until Ctrl-C)",
    )
    top.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (same as --iterations 1)",
    )

    flightrec = sub.add_parser(
        "flightrec",
        help="dump the slow-query flight recorder of a serve --listen "
             "endpoint",
    )
    flightrec.add_argument(
        "url", help="telemetry endpoint base URL (http://HOST:PORT)"
    )
    flightrec.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="only the most recent N flight records (default: all)",
    )
    flightrec.add_argument(
        "--json", action="store_true",
        help="print the raw repro.obs.flight/1 JSON document",
    )

    report = sub.add_parser(
        "report", help="render a saved observability report"
    )
    report.add_argument(
        "report_file", help="JSON report written by --metrics-out"
    )
    report.add_argument(
        "--chrome", default=None, metavar="PATH",
        help=(
            "also convert the report's trace to Chrome trace-event JSON "
            "at PATH (flamegraph form)"
        ),
    )

    learn = sub.add_parser(
        "learn", help="learn a tag graph from an interaction log"
    )
    learn.add_argument("log", help="CSV log: timestamp,user,tag")
    learn.add_argument(
        "friendships",
        help="TSV friendship graph (only its edges are used)",
    )
    learn.add_argument("output", help="output TSV graph path")
    learn.add_argument("--window", type=float, default=50.0)
    learn.add_argument("--a", type=float, default=5.0)
    learn.add_argument(
        "--method", choices=("frequency", "bernoulli"), default="frequency"
    )

    return parser


def _cmd_dataset(args: argparse.Namespace) -> int:
    data = ALL_DATASETS[args.name](scale=args.scale, seed=args.seed)
    save_tag_graph(data.graph, args.output)
    targets = bfs_targets(
        data.graph, min(args.targets, data.graph.num_nodes)
    )
    targets_path = Path(args.output).with_suffix(".targets")
    targets_path.write_text(
        "\n".join(str(t) for t in targets.tolist()) + "\n", encoding="utf-8"
    )
    print(
        f"wrote {data.graph.num_nodes} nodes / {data.graph.num_edges} "
        f"edges / {data.graph.num_tags} tags to {args.output}"
    )
    print(f"wrote {targets.size} targets to {targets_path}")
    return 0


def _cmd_seeds(args: argparse.Namespace) -> int:
    graph = load_tag_graph(args.graph)
    targets = _read_targets(args.targets_file)
    sampler = _make_sampler(args)
    with _sampler_scope(sampler):
        selection = find_seeds(
            graph, targets, _parse_tags(args.tags), args.k,
            engine=args.engine, config=SketchConfig(), rng=args.seed,
            sampler=sampler, budget=_make_budget(args),
        )
    print(f"seeds: {','.join(str(s) for s in selection.seeds)}")
    print(f"estimated spread: {selection.estimated_spread:.3f}")
    _print_runtime_summary(sampler)
    return 0


def _cmd_tags(args: argparse.Namespace) -> int:
    graph = load_tag_graph(args.graph)
    targets = _read_targets(args.targets_file)
    selection = find_tags(
        graph, _parse_nodes(args.seeds), targets, args.r,
        method=args.method, rng=args.seed,
    )
    print(f"tags: {','.join(selection.tags)}")
    print(f"estimated spread: {selection.estimated_spread:.3f}")
    return 0


def _cmd_joint(args: argparse.Namespace) -> int:
    graph = load_tag_graph(args.graph)
    targets = _read_targets(args.targets_file)
    query = JointQuery(targets, k=args.k, r=args.r)
    sampler = _make_sampler(args)
    with _sampler_scope(sampler):
        if args.baseline:
            result = baseline_greedy(
                graph, query, BaselineConfig(), rng=args.seed
            )
        else:
            result = jointly_select(
                graph, query, JointConfig(max_rounds=args.max_rounds),
                rng=args.seed, sampler=sampler, budget=_make_budget(args),
            )
    print(f"seeds: {','.join(str(s) for s in result.seeds)}")
    print(f"tags: {','.join(result.tags)}")
    print(f"spread: {result.spread:.3f} / {query.num_targets}")
    print(f"rounds: {result.rounds}  converged: {result.converged}")
    _print_runtime_summary(sampler)
    return 0


def _cmd_spread(args: argparse.Namespace) -> int:
    graph = load_tag_graph(args.graph)
    targets = _read_targets(args.targets_file)
    sampler = _make_sampler(args)
    with _sampler_scope(sampler):
        value = estimate_spread(
            graph, _parse_nodes(args.seeds), targets, _parse_tags(args.tags),
            num_samples=args.samples, rng=args.seed,
            engine=sampler, budget=_make_budget(args),
        )
    print(f"spread: {value:.3f} / {len(set(targets))}")
    _print_runtime_summary(sampler)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis import compare_seed_engines, format_table

    graph = load_tag_graph(args.graph)
    targets = _read_targets(args.targets_file)
    engines = [e.strip() for e in args.engines.split(",") if e.strip()]
    sampler = _make_sampler(args)
    with _sampler_scope(sampler):
        reports = compare_seed_engines(
            graph, targets, _parse_tags(args.tags), args.k,
            engines=engines, rng=args.seed, sampler=sampler,
        )
    print(
        format_table(
            ["engine", "verified spread", "time s"],
            [
                [r.engine, r.verified_spread, r.elapsed_seconds]
                for r in reports
            ],
        )
    )
    _print_runtime_summary(sampler)
    return 0


def _cmd_learn(args: argparse.Namespace) -> int:
    from repro.learning import InteractionLog, LearningConfig, learn_tag_graph

    log = InteractionLog.load(args.log)
    friend_graph = load_tag_graph(args.friendships)
    friendships = [
        (int(friend_graph.src[e]), int(friend_graph.dst[e]))
        for e in range(friend_graph.num_edges)
    ]
    learned = learn_tag_graph(
        log, friendships, num_nodes=friend_graph.num_nodes,
        config=LearningConfig(
            window=args.window, a=args.a, method=args.method
        ),
    )
    save_tag_graph(learned, args.output)
    print(
        f"learned {learned.num_edges} edges / {learned.num_tags} tags "
        f"from {len(log)} events; wrote {args.output}"
    )
    return 0


def _chaos_kwargs(args: argparse.Namespace):
    """``ServeFaultPlan`` constructor kwargs from the flags, or None.

    Kept as plain kwargs (not a plan instance) so sharded serving can
    ship them to worker processes — the plan itself holds a lock and is
    not picklable.
    """
    if getattr(args, "chaos_seed", None) is None:
        return None
    return {
        "seed": args.chaos_seed,
        "admission_error_rate": args.chaos_admission_rate,
        "dequeue_error_rate": args.chaos_dequeue_rate,
        "build_error_rate": args.chaos_build_error_rate,
        "build_slow_rate": args.chaos_build_slow_rate,
        "build_slow_seconds": args.chaos_build_slow_seconds,
        "deadline_skew_s": args.chaos_deadline_skew,
    }


def _make_chaos(args: argparse.Namespace):
    """Build a ``ServeFaultPlan`` from the ``--chaos-*`` flags, or None."""
    kwargs = _chaos_kwargs(args)
    if kwargs is None:
        return None
    from repro.serve import ServeFaultPlan

    return ServeFaultPlan(**kwargs)


def _make_qos(args: argparse.Namespace):
    """Build a non-default ``QosConfig`` from flags, or None."""
    shed = getattr(args, "shed_threshold", None)
    stale = getattr(args, "stale_threshold", None)
    flight_slow = getattr(args, "flight_slow_ms", None)
    if shed is None and stale is None and flight_slow is None:
        return None
    from repro.serve import QosConfig

    defaults = QosConfig()
    return QosConfig(
        shed_threshold=shed if shed is not None else defaults.shed_threshold,
        stale_threshold=(
            stale if stale is not None else defaults.stale_threshold
        ),
        flight_slow_ms=flight_slow,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import METRICS_SCHEMA, CampaignServer, serve_stdio

    graph = load_tag_graph(args.graph)
    config = (
        JointConfig() if args.engine is None
        else JointConfig(seed_engine=args.engine)
    )
    # ``--workers N`` (N > 1) boots the sharded multi-process service:
    # N worker processes, each a full CampaignServer on the shared
    # graph, behind one router speaking the identical wire protocol.
    # Worker engines run single-process (the fleet IS the parallelism).
    workers = int(getattr(args, "workers", 1) or 1)
    sharded = workers > 1
    sampler = None
    if sharded:
        from repro.serve import ShardedCampaignService, WorkerSpec

        spec = WorkerSpec(
            config=config,
            engine_mode=getattr(args, "sampler", None),
            pool_size=args.pool_size,
            queue_capacity=args.queue_capacity,
            cache_bytes=args.cache_bytes,
            default_deadline=args.deadline,
            default_max_samples=args.max_samples,
            qos=_make_qos(args),
            chaos=_chaos_kwargs(args),
            mutable=args.mutable,
            repair_mode=args.repair_mode,
        )
        server = ShardedCampaignService(
            graph, workers=workers, spec=spec,
            tracing=args.trace is not None,
        )
        print(
            f"sharded: {workers} worker processes "
            f"(pids {sorted(server.worker_pids().values())})",
            file=sys.stderr,
        )
    else:
        sampler = _make_sampler(args)
        server = CampaignServer(
            graph,
            config=config,
            sampler=sampler,
            pool_size=args.pool_size,
            queue_capacity=args.queue_capacity,
            cache_bytes=args.cache_bytes,
            default_deadline=args.deadline,
            default_max_samples=args.max_samples,
            qos=_make_qos(args),
            chaos=_make_chaos(args),
            mutable=args.mutable,
            repair_mode=args.repair_mode,
            tracing=args.trace is not None,
        )
    if args.events_out is not None and not sharded:
        server.events.open_sink(
            args.events_out,
            max_bytes=args.events_max_bytes,
            backups=args.events_backups,
        )
    telemetry = None
    handled = 0
    with _sampler_scope(sampler):
        try:
            if args.listen is not None:
                from repro.obs.live import start_live_telemetry

                telemetry = start_live_telemetry(
                    server,
                    listen=args.listen,
                    interval=args.telemetry_interval,
                    window_seconds=args.telemetry_window,
                    slo_target=args.slo_target,
                )
                print(
                    f"telemetry: listening on {telemetry.url}",
                    file=sys.stderr,
                )
            if args.warm_index:
                tags = (
                    None if args.warm_index.strip() == "all"
                    else _parse_tags(args.warm_index)
                )
                if sharded:
                    # Every worker may serve index-backed queries, so
                    # warming broadcasts rather than affinity-routes.
                    replies = server.broadcast(
                        {"op": "warm_index", "tags": tags}
                    )
                    built = (
                        replies[0].get("warmed_tags", []) if replies else []
                    )
                else:
                    built = server.warm_index(tags)
                print(
                    f"warm-index: froze {len(built)} tag indexes",
                    file=sys.stderr,
                )
            if args.warm:
                requests = json.loads(
                    Path(args.warm).read_text(encoding="utf-8")
                )
                if sharded:
                    # Affinity-route each warm request: it caches on
                    # the worker that will serve the repeat query.
                    from repro.serve import handle_request

                    warmed = sum(
                        1 for r in requests
                        if handle_request(server, dict(r)).get("ok")
                    )
                else:
                    warmed = server.warm(requests)
                stats = server.cache_stats()
                print(
                    f"warm: executed {warmed} requests "
                    f"({stats.entries} assets, {stats.bytes} bytes cached)",
                    file=sys.stderr,
                )
            handled = serve_stdio(server)
        finally:
            if telemetry is not None:
                telemetry.close()
            # The stitched trace and the merged fleet event stream both
            # round-trip to the workers, so they must be captured while
            # the fleet is still up — before close().
            trace_events = None
            if args.trace is not None:
                try:
                    trace_events = server.chrome_trace()
                except Exception as exc:  # pragma: no cover - teardown race
                    print(f"trace drain failed: {exc}", file=sys.stderr)
                    trace_events = []
            merged_events = None
            if sharded and args.events_out is not None:
                try:
                    merged_events = server.events_payload()
                except Exception as exc:  # pragma: no cover - teardown race
                    print(f"event merge failed: {exc}", file=sys.stderr)
            server.close()
            if trace_events is not None:
                Path(args.trace).write_text(
                    json.dumps(trace_events, indent=2), encoding="utf-8"
                )
                print(
                    f"wrote {len(trace_events)} trace events to "
                    f"{args.trace}",
                    file=sys.stderr,
                )
            if merged_events is not None:
                with Path(args.events_out).open(
                    "w", encoding="utf-8"
                ) as fh:
                    for record in merged_events.get("events", []):
                        fh.write(json.dumps(record) + "\n")
                print(
                    f"wrote {len(merged_events.get('events', []))} merged "
                    f"fleet events to {args.events_out}",
                    file=sys.stderr,
                )
            # close() flushed the event sink; closing the log also
            # releases a --events-out file so even the SIGTERM path
            # leaves a complete JSONL behind.
            events_total = server.events.total
            server.events.close()
            if args.events_out is not None and not sharded:
                print(
                    f"wrote {events_total} events to {args.events_out}",
                    file=sys.stderr,
                )
            if args.metrics_out is not None:
                snapshot = {
                    "schema": METRICS_SCHEMA,
                    "metrics": server.metrics(),
                    "cache": server.cache_stats().as_dict(),
                }
                Path(args.metrics_out).write_text(
                    json.dumps(snapshot, indent=2), encoding="utf-8"
                )
                print(
                    f"wrote serve metrics to {args.metrics_out}",
                    file=sys.stderr,
                )
    print(f"served {handled} requests", file=sys.stderr)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve import CampaignServer
    from repro.serve.loadgen import (
        LoadSpec,
        capacity_report,
        replay_ops_from_events,
    )
    from repro.sketch.theta import SketchConfig

    graph = load_tag_graph(args.graph)
    rates = tuple(
        float(r) for r in args.rates.split(",") if r.strip()
    )
    spec = LoadSpec(
        seed=args.seed,
        queries_per_rate=args.queries,
        rates=rates,
        slo_p95_ms=args.slo_ms,
        open_loop=not args.closed_loop,
        concurrency=args.concurrency,
    )
    replay_ops = (
        replay_ops_from_events(args.replay)
        if args.replay is not None else None
    )
    config = JointConfig(
        sketch=SketchConfig(theta_max=args.theta_max, pilot_samples=50)
    )
    chaos = _make_chaos(args)

    def make_server():
        return CampaignServer(
            graph,
            config=config,
            pool_size=args.pool_size,
            queue_capacity=args.queue_capacity,
            chaos=chaos,
        )

    report = capacity_report(
        make_server, graph, spec, replay_ops=replay_ops
    )
    Path(args.out).write_text(
        json.dumps(report, indent=2), encoding="utf-8"
    )
    max_qps = report["max_sustainable_qps"]
    verdict = (
        f"max sustainable: {max_qps:g} qps at p95 <= {args.slo_ms:g} ms"
        if max_qps is not None
        else f"no swept rate met the {args.slo_ms:g} ms p95 SLO"
    )
    for row in report["rows"]:
        print(
            f"rate {row['rate_qps']:g} qps: {row['done']} done, "
            f"{row['degraded']} degraded, {row['rejected_total']} "
            f"rejected, {row['errors']} errors "
            f"(interactive p95 {row['p95_ms.interactive']} ms)",
            file=sys.stderr,
        )
    print(f"loadgen: {verdict}; wrote {args.out}", file=sys.stderr)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time
    import urllib.error
    import urllib.request

    from repro.obs.live import parse_openmetrics, render_dashboard

    base = args.url if "://" in args.url else f"http://{args.url}"
    base = base.rstrip("/")

    def fetch(path: str) -> str:
        with urllib.request.urlopen(base + path, timeout=5.0) as resp:
            return resp.read().decode("utf-8")

    frames = 1 if args.once else max(args.iterations, 0)
    rendered = 0
    previous = None
    previous_t = None
    while True:
        try:
            scrape = parse_openmetrics(fetch("/metrics"))
            try:
                health = json.loads(fetch("/healthz"))
            except urllib.error.HTTPError as exc:
                # /healthz answers 503 (with a JSON body) once closed.
                health = json.loads(exc.read().decode("utf-8"))
        except (urllib.error.URLError, OSError) as exc:
            print(f"repro top: cannot scrape {base}: {exc}", file=sys.stderr)
            return 1
        now = time.monotonic()
        dt = (now - previous_t) if previous_t is not None else None
        frame = render_dashboard(
            scrape, health, url=base, previous=previous, dt=dt
        )
        if rendered and frames != 1:
            sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
        sys.stdout.write(frame)
        sys.stdout.flush()
        rendered += 1
        if frames and rendered >= frames:
            return 0
        previous, previous_t = scrape, now
        time.sleep(args.interval)


def _cmd_flightrec(args: argparse.Namespace) -> int:
    import urllib.error
    import urllib.request

    base = args.url if "://" in args.url else f"http://{args.url}"
    url = base.rstrip("/") + "/debug/slow"
    if args.limit is not None:
        url += f"?limit={int(args.limit)}"
    try:
        with urllib.request.urlopen(url, timeout=5.0) as resp:
            payload = json.loads(resp.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"repro flightrec: cannot fetch {url}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    records = payload.get("records") or []
    slow_ms = payload.get("slow_ms")
    print(
        f"flight recorder: {len(records)} shown / "
        f"{payload.get('total', len(records))} recorded "
        f"(capacity {payload.get('capacity')}, slow_ms "
        f"{slow_ms if slow_ms is not None else '-'})"
    )
    for record in records:
        bits = [
            f"{str(record.get('reason') or '?'):<13}",
            f"op={record.get('op')}",
            f"class={record.get('qos_class') or record.get('class')}",
        ]
        for key, fmt in (("elapsed_ms", "elapsed={:.1f}ms"),
                         ("deadline_ms", "deadline={:.1f}ms")):
            value = record.get(key)
            if isinstance(value, (int, float)):
                bits.append(fmt.format(value))
        if record.get("code"):
            bits.append(f"code={record['code']}")
        if record.get("trace_id"):
            bits.append(f"trace={record['trace_id']}")
        spans = record.get("trace")
        if isinstance(spans, list) and spans:
            bits.append(f"spans={len(spans)}")
        print("  " + "  ".join(bits))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    report = json.loads(Path(args.report_file).read_text(encoding="utf-8"))
    sys.stdout.write(obs.render_report(report))
    if args.chrome is not None:
        events = obs.chrome_events_from_dicts(report.get("trace") or [])
        Path(args.chrome).write_text(
            json.dumps(events, indent=2), encoding="utf-8"
        )
        print(f"wrote {len(events)} trace events to {args.chrome}")
    return 0


_COMMANDS = {
    "dataset": _cmd_dataset,
    "seeds": _cmd_seeds,
    "tags": _cmd_tags,
    "joint": _cmd_joint,
    "spread": _cmd_spread,
    "compare": _cmd_compare,
    "learn": _cmd_learn,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "top": _cmd_top,
    "flightrec": _cmd_flightrec,
}


def _raise_keyboard_interrupt(signum, frame):  # pragma: no cover - signal
    raise KeyboardInterrupt


def _install_sigterm_handler() -> None:
    """Route SIGTERM through the KeyboardInterrupt path (flush + exit)."""
    try:
        signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    except ValueError:  # pragma: no cover - not the main thread
        pass


def _describe_partial(partial: object) -> str:
    if partial is None:
        return ""
    seeds = getattr(partial, "seeds", None)
    if seeds is not None:
        spread = getattr(partial, "estimated_spread", None)
        if spread is None:
            spread = getattr(partial, "spread", 0.0)
        return (
            f"partial seeds: {','.join(str(s) for s in seeds)} "
            f"(spread {spread:.3f})"
        )
    if isinstance(partial, float):
        return f"partial spread: {partial:.3f}"
    return f"partial: {partial!r}"


def _write_observability(
    observation, trace_path: str | None, metrics_path: str | None
) -> None:
    """Flush ``--trace`` / ``--metrics-out`` files from an observation.

    Runs after the command (even on budget-exceeded / interrupt exits),
    so partial runs still leave usable traces behind.
    """
    report = observation.report()
    if metrics_path is not None:
        Path(metrics_path).write_text(
            json.dumps(report, indent=2), encoding="utf-8"
        )
        print(f"wrote metrics report to {metrics_path}", file=sys.stderr)
    if trace_path is not None:
        events = observation.tracer.to_chrome_events()
        Path(trace_path).write_text(
            json.dumps(events, indent=2), encoding="utf-8"
        )
        print(f"wrote trace to {trace_path}", file=sys.stderr)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes: ``0`` success, ``75`` run budget exceeded (the partial
    result is printed first), ``130`` interrupted by Ctrl-C/SIGTERM
    (checkpoints, if configured, are flushed before exiting).
    """
    args = build_parser().parse_args(argv)
    _install_sigterm_handler()
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    profile = bool(getattr(args, "profile", False))
    if args.command == "serve":
        # The server observes each query in its own worker-thread scope
        # and writes its own ``--metrics-out`` snapshot and ``--trace``
        # dump (for serve, --trace means distributed tracing, collected
        # per query and — sharded — stitched across worker processes);
        # a main-thread scope would see nothing and clobber those files.
        trace_path = metrics_path = None
        profile = False
    observing = bool(trace_path or metrics_path or profile)
    scope = (
        obs.observe(profile=profile) if observing else contextlib.nullcontext()
    )
    observation = None
    try:
        with scope as observation:
            return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        checkpoint_dir = getattr(args, "checkpoint_dir", None)
        if checkpoint_dir:
            message = (
                "interrupted — checkpoints flushed; re-run with --resume "
                f"to continue from {checkpoint_dir}"
            )
        else:
            message = "interrupted"
        print(message, file=sys.stderr)
        return 130
    except BudgetExceededError as exc:
        print(f"run budget exceeded ({exc.reason})", file=sys.stderr)
        described = _describe_partial(exc.partial)
        if described:
            print(described)
        return 75
    finally:
        if observation is not None:
            _write_observability(observation, trace_path, metrics_path)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
