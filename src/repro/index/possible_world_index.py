"""Possible World Indexes — pre-sampled per-tag deterministic worlds.

A possible world index ``(I, c)`` for tag ``c`` is a subgraph of ``G``
obtained by keeping only edges with ``p(e | c) > 0`` and then dropping
each remaining edge with probability ``1 - p(e | c)`` (paper
Section 3.2). We store each world as the array of surviving edge ids —
nodes are implicit since the paper retains all of them.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError, IndexError_
from repro.graphs.tag_graph import TagGraph
from repro.utils.rng import ensure_rng


def theta_c(theta: int, r: int, alpha: float, delta: float) -> int:
    """Per-tag index count from Theorem 6: ``θ_c = r·θ / (αδ(θ-1) + r)``.

    Guarantees the average number of common indexes between any two
    working graphs is at most ``α`` with probability at least ``1 - δ``.
    Always returns at least 1 (a tag with zero indexes could never be
    sampled).
    """
    if theta <= 0:
        raise ConfigurationError(f"theta must be positive, got {theta}")
    if r <= 0:
        raise ConfigurationError(f"tag budget r must be positive, got {r}")
    if alpha <= 0.0 or not (0.0 < delta < 1.0):
        raise ConfigurationError(
            f"require alpha > 0 and delta in (0, 1), got {alpha}, {delta}"
        )
    value = r * theta / (alpha * delta * (theta - 1) + r)
    return max(1, int(math.ceil(value)))


class TagIndex:
    """The set of possible-world indexes sampled for a single tag.

    Parameters
    ----------
    graph:
        The underlying tagged graph.
    tag:
        The tag this index serves.
    count:
        Number of worlds to sample (``θ_c``).
    edge_universe:
        Optional boolean mask (length ``m``) restricting which edges may
        appear — used by local (LL-TRS) indexing; ``None`` means all.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        graph: TagGraph,
        tag: str,
        count: int,
        edge_universe: np.ndarray | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if count <= 0:
            raise ConfigurationError(
                f"index count must be positive, got {count}"
            )
        rng = ensure_rng(rng)
        self.tag = tag
        ids, probs = graph.tag_edges(tag)
        if edge_universe is not None:
            if edge_universe.shape != (graph.num_edges,):
                raise IndexError_(
                    "edge_universe must be a boolean mask of length m"
                )
            inside = edge_universe[ids]
            ids, probs = ids[inside], probs[inside]
        self._candidate_edges = ids
        # One batched draw for all worlds. Generator.random fills the
        # matrix row-major, i.e. the exact stream of ``count`` sequential
        # per-world draws — bit-identical worlds, one numpy call.
        coins = rng.random((count, ids.size))
        self._worlds: list[np.ndarray] = [
            ids[coins[i] < probs] for i in range(count)
        ]

    @property
    def num_worlds(self) -> int:
        """How many pre-sampled worlds this tag has (``θ_c``)."""
        return len(self._worlds)

    @property
    def stored_edges(self) -> int:
        """Total edge slots stored across all worlds (size accounting)."""
        return int(sum(w.size for w in self._worlds))

    @property
    def candidate_edges(self) -> np.ndarray:
        """Edges eligible for this tag within the index universe."""
        return self._candidate_edges

    def world(self, index: int) -> np.ndarray:
        """Edge ids surviving in world ``index``."""
        if not (0 <= index < len(self._worlds)):
            raise IndexError_(
                f"world index {index} outside [0, {len(self._worlds)})"
            )
        return self._worlds[index]

    def sample_world_index(self, rng: np.random.Generator) -> int:
        """Draw a uniform world index — one per working graph per tag."""
        return int(rng.integers(0, len(self._worlds)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TagIndex(tag={self.tag!r}, worlds={self.num_worlds}, "
            f"stored_edges={self.stored_edges})"
        )
