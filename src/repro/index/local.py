"""Local-region edge universes for LL-TRS (paper Section 3.3).

The local region is the set of nodes at most ``h`` reverse hops from a
target. Indexes are built only over edges *inside* the region (both
endpoints local); during query processing, reverse BFS still crosses the
boundary by flipping online coins for unindexed edges, so outside nodes
can appear in a limited number of RR sets — exactly the behaviour
described around Example 2 / Figure 8.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.graphs.tag_graph import TagGraph
from repro.graphs.views import local_region_nodes


def local_edge_universe(
    graph: TagGraph, targets: Iterable[int], h: int
) -> np.ndarray:
    """Boolean mask of edges with both endpoints in the ``h``-hop region."""
    region = local_region_nodes(graph, targets, h)
    in_region = np.zeros(graph.num_nodes, dtype=bool)
    in_region[region] = True
    return in_region[graph.src] & in_region[graph.dst]
