"""Index cost accounting and correlation diagnostics.

The paper reports index *size* (GB on disk), *building time*, and
*querying time* (Table 3, Table 7, Figure 15). On our substrate, size is
counted in stored edge slots and converted to bytes (8 bytes per int64
slot) — the quantity that actually scales with the paper's GB numbers.

Figure 7's diagnostic — the average number of common indexes between
pairs of working graphs, ``C(G)`` of Theorem 6 — is computed here from
the recorded per-working-graph world choices.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

BYTES_PER_EDGE_SLOT = 8


@dataclass
class IndexStats:
    """Mutable accumulator for index build cost.

    Attributes
    ----------
    worlds_built:
        Total number of possible-world indexes sampled.
    stored_edges:
        Total edge slots held by those worlds.
    build_seconds:
        Wall-clock seconds spent building.
    tags_indexed:
        Names of tags with at least one world.
    """

    worlds_built: int = 0
    stored_edges: int = 0
    build_seconds: float = 0.0
    tags_indexed: set[str] = field(default_factory=set)

    @property
    def size_bytes(self) -> int:
        """Estimated index footprint in bytes (8 bytes per edge slot)."""
        return self.stored_edges * BYTES_PER_EDGE_SLOT

    def merge(self, other: "IndexStats") -> None:
        """Fold another accumulator into this one."""
        self.worlds_built += other.worlds_built
        self.stored_edges += other.stored_edges
        self.build_seconds += other.build_seconds
        self.tags_indexed |= other.tags_indexed

    def snapshot(self) -> "IndexStats":
        """Immutable-ish copy for result records."""
        return IndexStats(
            worlds_built=self.worlds_built,
            stored_edges=self.stored_edges,
            build_seconds=self.build_seconds,
            tags_indexed=set(self.tags_indexed),
        )


def average_pairwise_common_indexes(
    choices: Sequence[Mapping[str, int]],
) -> float:
    """Empirical ``C(G)`` — Eq. 10 of the paper.

    ``choices[i]`` maps tag → world index chosen by working graph ``i``.
    Returns the average, over ordered pairs of distinct working graphs,
    of the number of (tag, world) indexes they share. Fewer than two
    working graphs trivially share nothing.
    """
    theta = len(choices)
    if theta < 2:
        return 0.0
    # Count how many working graphs used each (tag, world) index; each
    # group of x graphs sharing an index contributes x·(x-1) ordered
    # pairs, matching the double sum in Eq. 10.
    usage: dict[tuple[str, int], int] = {}
    for choice in choices:
        for tag, world in choice.items():
            key = (tag, world)
            usage[key] = usage.get(key, 0) + 1
    shared_pairs = sum(x * (x - 1) for x in usage.values())
    return shared_pairs / (theta * (theta - 1))


def expected_pairwise_common_indexes(theta: int, theta_c: int, r: int) -> float:
    """Analytical ``E[C(G)] = (θ - θ_c)·r / ((θ - 1)·θ_c)`` — Eq. 13.

    Negative values (possible when ``θ_c > θ``) clamp to zero: with more
    candidate indexes than working graphs, expected sharing vanishes.
    """
    if theta < 2 or theta_c <= 0:
        return 0.0
    return max(0.0, (theta - theta_c) * r / ((theta - 1) * theta_c))
