"""Index manager implementing eager (I-TRS) and lazy (L-TRS) building.

The manager owns one :class:`~repro.index.TagIndex` per tag and an
:class:`~repro.index.IndexStats` accumulator. Lazy building follows the
paper's L-TRS rule and Lemma 3: build ``θ_c`` worlds for a tag the first
time it is requested; never extend an existing tag's index (successive
iterations only ever need fewer worlds, because OPT_T — and hence θ —
is monotonically non-increasing across iterations).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.exceptions import IndexError_
from repro.graphs.tag_graph import TagGraph
from repro.index.possible_world_index import TagIndex
from repro.index.stats import IndexStats
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import check_tags_exist


class IndexManager:
    """Owns per-tag possible-world indexes over an (optionally local) universe.

    Parameters
    ----------
    graph:
        The tagged uncertain graph.
    edge_universe:
        Optional boolean mask restricting indexed edges (LL-TRS local
        region); ``None`` indexes the whole edge set.
    """

    def __init__(
        self,
        graph: TagGraph,
        edge_universe: np.ndarray | None = None,
    ) -> None:
        if edge_universe is not None and edge_universe.shape != (
            graph.num_edges,
        ):
            raise IndexError_(
                "edge_universe must be a boolean mask of length m"
            )
        self._graph = graph
        self._edge_universe = edge_universe
        self._indexes: dict[str, TagIndex] = {}
        self._stats = IndexStats()
        self._frozen = False

    # ------------------------------------------------------------------
    # Freezing (shared read-only handles)
    # ------------------------------------------------------------------
    def freeze(self) -> "IndexManager":
        """Make this manager read-only and safe to share across threads.

        After freezing, :meth:`ensure_indexes` never builds: tags that
        already have worlds are plain cache hits (no stats mutation, no
        timing), and a request for an unindexed tag raises
        :class:`IndexError_` instead of racing a build. All query-side
        methods (:meth:`sample_world_choices`, :meth:`working_mask`,
        :meth:`index_for`) only read, so one frozen manager can back
        any number of concurrent queries. Returns ``self`` for
        chaining (``load_index(...).freeze()``).
        """
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """Whether this manager is a read-only shared handle."""
        return self._frozen

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def ensure_indexes(
        self,
        tags: Iterable[str],
        theta_c: int,
        rng: np.random.Generator | int | None = None,
    ) -> list[str]:
        """Build ``theta_c`` worlds for each tag that has none yet.

        Existing tags are left untouched (L-TRS reuse; Lemma 3). Returns
        the list of tags actually built, for diagnostics.
        """
        rng = ensure_rng(rng)
        tag_list = list(tags)
        check_tags_exist(tag_list, self._graph.tags)
        if self._frozen:
            missing = [tag for tag in tag_list if tag not in self._indexes]
            if missing:
                raise IndexError_(
                    f"frozen index manager has no worlds for {missing!r}; "
                    "build before freeze() or serve only indexed tags"
                )
            for _ in tag_list:
                obs.count("index.cache_hits")
            return []
        built: list[str] = []
        timer = Timer()
        with timer:
            for tag in tag_list:
                if tag in self._indexes:
                    # L-TRS reuse: a previously built tag is a cache hit.
                    obs.count("index.cache_hits")
                    continue
                obs.count("index.cache_misses")
                index = TagIndex(
                    self._graph,
                    tag,
                    theta_c,
                    edge_universe=self._edge_universe,
                    rng=rng,
                )
                self._indexes[tag] = index
                obs.count("index.worlds_built", index.num_worlds)
                obs.count("index.stored_edges", index.stored_edges)
                self._stats.worlds_built += index.num_worlds
                self._stats.stored_edges += index.stored_edges
                self._stats.tags_indexed.add(tag)
                built.append(tag)
        self._stats.build_seconds += timer.elapsed
        return built

    def build_all_tags(
        self,
        theta_c: int,
        rng: np.random.Generator | int | None = None,
    ) -> list[str]:
        """Eagerly index the *entire* vocabulary — the I-TRS strategy."""
        return self.ensure_indexes(self._graph.tags, theta_c, rng)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def has_index(self, tag: str) -> bool:
        """Whether ``tag`` already has worlds built."""
        return tag in self._indexes

    def index_for(self, tag: str) -> TagIndex:
        """The :class:`TagIndex` for ``tag``; raises if absent."""
        try:
            return self._indexes[tag]
        except KeyError:
            raise IndexError_(
                f"no index built for tag {tag!r}; call ensure_indexes first"
            ) from None

    def sample_world_choices(
        self,
        tags: Sequence[str],
        rng: np.random.Generator | int | None = None,
    ) -> dict[str, int]:
        """Pick one random world per tag — the identity of a working graph."""
        rng = ensure_rng(rng)
        return {
            tag: self.index_for(tag).sample_world_index(rng) for tag in tags
        }

    def working_mask(
        self,
        choices: Mapping[str, int],
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Union the chosen worlds into a boolean edge mask (Figure 6c).

        Passing ``out`` reuses a buffer across working graphs; it is
        zeroed before use.
        """
        if out is None:
            out = np.zeros(self._graph.num_edges, dtype=bool)
        else:
            if out.shape != (self._graph.num_edges,):
                raise IndexError_("out buffer must have length m")
            out[:] = False
        for tag, world_idx in choices.items():
            out[self.index_for(tag).world(world_idx)] = True
        return out

    @property
    def covered_mask(self) -> np.ndarray:
        """Edges the index may speak for; the rest need online coins."""
        if self._edge_universe is None:
            return np.ones(self._graph.num_edges, dtype=bool)
        return self._edge_universe

    @property
    def is_local(self) -> bool:
        """Whether this manager indexes only a local region."""
        return self._edge_universe is not None

    @property
    def stats(self) -> IndexStats:
        """Accumulated build-cost statistics."""
        return self._stats

    @property
    def indexed_tags(self) -> tuple[str, ...]:
        """Tags that currently have worlds, sorted."""
        return tuple(sorted(self._indexes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndexManager(tags={len(self._indexes)}, "
            f"worlds={self._stats.worlds_built}, local={self.is_local})"
        )
