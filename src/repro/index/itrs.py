"""Index-based targeted reverse sketching: the I-TRS / L-TRS / LL-TRS engines.

Query processing (Figure 6c): for each of the θ RR sets, draw one random
possible-world index per selected tag, union them into a working graph,
then run a *deterministic* reverse BFS from a random target — no coin
flips for indexed edges. Edges outside the index universe (LL-TRS's
outer region) fall back to online coins at the aggregated probability,
letting the traversal cross the local-region boundary.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.exceptions import BudgetExceededError
from repro.graphs.tag_graph import TagGraph
from repro.index.lazy import IndexManager
from repro.index.local import local_edge_universe
from repro.index.possible_world_index import theta_c as compute_theta_c
from repro.index.stats import IndexStats
from repro.sketch.coverage import greedy_max_coverage
from repro.sketch.theta import SketchConfig, compute_theta, estimate_opt_t
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import (
    as_target_array,
    check_budget,
    check_tags_exist,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.parallel import SamplingEngine
    from repro.engine.runtime import RunBudget


@dataclass(frozen=True)
class IndexedTRSResult:
    """Outcome of an index-based seed selection.

    Attributes
    ----------
    seeds:
        Selected seed nodes, in greedy order.
    estimated_spread:
        ``F_R(S) · |T|``.
    theta:
        Number of working graphs / RR sets used.
    theta_c:
        Per-tag index count requested from Theorem 6.
    query_seconds:
        Online query time (θ estimation, RR generation, coverage). Index
        building time is reported separately in ``index_stats`` — the
        benchmarks add it back for the fair comparison the paper makes
        for L-TRS / LL-TRS.
    index_stats:
        Snapshot of the manager's cumulative build statistics.
    world_choices:
        Per-working-graph (tag → world) choices when recording was
        requested (Figure 7's diagnostic); otherwise ``None``.
    telemetry:
        Runtime failure counters when an engine with a fault-tolerant
        runtime was involved; ``None`` otherwise.
    report:
        Observability report (metrics + trace + phases) when the call
        ran inside an :func:`repro.obs.observe` scope; ``None``
        otherwise.
    """

    seeds: tuple[int, ...]
    estimated_spread: float
    theta: int
    theta_c: int
    query_seconds: float
    index_stats: IndexStats
    world_choices: tuple[dict[str, int], ...] | None = None
    telemetry: dict | None = None
    report: dict | None = None

    def spread_fraction(self, num_targets: int) -> float:
        """Estimated spread as a fraction of the target-set size."""
        if num_targets <= 0:
            return 0.0
        return self.estimated_spread / num_targets


def _hybrid_rr_set(
    graph: TagGraph,
    root: int,
    working_mask: np.ndarray,
    covered: np.ndarray,
    edge_probs: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Reverse BFS mixing indexed edges with online coins for the rest."""
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[root] = True
    members = [int(root)]
    queue: deque[int] = deque([int(root)])

    rev_indptr, rev_edges = graph.reverse_csr()
    src = graph.src
    fully_covered = bool(covered.all())
    while queue:
        node = queue.popleft()
        for eid in rev_edges[rev_indptr[node]:rev_indptr[node + 1]]:
            if fully_covered or covered[eid]:
                exists = working_mask[eid]
            else:
                exists = rng.random() < edge_probs[eid]
            if exists:
                parent = int(src[eid])
                if not visited[parent]:
                    visited[parent] = True
                    members.append(parent)
                    queue.append(parent)
    return np.array(members, dtype=np.int64)


def indexed_select_seeds(
    graph: TagGraph,
    targets: Sequence[int],
    tags: Sequence[str],
    k: int,
    manager: IndexManager,
    config: SketchConfig = SketchConfig(),
    rng: np.random.Generator | int | None = None,
    record_choices: bool = False,
    engine: "SamplingEngine | None" = None,
    budget: "RunBudget | None" = None,
) -> IndexedTRSResult:
    """Select top-``k`` seeds using pre-sampled possible-world indexes.

    Works with any :class:`IndexManager`: an eagerly filled one behaves
    as I-TRS, an empty one as L-TRS (missing tags are built here, lazily),
    and one with a local edge universe as LL-TRS.

    Parameters
    ----------
    record_choices:
        When true, the per-working-graph world choices are kept on the
        result for correlation diagnostics (Figure 7); costs memory
        proportional to ``θ · r``.
    engine:
        Optional :class:`~repro.engine.SamplingEngine`. Vectorized mode
        runs the hybrid traversal frontier-batched and stores RR sets
        flat; the traversal stays in-process regardless of ``workers``
        because each working graph is drawn from shared manager state.
    budget:
        Optional :class:`~repro.engine.RunBudget` checked after every
        working-graph traversal; a tripped limit raises
        :class:`~repro.exceptions.BudgetExceededError` whose ``partial``
        is an :class:`IndexedTRSResult` covering the RR sets generated
        so far.
    """
    rng = ensure_rng(rng)
    check_budget(k, graph.num_nodes, what="seeds")
    check_tags_exist(tags, graph.tags)
    tag_list = list(dict.fromkeys(tags))  # dedupe, preserve order
    target_arr = as_target_array(
        targets, graph.num_nodes, context="indexed_select_seeds"
    )
    num_targets = int(target_arr.size)
    vectorized = engine is not None and engine.mode == "vectorized"

    timer = Timer()
    rr_list: list[np.ndarray] = []
    choices_log: list[dict[str, int]] = []
    theta = 0
    tc = 0
    try:
        with timer, obs.span(
            "itrs", k=k, num_targets=num_targets
        ) as itrs_span:
            edge_probs = graph.edge_probabilities(tag_list)
            with obs.span("itrs.pilot"):
                opt_t = estimate_opt_t(
                    graph, target_arr, edge_probs, k, config, rng,
                    engine=engine, budget=budget,
                )
            theta = compute_theta(
                graph.num_nodes, k, num_targets, opt_t, config
            )
            tc = compute_theta_c(
                theta, len(tag_list), config.alpha, config.delta
            )
            obs.gauge("itrs.theta", theta)
            obs.gauge("itrs.theta_c", tc)
            itrs_span.set(theta=theta, theta_c=tc)
            with obs.span("itrs.ensure_indexes", theta_c=tc):
                manager.ensure_indexes(tag_list, tc, rng)

            covered = manager.covered_mask
            mask_buffer = np.zeros(graph.num_edges, dtype=bool)
            roots = rng.choice(target_arr, size=theta)

            if vectorized:
                from repro.engine.frontier import hybrid_rr_frontier

                traverse = hybrid_rr_frontier
            else:
                traverse = _hybrid_rr_set

            if budget is not None:
                budget.charge_samples(theta)
            with obs.span("itrs.traverse", theta=theta):
                for root in roots:
                    choices = manager.sample_world_choices(tag_list, rng)
                    if record_choices:
                        choices_log.append(choices)
                    working = manager.working_mask(choices, out=mask_buffer)
                    rr_list.append(
                        traverse(
                            graph, int(root), working, covered, edge_probs,
                            rng,
                        )
                    )
                    if budget is not None:
                        budget.charge_rr_members(rr_list[-1].size)
            obs.count("itrs.working_graphs", len(rr_list))
            with obs.span("itrs.cover"):
                rr_sets = _pack_rr(rr_list, graph.num_nodes, vectorized)
                coverage = greedy_max_coverage(rr_sets, k, graph.num_nodes)
    except BudgetExceededError as exc:
        exc.partial = _partial_indexed_result(
            rr_list, choices_log if record_choices else None, k, graph,
            num_targets, theta, tc, timer.elapsed, manager, vectorized,
            engine,
        )
        raise

    return IndexedTRSResult(
        seeds=coverage.seeds,
        estimated_spread=coverage.spread_estimate(num_targets),
        theta=theta,
        theta_c=tc,
        query_seconds=timer.elapsed,
        index_stats=manager.stats.snapshot(),
        world_choices=tuple(choices_log) if record_choices else None,
        telemetry=engine.telemetry.as_dict() if engine is not None else None,
        report=obs.snapshot_report(),
    )


def _pack_rr(rr_list: list[np.ndarray], num_nodes: int, vectorized: bool):
    """Flat-store the RR sets when the engine runs vectorized."""
    if not vectorized:
        return rr_list
    from repro.engine.rr_storage import RRCollection

    return RRCollection.from_sets(rr_list, num_nodes)


def _partial_indexed_result(
    rr_list: list[np.ndarray],
    choices_log: list[dict[str, int]] | None,
    k: int,
    graph: TagGraph,
    num_targets: int,
    theta: int,
    tc: int,
    elapsed: float,
    manager: IndexManager,
    vectorized: bool,
    engine: "SamplingEngine | None",
) -> IndexedTRSResult:
    """Best-effort :class:`IndexedTRSResult` from a budget-stopped run."""
    collected = len(rr_list)
    if collected > 0:
        rr_sets = _pack_rr(rr_list, graph.num_nodes, vectorized)
        coverage = greedy_max_coverage(rr_sets, min(k, collected),
                                       graph.num_nodes)
        seeds = coverage.seeds
        spread = coverage.spread_estimate(num_targets)
    else:
        seeds, spread = (), 0.0
    return IndexedTRSResult(
        seeds=seeds,
        estimated_spread=spread,
        theta=collected if collected else theta,
        theta_c=tc,
        query_seconds=elapsed,
        index_stats=manager.stats.snapshot(),
        world_choices=tuple(choices_log) if choices_log is not None else None,
        telemetry=engine.telemetry.as_dict() if engine is not None else None,
    )


def make_itrs_manager(
    graph: TagGraph,
    theta: int,
    r: int,
    config: SketchConfig = SketchConfig(),
    rng: np.random.Generator | int | None = None,
) -> IndexManager:
    """I-TRS: eagerly index *every* tag in the vocabulary in advance.

    ``theta`` and ``r`` size θ_c via Theorem 6; callers typically pass a
    pessimistic θ (e.g. ``config.theta_max``) since the exact value is
    only known at query time.
    """
    manager = IndexManager(graph)
    tc = compute_theta_c(theta, r, config.alpha, config.delta)
    manager.build_all_tags(tc, ensure_rng(rng))
    return manager


def make_ltrs_manager(graph: TagGraph) -> IndexManager:
    """L-TRS: start empty; tags are indexed on first use and reused."""
    return IndexManager(graph)


def make_lltrs_manager(
    graph: TagGraph,
    targets: Sequence[int],
    config: SketchConfig = SketchConfig(),
) -> IndexManager:
    """LL-TRS: lazy manager whose universe is the h-hop local region."""
    universe = local_edge_universe(graph, targets, config.h)
    return IndexManager(graph, edge_universe=universe)
