"""Per-tag possible-world indexing for targeted reverse sketching.

Implements the paper's three indexing schemes (Sections 3.2–3.3):

* **I-TRS** — build ``θ_c`` possible-world indexes for *every* tag in
  advance; at query time each RR set's working graph is the union of one
  randomly chosen index per selected tag (Example 1 / Figure 6).
* **L-TRS** — lazy: indexes are built per tag the first time that tag is
  needed and reused across iterations (Lemma 3 shows no more are ever
  required for a previously seen tag).
* **LL-TRS** — lazy *and* local: indexes cover only the ``h``-hop local
  region around the target set; edges outside the region fall back to
  online coin flips during reverse BFS, so outside nodes can still enter
  the (few) RR sets that reach them (Example 2 / Figure 8).

``θ_c`` is sized by Theorem 6 so the expected number of common indexes
between two working graphs stays below ``α`` with probability ``1 - δ``.
"""

from repro.index.itrs import (
    IndexedTRSResult,
    indexed_select_seeds,
    make_itrs_manager,
    make_lltrs_manager,
    make_ltrs_manager,
)
from repro.index.lazy import IndexManager
from repro.index.local import local_edge_universe
from repro.index.persistence import load_index, save_index
from repro.index.possible_world_index import TagIndex, theta_c
from repro.index.stats import IndexStats, average_pairwise_common_indexes

__all__ = [
    "IndexManager",
    "IndexStats",
    "IndexedTRSResult",
    "TagIndex",
    "average_pairwise_common_indexes",
    "indexed_select_seeds",
    "load_index",
    "local_edge_universe",
    "save_index",
    "make_itrs_manager",
    "make_lltrs_manager",
    "make_ltrs_manager",
    "theta_c",
]
