"""On-disk persistence for possible-world indexes.

The paper stores indexes on disk (their Table 3/7 sizes are GB on
disk; Table 7's query times include loading the selected tags' indexes
into memory). This module gives the same lifecycle: an
:class:`~repro.index.IndexManager` can be saved to a directory — one
``.npz`` file per tag holding its worlds, plus a JSON manifest with
the universe mask and accounting — and loaded back for querying.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import IndexError_
from repro.graphs.tag_graph import TagGraph
from repro.index.lazy import IndexManager
from repro.index.possible_world_index import TagIndex

_MANIFEST = "index_manifest.json"


def _tag_filename(position: int) -> str:
    # Tag names can contain characters unfit for filenames; files are
    # numbered and the manifest maps names to numbers.
    return f"tag_{position:05d}.npz"


def save_index(manager: IndexManager, directory: str | Path) -> int:
    """Write ``manager``'s worlds to ``directory``; returns bytes written.

    The directory is created if needed; existing index files in it are
    overwritten.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    tags = list(manager.indexed_tags)
    total_bytes = 0
    for position, tag in enumerate(tags):
        index = manager.index_for(tag)
        arrays = {
            f"world_{i}": index.world(i) for i in range(index.num_worlds)
        }
        path = directory / _tag_filename(position)
        with path.open("wb") as handle:
            np.savez_compressed(handle, **arrays)
        total_bytes += path.stat().st_size

    universe = manager.covered_mask
    manifest = {
        "tags": tags,
        "num_edges": int(universe.shape[0]),
        "is_local": bool(manager.is_local),
        "universe_edges": (
            np.flatnonzero(universe).tolist() if manager.is_local else None
        ),
        "build_seconds": manager.stats.build_seconds,
    }
    manifest_path = directory / _MANIFEST
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
    total_bytes += manifest_path.stat().st_size
    return total_bytes


def load_index(
    graph: TagGraph,
    directory: str | Path,
    freeze: bool = False,
) -> IndexManager:
    """Load a previously saved index for ``graph``.

    The worlds are restored verbatim — a loaded manager answers queries
    identically to the one that was saved (given the same query RNG).
    Raises :class:`IndexError_` when the directory does not hold a
    manifest or when it was built for a different edge count.

    ``freeze=True`` returns the manager already frozen (see
    :meth:`~repro.index.lazy.IndexManager.freeze`): a read-only shared
    handle the serving layer can hand to concurrent queries.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise IndexError_(f"no index manifest in {directory}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))

    if manifest["num_edges"] != graph.num_edges:
        raise IndexError_(
            f"index was built for a graph with {manifest['num_edges']} "
            f"edges; this graph has {graph.num_edges}"
        )

    universe = None
    if manifest["is_local"]:
        universe = np.zeros(graph.num_edges, dtype=bool)
        universe[np.array(manifest["universe_edges"], dtype=np.int64)] = True

    manager = IndexManager(graph, edge_universe=universe)
    for position, tag in enumerate(manifest["tags"]):
        path = directory / _tag_filename(position)
        if not path.exists():
            raise IndexError_(f"missing index file {path}")
        with np.load(path) as data:
            worlds = [
                data[f"world_{i}"].astype(np.int64)
                for i in range(len(data.files))
            ]
        _install_tag_index(manager, graph, tag, worlds, universe)
    manager.stats.build_seconds = float(manifest.get("build_seconds", 0.0))
    if freeze:
        manager.freeze()
    return manager


def _install_tag_index(
    manager: IndexManager,
    graph: TagGraph,
    tag: str,
    worlds: list[np.ndarray],
    universe: np.ndarray | None,
) -> None:
    """Place pre-sampled worlds into a manager without re-sampling."""
    index = TagIndex.__new__(TagIndex)
    index.tag = tag
    ids, _probs = graph.tag_edges(tag)
    if universe is not None:
        ids = ids[universe[ids]]
    index._candidate_edges = ids
    index._worlds = worlds
    manager._indexes[tag] = index
    manager._stats.worlds_built += index.num_worlds
    manager._stats.stored_edges += index.stored_edges
    manager._stats.tags_indexed.add(tag)
