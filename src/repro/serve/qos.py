"""QoS machinery for the campaign server (``repro.serve.qos``).

The server's original admission gate was binary: past the pool bound
every query got a bare overload error. This module provides the pieces
for *graded* overload behavior:

``QosConfig``
    All serving-QoS knobs in one frozen bag: class weights, shedding
    thresholds, the degraded-tier θ/sample factor, deadline-admission
    and circuit-breaker parameters.

``WeightedClassQueues``
    Per-class FIFO queues (``interactive`` / ``batch`` /
    ``best_effort``) drained by *smooth weighted round-robin*: every
    dequeue adds each non-empty class's weight to its credit, picks the
    class with the most credit, and charges it the weight total. The
    schedule is deterministic, proportional to the weights over any
    window, and starvation-free — a ``best_effort`` query always
    surfaces within ``sum(weights)/weight(best_effort)`` dequeues.

``LatencyPredictor``
    Rolling per-op execution-latency windows (bounded deques of recent
    samples) answering ``p95(op)`` and ``predicted_wait_ms(queued,
    pool_size)``. This is the admission formula's input: the same
    rolling-p95 idea the live telemetry exporter computes from
    differenced histogram buckets, kept server-side so admission works
    with or without a telemetry endpoint attached.

``CircuitBreaker``
    Classic three-state breaker (closed → open → half-open) guarding
    expensive asset builds per asset kind. Opens after
    ``failure_threshold`` *consecutive* failures, fails fast for
    ``reset_timeout`` seconds, then lets one probe build through;
    a probe success closes it, a probe failure re-opens it.

Admission formula (documented contract, see ``docs/serving.md``)::

    wait_ms       = in_system / pool_size * p95_all_ops
    completion_ms = wait_ms + p95(op)
    reject iff    completion_ms > deadline_ms   (explicit deadlines only)

The predictor is intentionally conservative-on-cold-start: with no
recorded samples both p95 terms are 0, so an idle fresh server admits
everything (deadline enforcement then falls to the cooperative
``RunBudget`` checks at shard boundaries).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "QUERY_CLASSES",
    "TIERS",
    "CircuitBreaker",
    "LatencyPredictor",
    "QosConfig",
    "RouterAdmission",
    "WeightedClassQueues",
]

#: Recognized QoS classes, most- to least-latency-sensitive.
QUERY_CLASSES = ("interactive", "batch", "best_effort")

#: Tiers an admitted query can be served at. ``full`` is the normal
#: answer; ``approximate`` is the reduced-θ degraded tier;
#: ``stale`` reuses a resident asset built for different parameters;
#: ``salvaged`` reuses partial work cancelled out of an earlier build.
TIERS = ("full", "approximate", "stale", "stale_only", "salvaged")


@dataclass(frozen=True)
class QosConfig:
    """Knobs for QoS scheduling, shedding, and circuit breaking.

    Attributes
    ----------
    weights:
        Dequeue weight per class (smooth WRR). Defaults 6/3/1: over any
        10 dequeues with all classes backlogged, six are interactive,
        three batch, one best-effort.
    shed_threshold:
        Utilization (``in_system / capacity``) at which ``best_effort``
        queries are downgraded to the reduced-θ approximate tier.
    stale_threshold:
        Utilization at which ``best_effort`` queries may only be
        answered from resident (possibly slightly stale) assets; a
        query that would need a fresh build is shed instead.
    degrade_theta_factor:
        Divisor applied to ``theta_max`` (TRS) / ``num_samples``
        (spread) for the approximate tier. The served answer is tagged
        with the θ it actually used and its widened error bound.
    deadline_admission:
        Whether explicit per-query deadlines participate in predictive
        admission (they always drive cooperative cancellation).
    predictor_window:
        Latency samples retained per op for the rolling p95.
    breaker_failure_threshold / breaker_reset_timeout:
        Consecutive build failures that open an asset kind's breaker,
        and the open-state cooldown before a half-open probe.
    min_retry_after_ms:
        Floor on advertised ``retry_after_ms`` so a cold predictor
        never tells clients to hammer the server instantly.
    flight_slow_ms / flight_capacity:
        Slow-query flight-recorder policy
        (:class:`repro.obs.distributed.FlightRecorder`): queries slower
        than ``flight_slow_ms`` milliseconds earn a flight record even
        when they succeed; rejections, cooperative cancellations, and
        deadline misses are always recorded. ``None`` (the default)
        records only failures/misses. ``flight_capacity`` bounds the
        retained ring served at ``/debug/slow``.
    """

    weights: Tuple[Tuple[str, int], ...] = (
        ("interactive", 6), ("batch", 3), ("best_effort", 1),
    )
    shed_threshold: float = 0.6
    stale_threshold: float = 0.85
    degrade_theta_factor: int = 4
    deadline_admission: bool = True
    predictor_window: int = 128
    breaker_failure_threshold: int = 3
    breaker_reset_timeout: float = 5.0
    min_retry_after_ms: float = 25.0
    flight_slow_ms: Optional[float] = None
    flight_capacity: int = 64

    def __post_init__(self) -> None:
        classes = tuple(name for name, _w in self.weights)
        if sorted(classes) != sorted(QUERY_CLASSES):
            raise ConfigurationError(
                f"weights must cover exactly {QUERY_CLASSES}, got {classes}"
            )
        if any(w <= 0 for _n, w in self.weights):
            raise ConfigurationError("class weights must be positive")
        if not 0.0 < self.shed_threshold <= self.stale_threshold <= 1.0:
            raise ConfigurationError(
                "require 0 < shed_threshold <= stale_threshold <= 1, got "
                f"{self.shed_threshold}, {self.stale_threshold}"
            )
        if self.degrade_theta_factor < 1:
            raise ConfigurationError(
                f"degrade_theta_factor must be >= 1, got "
                f"{self.degrade_theta_factor}"
            )
        if self.predictor_window < 2:
            raise ConfigurationError(
                f"predictor_window must be >= 2, got {self.predictor_window}"
            )
        if self.breaker_failure_threshold < 1:
            raise ConfigurationError(
                "breaker_failure_threshold must be >= 1, got "
                f"{self.breaker_failure_threshold}"
            )
        if self.breaker_reset_timeout <= 0:
            raise ConfigurationError(
                f"breaker_reset_timeout must be positive, got "
                f"{self.breaker_reset_timeout}"
            )
        if self.flight_slow_ms is not None and self.flight_slow_ms < 0:
            raise ConfigurationError(
                f"flight_slow_ms must be >= 0, got {self.flight_slow_ms}"
            )
        if self.flight_capacity < 1:
            raise ConfigurationError(
                f"flight_capacity must be >= 1, got {self.flight_capacity}"
            )

    @property
    def weight_map(self) -> Dict[str, int]:
        return dict(self.weights)


class WeightedClassQueues:
    """Per-class FIFOs drained by smooth weighted round-robin.

    Not itself thread-safe: the server serializes access under its
    admission lock (push/pop are O(1) dict-and-deque work, safe to hold
    a lock across).
    """

    def __init__(self, weights: Dict[str, int] | None = None) -> None:
        self._weights = dict(weights or dict(QosConfig().weights))
        self._queues: Dict[str, Deque[Any]] = {
            name: deque() for name in self._weights
        }
        self._credit: Dict[str, int] = {name: 0 for name in self._weights}

    def push(self, qos_class: str, item: Any) -> None:
        self._queues[qos_class].append(item)

    def pop(self) -> Optional[Any]:
        """Dequeue the next item under smooth WRR, or ``None`` if empty.

        Each call adds every *backlogged* class's weight to its credit,
        picks the highest-credit class (ties broken by descending
        weight, then name, for determinism), and charges the winner the
        total active weight. Empty classes keep zero credit, so a class
        cannot bank priority while idle.
        """
        active = [name for name, q in self._queues.items() if q]
        if not active:
            return None
        total = 0
        for name in active:
            self._credit[name] += self._weights[name]
            total += self._weights[name]
        winner = max(
            active,
            key=lambda name: (
                self._credit[name], self._weights[name], name
            ),
        )
        self._credit[winner] -= total
        item = self._queues[winner].popleft()
        if not self._queues[winner]:
            self._credit[winner] = 0
        return item

    def drain(self) -> List[Any]:
        """Remove and return every queued item (for server shutdown)."""
        drained: List[Any] = []
        for name, queue in self._queues.items():
            drained.extend(queue)
            queue.clear()
            self._credit[name] = 0
        return drained

    def depth(self, qos_class: str | None = None) -> int:
        if qos_class is not None:
            return len(self._queues[qos_class])
        return sum(len(q) for q in self._queues.values())

    def depths(self) -> Dict[str, int]:
        return {name: len(q) for name, q in self._queues.items()}

    def __len__(self) -> int:
        return self.depth()


class LatencyPredictor:
    """Rolling per-op p95 execution latencies for admission decisions.

    Thread-safe. Each op keeps a bounded deque of recent execution
    times (milliseconds, queue wait excluded); ``p95`` is computed by
    sorting the window — at the default window of 128 samples that is
    microseconds, far below the cost of the queries being admitted.
    """

    def __init__(self, window: int = 128) -> None:
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        self._window = int(window)
        self._samples: "OrderedDict[str, Deque[float]]" = OrderedDict()
        self._lock = threading.Lock()

    def observe(self, op: str, elapsed_ms: float) -> None:
        """Record one completed execution of ``op``."""
        with self._lock:
            bucket = self._samples.get(op)
            if bucket is None:
                bucket = deque(maxlen=self._window)
                self._samples[op] = bucket
            bucket.append(float(elapsed_ms))

    @staticmethod
    def _p95(values: List[float]) -> float:
        if not values:
            return 0.0
        values = sorted(values)
        index = min(int(0.95 * len(values)), len(values) - 1)
        return values[index]

    def p95(self, op: str) -> float:
        """Rolling p95 execution latency of ``op`` in ms (0 when cold)."""
        with self._lock:
            bucket = self._samples.get(op)
            values = list(bucket) if bucket else []
        return self._p95(values)

    def p95_overall(self) -> float:
        """Rolling p95 across every op's window (0 when cold)."""
        with self._lock:
            values = [v for bucket in self._samples.values() for v in bucket]
        return self._p95(values)

    def predicted_wait_ms(self, in_system: int, pool_size: int) -> float:
        """Predicted queue wait for a query arriving *now*.

        ``in_system`` queries each cost ~p95 of the overall op mix and
        drain ``pool_size`` at a time::

            wait_ms = in_system / pool_size * p95_all_ops
        """
        if in_system <= 0:
            return 0.0
        return in_system / max(pool_size, 1) * self.p95_overall()

    def predicted_completion_ms(
        self, op: str, in_system: int, pool_size: int
    ) -> float:
        """Predicted wait plus predicted execution for one ``op``."""
        return self.predicted_wait_ms(in_system, pool_size) + self.p95(op)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-op ``{count, p95_ms}`` view (for reports and tests)."""
        with self._lock:
            items = [(op, list(bucket)) for op, bucket in
                     self._samples.items()]
        return {
            op: {"count": float(len(vals)), "p95_ms": self._p95(vals)}
            for op, vals in items
        }


class RouterAdmission:
    """Front-door admission gate for the sharded campaign service.

    The shard router sits in front of N worker processes, each running
    its own :class:`~repro.serve.CampaignServer` with the full graded
    QoS machinery (weighted class queues, deadline admission, degraded
    tiers). The router therefore needs only a *global* backpressure
    bound: cap total dispatched-and-unfinished queries at roughly the
    fleet's aggregate capacity so a traffic spike turns into clean,
    machine-actionable :class:`~repro.exceptions.ServerOverloadedError`
    rejections at the front door instead of unbounded pipe backlogs
    behind it. Per-worker shedding, class weighting, and degradation
    still happen where the queues live — on the workers.

    Thread-safe; rejections are side-effect free (the failed admit
    touches nothing but its own counters).
    """

    def __init__(
        self,
        capacity: int,
        min_retry_after_ms: float = 25.0,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"router admission capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self._min_retry_after_ms = float(min_retry_after_ms)
        self._lock = threading.Lock()
        self._in_flight = 0
        self._per_class: Dict[str, int] = {
            name: 0 for name in QUERY_CLASSES
        }
        self._admitted = 0
        self._rejected = 0
        self._peak = 0

    def admit(self, qos_class: str = "interactive") -> None:
        """Take one in-flight slot or raise ``ServerOverloadedError``.

        Pair every successful call with exactly one :meth:`release`.
        """
        from repro.exceptions import ServerOverloadedError

        qos_class = qos_class if qos_class in self._per_class else (
            QUERY_CLASSES[0]
        )
        with self._lock:
            if self._in_flight >= self.capacity:
                self._rejected += 1
                raise ServerOverloadedError(
                    capacity=self.capacity,
                    retry_after_ms=self._min_retry_after_ms,
                    qos_class=qos_class,
                )
            self._in_flight += 1
            self._admitted += 1
            self._per_class[qos_class] += 1
            self._peak = max(self._peak, self._in_flight)

    def release(self, qos_class: str = "interactive") -> None:
        qos_class = qos_class if qos_class in self._per_class else (
            QUERY_CLASSES[0]
        )
        with self._lock:
            self._in_flight = max(self._in_flight - 1, 0)
            self._per_class[qos_class] = max(
                self._per_class[qos_class] - 1, 0
            )

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def snapshot(self) -> Dict[str, Any]:
        """Counters for the router's ``/metrics`` aggregation."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "in_flight": self._in_flight,
                "peak_in_flight": self._peak,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "per_class": dict(self._per_class),
            }


@dataclass
class _BreakerState:
    state: str = "closed"  # closed | open | half_open
    consecutive_failures: int = 0
    opened_at: float = 0.0
    probe_inflight: bool = False


class CircuitBreaker:
    """Three-state circuit breaker for one asset kind.

    Thread-safe; all transitions are reported through the optional
    ``on_transition(kind, old_state, new_state)`` callback (the server
    turns these into ``serve.breaker.*`` metrics and ``breaker.open`` /
    ``breaker.close`` events). The callback runs outside the breaker
    lock.

    Protocol: call :meth:`allow` before a build (False → fail fast),
    then exactly one of :meth:`record_success` / :meth:`record_failure`
    for each allowed build.
    """

    def __init__(
        self,
        kind: str,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        on_transition=None,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ConfigurationError(
                f"reset_timeout must be positive, got {reset_timeout}"
            )
        self.kind = kind
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._on_transition = on_transition
        self._clock = clock
        self._state = _BreakerState()
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state.state

    def _transition(self, new_state: str) -> Optional[Tuple[str, str]]:
        old = self._state.state
        if old == new_state:
            return None
        self._state.state = new_state
        return (old, new_state)

    def _notify(self, moved: Optional[Tuple[str, str]]) -> None:
        if moved is not None and self._on_transition is not None:
            self._on_transition(self.kind, moved[0], moved[1])

    def allow(self) -> bool:
        """Whether a build may proceed right now."""
        moved = None
        with self._lock:
            st = self._state
            if st.state == "closed":
                return True
            if st.state == "open":
                if self._clock() - st.opened_at < self.reset_timeout:
                    return False
                moved = self._transition("half_open")
                st.probe_inflight = True
            elif st.state == "half_open":
                if st.probe_inflight:
                    return False
                st.probe_inflight = True
        self._notify(moved)
        return True

    def record_success(self) -> None:
        with self._lock:
            st = self._state
            st.consecutive_failures = 0
            st.probe_inflight = False
            moved = self._transition("closed")
        self._notify(moved)

    def release_probe(self) -> None:
        """Abandon an allowed build without judging the breaker.

        For outcomes that say nothing about build-infra health — a
        cooperative budget cancellation, a rejection raised inside the
        build — the slot taken by :meth:`allow` must be returned
        without counting a success or failure, or a half-open breaker
        would wait forever for a probe verdict that never comes.
        """
        with self._lock:
            self._state.probe_inflight = False

    def record_failure(self) -> None:
        moved = None
        with self._lock:
            st = self._state
            st.consecutive_failures += 1
            st.probe_inflight = False
            if (
                st.state == "half_open"
                or st.consecutive_failures >= self.failure_threshold
            ):
                moved = self._transition("open")
                st.opened_at = self._clock()
        self._notify(moved)

    def retry_after_ms(self) -> float:
        """Remaining cooldown before the next probe (ms, >= 0)."""
        with self._lock:
            st = self._state
            if st.state != "open":
                return 0.0
            remaining = self.reset_timeout - (self._clock() - st.opened_at)
        return max(remaining, 0.0) * 1000.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(kind={self.kind!r}, state={self.state!r}, "
            f"threshold={self.failure_threshold})"
        )
