"""Cache-key scheme for shareable serving assets.

Every asset the server caches — targeted RR sketches, warm query
results — is addressed by an :class:`AssetKey`, a flat hashable tuple
of:

``kind``
    What the asset is (``"trs_sketch"``, ``"result"``); distinct kinds
    never collide even for identical queries.
``targets_digest``
    SHA-256 over the canonical target array (sorted unique ``int64``
    bytes, see :func:`targets_digest`). Any change to the target set —
    adding, removing, or substituting a single node — produces a
    different digest and therefore a cache miss; permutations and
    duplicates of the *same* set digest identically.
``tags``
    The canonical tag tuple (sorted, deduplicated — see
    :func:`canonical_tags`). The server canonicalizes tags before
    executing a query, so two requests naming the same tag *set* in
    different orders share one asset and one (bit-identical) answer.
``params``
    Everything else the asset's bytes depend on, flattened to a
    hashable tuple: the op, ``k``/``r``, the RNG seed, and a digest of
    the sketch configuration. For RR sketches this is the "θ key": θ is
    a deterministic function of ``(graph, targets, tags, k, config,
    seed)``, so two queries agree on the cached sketch *iff* they agree
    on ``(targets_digest, tags, params)`` — the property suite checks
    both directions.
``epoch``
    Graph epoch the asset was computed against. Immutable graphs stay
    at epoch 0 forever, so the field is invisible to them; a mutable
    graph bumps its epoch on every applied edit batch, and assets
    whose touch trace intersected the edit are *not* migrated to the
    new epoch — their keys keep the old epoch and can never satisfy a
    newer query (including the degraded ``find_stale`` tier, which
    filters on epoch).
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable, NamedTuple, Sequence

from repro.utils.validation import as_target_array

__all__ = [
    "AssetKey",
    "canonical_tags",
    "config_digest",
    "routing_token",
    "targets_digest",
]


def targets_digest(targets: Iterable[int], num_nodes: int) -> str:
    """Collision-resistant digest of a target set.

    Validates exactly like the library entry points (via
    :func:`~repro.utils.validation.as_target_array`) and hashes the
    canonical sorted-unique ``int64`` array, so the digest is a pure
    function of the target *set*: order and duplicates don't matter,
    any single-node mutation does.
    """
    arr = as_target_array(targets, num_nodes, context="targets_digest")
    return hashlib.sha256(arr.tobytes()).hexdigest()


def canonical_tags(tags: Sequence[str]) -> tuple[str, ...]:
    """Canonical form of a tag set: sorted, deduplicated tuple.

    Tag aggregation multiplies per-tag survival probabilities in
    iteration order, so different orders could differ in the last float
    ulp; the server always executes queries with the canonical order so
    all permutations of one tag set share one bit-identical answer.
    """
    return tuple(sorted(dict.fromkeys(tags)))


def config_digest(config: object) -> str:
    """Digest of a (frozen, repr-stable) configuration object."""
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


#: Request fields that participate in routing. Everything that selects
#: the *asset* a query consumes is included; per-call execution knobs
#: (deadline, QoS class, budget caps, report flag) are not — the same
#: campaign asked politely or urgently must land on the same worker.
_ROUTING_FIELDS = (
    "targets", "tags", "seeds", "k", "r", "seed", "engine", "method",
    "num_samples", "theta_c",
)


def routing_token(request: dict) -> str:
    """Stable placement key for one wire-protocol request.

    A pure function of the request's asset-identifying fields with the
    same canonicalization the :class:`AssetKey` scheme applies (tag
    sets sorted/deduplicated, node-id sets sorted/deduplicated), so two
    requests that would share a cached asset always share a routing
    token — and therefore a worker — while unrelated campaigns spread
    across the ring. Malformed values are kept verbatim: they still
    route deterministically and fail validation on the worker.
    """
    parts: dict = {"op": str(request.get("op", ""))}
    for field in _ROUTING_FIELDS:
        if field not in request:
            continue
        value = request[field]
        if isinstance(value, (list, tuple)):
            if field in ("targets", "seeds"):
                try:
                    value = sorted({int(v) for v in value})
                except (TypeError, ValueError):
                    value = list(value)
            elif field == "tags":
                value = list(canonical_tags([str(t) for t in value]))
        parts[field] = value
    return json.dumps(parts, sort_keys=True, default=str)


class AssetKey(NamedTuple):
    """Hashable address of one cached serving asset."""

    kind: str
    targets_digest: str
    tags: tuple[str, ...]
    params: tuple
    epoch: int = 0

    def describe(self) -> str:
        """Short human-readable form for logs and metrics labels."""
        return (
            f"{self.kind}[targets={self.targets_digest[:8]}, "
            f"tags={','.join(self.tags)}, params={self.params!r}, "
            f"epoch={self.epoch}]"
        )
