"""``CampaignServer`` — concurrent campaign serving with asset reuse.

One server owns one :class:`~repro.graphs.TagGraph` and turns the
batch library into a multi-query service:

* Queries (`find_seeds` / `find_tags` / `jointly_select` /
  `estimate_spread`) run on a **bounded thread pool** behind a bounded
  admission queue; overload is rejected cleanly with
  :class:`~repro.exceptions.ServerOverloadedError` instead of queueing
  without bound.
* Expensive shareable artifacts — targeted RR sketches (the sampling
  half of TRS), warm query results, per-tag possible-world indexes, and
  tag-aggregation arrays — are built **once** (single-flight) and
  reused across queries through a byte-accounted LRU
  (:class:`~repro.serve.cache.AssetCache`).
* Every query runs inside its **own observability scope** (thread-local
  — see :mod:`repro.obs`), so ``rr.*`` / ``runtime.*`` counters are
  per-query exact even when one pooled
  :class:`~repro.engine.SamplingEngine` backs all queries (each query
  samples through a telemetry-isolated
  :class:`~repro.engine.QueryEngineView`).

Determinism contract
--------------------
A served answer is **bit-identical** to the equivalent direct library
call with the same RNG seed and *canonical* inputs (tags sorted and
deduplicated, seed lists sorted and deduplicated — the server
canonicalizes before executing, so all permutations of one query share
one answer). This holds on every cache path: cold (the server runs the
same code the library would), warm (the cached asset was produced by
that same code and the remaining selection is deterministic), and
post-eviction (the rebuild replays the same seeded build). The
differential test suite asserts this for seeds, tags, spreads, *and*
work counters: a cache hit merges the asset's build-time metrics into
the query's observation, so served reports always account for the work
embodied in the answer, not just the work done by this query.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections.abc import Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable

from repro import obs
from repro.core.joint import JointConfig, jointly_select
from repro.core.problem import JointQuery
from repro.diffusion.monte_carlo import estimate_spread
from repro.engine.runtime import RunBudget, RunTelemetry
from repro.exceptions import (
    ConfigurationError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.graphs.tag_graph import TagGraph
from repro.index.lazy import IndexManager
from repro.index.possible_world_index import theta_c as compute_theta_c
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.seeds.api import ENGINES, SeedSelection, find_seeds
from repro.serve.cache import AssetCache
from repro.serve.keys import (
    AssetKey,
    canonical_tags,
    config_digest,
    targets_digest,
)
from repro.sketch.trs import trs_build_sketch, trs_select_from_sketch
from repro.tags.api import METHODS, find_tags
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer

__all__ = ["CampaignServer", "ServeResponse", "METRICS_SCHEMA"]

#: Schema tag for serialized metrics snapshots (``repro serve
#: --metrics-out``, protocol ``metrics`` responses). ``/2`` adds
#: histogram quantiles (p50/p95/p99), the per-op latency family
#: ``serve.op.latency_ms.*``, the ``serve.inflight`` /
#: ``serve.uptime_seconds`` gauges, and ``serve.errors*`` counters —
#: see ``docs/serving.md`` for the full ``/1`` → ``/2`` diff.
METRICS_SCHEMA = "repro.serve.metrics/2"


@dataclass(frozen=True)
class ServeResponse:
    """Envelope around one served answer.

    Attributes
    ----------
    op:
        The query kind (``"find_seeds"``, ``"find_tags"``, ``"joint"``,
        ``"spread"``).
    value:
        The library-level result: a
        :class:`~repro.seeds.api.SeedSelection`,
        :class:`~repro.tags.api.TagSelection`,
        :class:`~repro.core.problem.JointResult`, or a float spread.
    cache:
        ``"miss"`` when this query built the decisive asset, ``"hit"``
        when it reused one (including single-flight joins), ``"none"``
        for uncached ops.
    elapsed_seconds:
        Wall-clock execution time on the worker (queue wait excluded).
    report:
        The per-query observability report (metrics + spans nested
        under the ``serve.query`` root). Work counters here are
        bit-identical to a direct library call's — cache hits merge the
        asset's build-time counters in.
    """

    op: str
    value: Any
    cache: str
    elapsed_seconds: float
    report: dict | None = None

    @property
    def seeds(self) -> tuple[int, ...] | None:
        """Convenience accessor for seed-bearing results."""
        return getattr(self.value, "seeds", None)

    @property
    def tags(self) -> tuple[str, ...] | None:
        """Convenience accessor for tag-bearing results."""
        return getattr(self.value, "tags", None)

    @property
    def spread(self) -> float:
        """The result's spread estimate, whatever its concrete type."""
        if isinstance(self.value, float):
            return self.value
        value = getattr(self.value, "estimated_spread", None)
        if value is None:
            value = getattr(self.value, "spread", 0.0)
        return float(value)


#: Rough in-memory footprint of a cached result object: enough for LRU
#: byte-accounting without a recursive sizeof walk.
def _approx_nbytes(value: Any) -> int:
    sized = getattr(value, "nbytes", None)
    if sized is not None:
        return int(sized)
    return max(256, len(repr(value)))


class CampaignServer:
    """Thread-safe multi-query facade over one graph.

    Parameters
    ----------
    graph:
        The tagged uncertain graph every query runs against. The server
        enables the graph's aggregation memo
        (:meth:`~repro.graphs.TagGraph.enable_probability_cache`) so
        repeat tag sets skip the per-query aggregation pass.
    config:
        Shared :class:`~repro.core.joint.JointConfig`; supplies the
        default seed engine, sketch knobs, and tag-selection knobs.
    sampler:
        Optional pooled :class:`~repro.engine.SamplingEngine` shared by
        all queries. Each query samples through
        ``sampler.for_query(...)`` — a view with per-query telemetry —
        so one set of worker processes serves every query without
        counter bleed.
    pool_size:
        Worker threads executing queries.
    queue_capacity:
        Additional queries allowed to wait beyond the ``pool_size``
        running ones; a submit past ``pool_size + queue_capacity``
        in-system queries raises :class:`ServerOverloadedError`.
    cache_bytes:
        Byte budget for the asset LRU.
    default_deadline / default_max_samples / default_max_rr_members:
        Per-query :class:`~repro.engine.RunBudget` defaults, overridable
        per call. Deadlines anchor at execution start (queue wait is
        governed by admission control, not the deadline).
    prob_cache_entries:
        Size of the graph's tag-aggregation memo (0 disables).
    events / event_capacity:
        Query-lifecycle event log (see :mod:`repro.obs.events`): pass a
        configured :class:`~repro.obs.events.EventLog` or let the
        server create a ring of ``event_capacity`` events
        (``0`` disables emission entirely).
    """

    def __init__(
        self,
        graph: TagGraph,
        config: JointConfig = JointConfig(),
        sampler=None,
        pool_size: int = 4,
        queue_capacity: int = 32,
        cache_bytes: int = 256 * 1024 * 1024,
        default_deadline: float | None = None,
        default_max_samples: int | None = None,
        default_max_rr_members: int | None = None,
        prob_cache_entries: int = 64,
        events: EventLog | None = None,
        event_capacity: int = 1024,
    ) -> None:
        if pool_size <= 0:
            raise ConfigurationError(
                f"pool_size must be positive, got {pool_size}"
            )
        if queue_capacity < 0:
            raise ConfigurationError(
                f"queue_capacity must be >= 0, got {queue_capacity}"
            )
        self._graph = graph
        self._config = config
        self._sampler = sampler
        self._default_deadline = default_deadline
        self._default_max_samples = default_max_samples
        self._default_max_rr_members = default_max_rr_members
        if prob_cache_entries:
            graph.enable_probability_cache(prob_cache_entries)

        self._metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        # Pre-register the core serving metrics so a /metrics scrape of
        # an idle server already exposes every family at zero (scrapers
        # need the t=0 sample to compute rates over the first window).
        for name in (
            "serve.queries", "serve.rejected", "serve.errors",
            "serve.cache.hits", "serve.cache.misses", "serve.cache.builds",
            "serve.cache.evictions", "serve.cache.singleflight_joins",
        ):
            self._metrics.counter(name)
        self._metrics.histogram("serve.query.latency_ms")
        self._metrics.set_gauge("serve.queue.depth", 0)
        self._metrics.set_gauge("serve.inflight", 0)
        self._cache = AssetCache(
            max_bytes=cache_bytes, on_event=self._on_cache_event
        )
        self._executor = ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="repro-serve"
        )
        self._pool_size = pool_size
        self._capacity = pool_size + queue_capacity
        self._in_system = 0
        self._executing = 0
        self._admission_lock = threading.Lock()
        self._index_manager: IndexManager | None = None
        self._warm_theta_c: int | None = None
        self._closed = False
        self._started_monotonic = time.monotonic()
        # Query-lifecycle telemetry: a monotone id per query (stamped on
        # the query's spans AND its events, so the two correlate) plus a
        # bounded event ring. Emitting events never touches observation
        # scopes or RNGs — telemetry on/off cannot change results.
        self._events = (
            events if events is not None else EventLog(capacity=event_capacity)
        )
        self._query_seq = itertools.count(1)
        self._query_local = threading.local()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> TagGraph:
        """The served graph."""
        return self._graph

    @property
    def config(self) -> JointConfig:
        """The shared query configuration."""
        return self._config

    @property
    def index_manager(self) -> IndexManager | None:
        """The frozen shared possible-world index, when warmed."""
        return self._index_manager

    @property
    def events(self) -> EventLog:
        """The query-lifecycle event log (ring + optional sink)."""
        return self._events

    @property
    def uptime_seconds(self) -> float:
        """Seconds since the server was constructed."""
        return time.monotonic() - self._started_monotonic

    def metrics(self) -> dict:
        """Snapshot of the server-level ``serve.*`` metrics."""
        # Snapshot the cache first: stats() takes the cache lock, and
        # cache counter bumps call back into _record (metrics lock)
        # while holding it — taking the metrics lock around stats()
        # would invert that order and deadlock against a concurrent
        # query's cache activity.
        stats = self._cache.stats()
        uptime = self.uptime_seconds
        with self._metrics_lock:
            self._metrics.set_gauge("serve.cache.bytes", stats.bytes)
            self._metrics.set_gauge("serve.cache.entries", stats.entries)
            self._metrics.set_gauge("serve.uptime_seconds", uptime)
            return self._metrics.as_dict()

    def health(self) -> dict:
        """Admission/queue/closed state (the ``/healthz`` document)."""
        with self._admission_lock:
            closed = self._closed
            in_system = self._in_system
            executing = self._executing
        return {
            "status": "closed" if closed else "ok",
            "closed": closed,
            "in_flight": executing,
            "queued": max(in_system - executing, 0),
            "capacity": self._capacity,
            "pool_size": self._pool_size,
            "uptime_seconds": self.uptime_seconds,
        }

    def cache_stats(self):
        """The asset cache's own counter snapshot."""
        return self._cache.stats()

    def _record(self, name: str, amount: int = 1) -> None:
        with self._metrics_lock:
            self._metrics.count(name, amount)

    def _observe_hist(self, name: str, value: float) -> None:
        with self._metrics_lock:
            self._metrics.record(name, value)

    def _set_gauge(self, name: str, value: float) -> None:
        with self._metrics_lock:
            self._metrics.set_gauge(name, value)

    def _emit(self, kind: str, trace_id: str | None = None, **attrs) -> None:
        """Emit a lifecycle event (no-op when the log is disabled)."""
        if self._events.enabled:
            self._events.emit(kind, trace_id=trace_id, **attrs)

    def _on_cache_event(self, name: str, amount: int) -> None:
        # Called under the cache lock — keep to a counter bump. The
        # metrics lock nests inside the cache lock only here, so no
        # code may take the cache lock while holding the metrics lock
        # (metrics() snapshots the cache *before* locking metrics for
        # exactly this reason).
        self._record(f"serve.cache.{name}", amount)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Finish in-flight queries and stop accepting new ones."""
        # Flip the flag under the admission lock so no query can pass
        # _admit's closed check after we start shutting the pool down.
        with self._admission_lock:
            self._closed = True
        self._executor.shutdown(wait=True)
        # In-flight queries have drained; push their final lifecycle
        # events to any attached sink. The log itself stays open so
        # post-close rejections are still recorded (and the ring stays
        # snapshottable) — the sink owner closes it.
        self._events.flush()

    def __enter__(self) -> "CampaignServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Warm-up
    # ------------------------------------------------------------------
    def warm_index(
        self,
        tags: Sequence[str] | None = None,
        theta_c: int | None = None,
        r: int = 2,
        seed: int = 0,
    ) -> list[str]:
        """Build and pin a frozen shared possible-world index.

        Builds ``theta_c`` worlds per tag (default: Theorem 6's count
        for the config's pessimistic ``theta_max`` and ``r``) with a
        deterministic RNG, then freezes the manager so any number of
        concurrent ``ltrs``/``itrs`` queries can read it. Replaying the
        same ``(tags, theta_c, seed)`` elsewhere reproduces the exact
        manager — the differential suite exploits this for bit-identity
        against direct library calls.
        """
        sketch = self._config.sketch
        if theta_c is None:
            theta_c = compute_theta_c(
                sketch.theta_max, max(r, 1), sketch.alpha, sketch.delta
            )
        manager = IndexManager(self._graph)
        built = manager.ensure_indexes(
            tags if tags is not None else self._graph.tags,
            theta_c,
            ensure_rng(seed),
        )
        self._index_manager = manager.freeze()
        self._warm_theta_c = int(theta_c)
        self._record("serve.index.warmed_tags", len(built))
        return built

    @property
    def warmed_theta_c(self) -> int | None:
        """Worlds-per-tag count of the warmed index (``None`` if cold)."""
        return self._warm_theta_c

    def warm(self, requests: Sequence[dict]) -> int:
        """Prebuild assets by executing query specs (protocol dicts).

        Returns the number of requests executed. Used by ``repro serve
        --warm``; failures propagate so a bad warm file is loud.
        """
        from repro.serve.protocol import execute_request

        for request in requests:
            execute_request(self, dict(request))
        return len(requests)

    # ------------------------------------------------------------------
    # Admission + execution
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        with self._admission_lock:
            if self._closed:
                raise ServerClosedError("campaign server is closed")
            if self._in_system >= self._capacity:
                self._record("serve.rejected")
                raise ServerOverloadedError(self._capacity)
            self._in_system += 1
            self._set_gauge("serve.queue.depth", self._in_system)

    def _release(self, _future: Future) -> None:
        with self._admission_lock:
            self._in_system -= 1
            self._set_gauge("serve.queue.depth", self._in_system)

    def _submit(self, op: str, runner: Callable) -> "Future[ServeResponse]":
        qid = f"q-{next(self._query_seq):06d}"
        try:
            self._admit()
        except (ServerClosedError, ServerOverloadedError) as exc:
            self._emit(
                "query.rejected", trace_id=qid, op=op,
                reason=type(exc).__name__,
            )
            raise
        self._emit("query.admitted", trace_id=qid, op=op)
        try:
            future = self._executor.submit(self._run_query, op, runner, qid)
        except RuntimeError as exc:
            # close() can win the race between _admit and submit; the
            # shut-down executor's RuntimeError then means "closed".
            self._release(None)
            if self._closed:
                self._emit(
                    "query.rejected", trace_id=qid, op=op,
                    reason="ServerClosedError",
                )
                raise ServerClosedError(
                    "campaign server is closed"
                ) from exc
            raise
        except BaseException:
            self._release(None)
            raise
        self._emit("query.queued", trace_id=qid, op=op)
        future.add_done_callback(self._release)
        return future

    def _run_query(
        self, op: str, runner: Callable, qid: str
    ) -> ServeResponse:
        with self._admission_lock:
            self._executing += 1
            self._set_gauge("serve.inflight", self._executing)
        self._query_local.qid = qid
        timer = Timer()
        try:
            with timer, obs.observe() as ob:
                # Stamp the query id on the tracer so spans, Chrome
                # trace events, and lifecycle events all correlate.
                ob.tracer.trace_id = qid
                with obs.span("serve.query", op=op, trace_id=qid):
                    value, cache_mode = runner(ob)
                report = ob.report()
        except BaseException as exc:
            self._record("serve.errors")
            self._record(f"serve.errors.{type(exc).__name__}")
            self._emit(
                "query.done", trace_id=qid, op=op, ok=False,
                error=type(exc).__name__,
            )
            raise
        finally:
            self._query_local.qid = None
            with self._admission_lock:
                self._executing -= 1
                self._set_gauge("serve.inflight", self._executing)
        elapsed_ms = timer.elapsed * 1000.0
        self._record("serve.queries")
        self._observe_hist("serve.query.latency_ms", elapsed_ms)
        self._observe_hist(f"serve.op.latency_ms.{op}", elapsed_ms)
        self._emit(
            "query.done", trace_id=qid, op=op, ok=True, cache=cache_mode,
            elapsed_ms=round(elapsed_ms, 3),
        )
        return ServeResponse(
            op=op,
            value=value,
            cache=cache_mode,
            elapsed_seconds=timer.elapsed,
            report=report,
        )

    def _budget(
        self,
        deadline: float | None,
        max_samples: int | None,
        max_rr_members: int | None = None,
    ) -> RunBudget | None:
        deadline = (
            deadline if deadline is not None else self._default_deadline
        )
        max_samples = (
            max_samples
            if max_samples is not None
            else self._default_max_samples
        )
        max_rr_members = (
            max_rr_members
            if max_rr_members is not None
            else self._default_max_rr_members
        )
        if deadline is None and max_samples is None and max_rr_members is None:
            return None
        return RunBudget(
            wall_seconds=deadline,
            max_samples=max_samples,
            max_rr_members=max_rr_members,
        )

    def _view(self, registry=None):
        """A telemetry-isolated engine view, or None (scalar path)."""
        if self._sampler is None:
            return None
        return self._sampler.for_query(registry=registry)

    def _runtime_dict(self, ob) -> dict | None:
        if self._sampler is None:
            return None
        return RunTelemetry(registry=ob.metrics).as_dict()

    def _get_asset(self, ob, key: AssetKey, build: Callable):
        """Fetch-or-build through the cache with lifecycle telemetry.

        Wraps :meth:`AssetCache.get_or_build`: the winning builder's
        build is bracketed by ``query.build.start`` / ``query.build.done``
        events, joiners and resident hits get ``query.cache.hit``, and
        non-builders merge the asset's build-time metrics into this
        query's observation so warm answers carry the same work
        counters as cold ones.
        """
        qid = getattr(self._query_local, "qid", None)

        def building():
            self._emit(
                "query.build.start", trace_id=qid, asset=key.kind
            )
            try:
                built = build()
            except BaseException as exc:
                self._emit(
                    "query.build.done", trace_id=qid, asset=key.kind,
                    ok=False, error=type(exc).__name__,
                )
                raise
            self._emit(
                "query.build.done", trace_id=qid, asset=key.kind, ok=True
            )
            return built

        asset, built_here = self._cache.get_or_build(key, building)
        if not built_here:
            self._emit("query.cache.hit", trace_id=qid, asset=key.kind)
            ob.metrics.merge(asset.metrics)
        return asset, built_here

    # ------------------------------------------------------------------
    # Queries — sync facade
    # ------------------------------------------------------------------
    def find_seeds(self, *args, **kwargs) -> ServeResponse:
        """Top-``k`` seed selection (blocking). See :meth:`submit_find_seeds`."""
        return self.submit_find_seeds(*args, **kwargs).result()

    def find_tags(self, *args, **kwargs) -> ServeResponse:
        """Top-``r`` tag selection (blocking). See :meth:`submit_find_tags`."""
        return self.submit_find_tags(*args, **kwargs).result()

    def jointly_select(self, *args, **kwargs) -> ServeResponse:
        """Full Algorithm 2 (blocking). See :meth:`submit_jointly_select`."""
        return self.submit_jointly_select(*args, **kwargs).result()

    def estimate_spread(self, *args, **kwargs) -> ServeResponse:
        """MC spread estimate (blocking). See :meth:`submit_estimate_spread`."""
        return self.submit_estimate_spread(*args, **kwargs).result()

    # ------------------------------------------------------------------
    # Queries — async submission
    # ------------------------------------------------------------------
    def submit_find_seeds(
        self,
        targets: Sequence[int],
        tags: Sequence[str],
        k: int,
        engine: str | None = None,
        seed: int = 0,
        num_samples: int = 100,
        deadline: float | None = None,
        max_samples: int | None = None,
        max_rr_members: int | None = None,
    ) -> "Future[ServeResponse]":
        """Queue a seed-selection query; the future yields a response.

        ``engine`` defaults to the server config's ``seed_engine``;
        ``"trs"`` queries reuse cached RR sketches across queries, other
        engines reuse whole results. ``seed`` pins the query's RNG —
        the served answer is bit-identical to
        ``repro.find_seeds(graph, targets, canonical_tags(tags), k,
        engine=..., rng=seed)``.
        """
        engine = engine or self._config.seed_engine
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        tags_c = canonical_tags(tags)
        tdigest = targets_digest(targets, self._graph.num_nodes)
        targets = tuple(int(t) for t in targets)

        def runner(ob):
            budget = self._budget(deadline, max_samples, max_rr_members)
            if engine == "trs":
                return self._seeds_via_sketch(
                    ob, targets, tdigest, tags_c, k, seed, budget
                )
            return self._seeds_via_result(
                ob, targets, tdigest, tags_c, k, engine, seed,
                num_samples, budget,
            )

        return self._submit("find_seeds", runner)

    def _seeds_via_sketch(
        self, ob, targets, tdigest, tags_c, k, seed, budget
    ) -> tuple[SeedSelection, str]:
        """TRS path: cache the expensive sampling half, re-cover per query."""
        key = AssetKey(
            kind="trs_sketch",
            targets_digest=tdigest,
            tags=tags_c,
            params=(k, seed, config_digest(self._config.sketch)),
        )

        def build():
            with obs.observe() as build_ob:
                view = self._view(registry=build_ob.metrics)
                sketch = trs_build_sketch(
                    self._graph, targets, tags_c, k,
                    config=self._config.sketch, rng=ensure_rng(seed),
                    engine=view, budget=budget,
                )
            return sketch, sketch.nbytes, build_ob.metrics

        # _get_asset accounts a reused asset's build work to this
        # query's report, so warm answers carry cold answers' counters.
        asset, built_here = self._get_asset(ob, key, build)
        result = trs_select_from_sketch(self._graph, asset.value, k)
        selection = SeedSelection(
            seeds=result.seeds,
            estimated_spread=result.estimated_spread,
            engine="trs",
            elapsed_seconds=result.elapsed_seconds,
            telemetry=self._runtime_dict(ob),
        )
        return selection, ("miss" if built_here else "hit")

    def _seeds_via_result(
        self, ob, targets, tdigest, tags_c, k, engine, seed, num_samples,
        budget,
    ) -> tuple[SeedSelection, str]:
        """Non-TRS engines: cache the whole (deterministic) result."""
        key = AssetKey(
            kind="result",
            targets_digest=tdigest,
            tags=tags_c,
            params=(
                "find_seeds", engine, k, seed, num_samples,
                config_digest(self._config.sketch),
            ),
        )

        def build():
            with obs.observe() as build_ob:
                view = self._view(registry=build_ob.metrics)
                selection = find_seeds(
                    self._graph, targets, tags_c, k,
                    engine=engine, config=self._config.sketch,
                    manager=self._manager_for(engine, tags_c),
                    num_samples=num_samples, rng=ensure_rng(seed),
                    sampler=view, budget=budget,
                )
            return selection, _approx_nbytes(selection), build_ob.metrics

        asset, built_here = self._get_asset(ob, key, build)
        return asset.value, ("miss" if built_here else "hit")

    def _manager_for(
        self, engine: str, tags_c: tuple[str, ...]
    ) -> IndexManager | None:
        """The frozen shared index when it can serve this query.

        Only global-universe engines (``ltrs``/``itrs``) read the shared
        manager, and only when every queried tag is already indexed —
        otherwise the query falls back to a fresh private manager, like
        a direct library call (a frozen manager must never build).
        """
        manager = self._index_manager
        if manager is None or engine not in ("ltrs", "itrs"):
            return None
        if all(manager.has_index(tag) for tag in tags_c):
            return manager
        return None

    def submit_find_tags(
        self,
        seeds: Sequence[int],
        targets: Sequence[int],
        r: int,
        method: str | None = None,
        seed: int = 0,
        deadline: float | None = None,
        max_samples: int | None = None,
        max_rr_members: int | None = None,
    ) -> "Future[ServeResponse]":
        """Queue a tag-selection query (seed set canonicalized)."""
        method = method or self._config.tag_method
        if method not in METHODS:
            raise ConfigurationError(
                f"unknown tag method {method!r}; expected one of {METHODS}"
            )
        seeds_c = tuple(sorted({int(s) for s in seeds}))
        tdigest = targets_digest(targets, self._graph.num_nodes)
        targets = tuple(int(t) for t in targets)
        key = AssetKey(
            kind="result",
            targets_digest=tdigest,
            tags=(),
            params=(
                "find_tags", method, r, seed, seeds_c,
                config_digest(self._config.tag_config),
            ),
        )

        def runner(ob):
            def build():
                with obs.observe() as build_ob:
                    selection = find_tags(
                        self._graph, seeds_c, targets, r,
                        method=method, config=self._config.tag_config,
                        rng=ensure_rng(seed),
                    )
                return (
                    selection, _approx_nbytes(selection), build_ob.metrics
                )

            asset, built_here = self._cache.get_or_build(key, build)
            if not built_here:
                ob.metrics.merge(asset.metrics)
            return asset.value, ("miss" if built_here else "hit")

        return self._submit("find_tags", runner)

    def submit_jointly_select(
        self,
        targets: Sequence[int],
        k: int,
        r: int,
        seed: int = 0,
        deadline: float | None = None,
        max_samples: int | None = None,
        max_rr_members: int | None = None,
    ) -> "Future[ServeResponse]":
        """Queue a full joint (Algorithm 2) query."""
        tdigest = targets_digest(targets, self._graph.num_nodes)
        targets = tuple(int(t) for t in targets)
        key = AssetKey(
            kind="result",
            targets_digest=tdigest,
            tags=(),
            params=("joint", k, r, seed, config_digest(self._config)),
        )

        def runner(ob):
            budget = self._budget(deadline, max_samples, max_rr_members)

            def build():
                with obs.observe() as build_ob:
                    view = self._view(registry=build_ob.metrics)
                    result = jointly_select(
                        self._graph, JointQuery(targets, k=k, r=r),
                        self._config, rng=ensure_rng(seed), sampler=view,
                        budget=budget,
                    )
                return result, _approx_nbytes(result), build_ob.metrics

            asset, built_here = self._cache.get_or_build(key, build)
            if not built_here:
                ob.metrics.merge(asset.metrics)
            return asset.value, ("miss" if built_here else "hit")

        return self._submit("joint", runner)

    def submit_estimate_spread(
        self,
        seeds: Sequence[int],
        targets: Sequence[int],
        tags: Sequence[str],
        num_samples: int | None = None,
        seed: int = 0,
        deadline: float | None = None,
        max_samples: int | None = None,
        max_rr_members: int | None = None,
    ) -> "Future[ServeResponse]":
        """Queue an MC spread estimate (seeds and tags canonicalized)."""
        tags_c = canonical_tags(tags)
        seeds_c = tuple(sorted({int(s) for s in seeds}))
        samples = (
            num_samples if num_samples is not None
            else self._config.eval_samples
        )
        tdigest = targets_digest(targets, self._graph.num_nodes)
        targets = tuple(int(t) for t in targets)
        key = AssetKey(
            kind="result",
            targets_digest=tdigest,
            tags=tags_c,
            params=("spread", seeds_c, samples, seed),
        )

        def runner(ob):
            budget = self._budget(deadline, max_samples, max_rr_members)

            def build():
                with obs.observe() as build_ob:
                    view = self._view(registry=build_ob.metrics)
                    value = estimate_spread(
                        self._graph, seeds_c, targets, tags_c,
                        num_samples=samples, rng=ensure_rng(seed),
                        engine=view, budget=budget,
                    )
                return float(value), 64, build_ob.metrics

            asset, built_here = self._cache.get_or_build(key, build)
            if not built_here:
                ob.metrics.merge(asset.metrics)
            return asset.value, ("miss" if built_here else "hit")

        return self._submit("spread", runner)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self._cache.stats()
        return (
            f"CampaignServer(graph={self._graph!r}, "
            f"cache=[{stats.entries} entries, {stats.bytes} bytes], "
            f"in_system={self._in_system}/{self._capacity})"
        )
