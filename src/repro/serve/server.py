"""``CampaignServer`` — concurrent campaign serving with asset reuse.

One server owns one :class:`~repro.graphs.TagGraph` and turns the
batch library into a multi-query service:

* Queries (`find_seeds` / `find_tags` / `jointly_select` /
  `estimate_spread`) run on a **bounded thread pool** behind per-class
  admission queues (``interactive`` / ``batch`` / ``best_effort``,
  drained by smooth weighted round-robin — see
  :mod:`repro.serve.qos`); overload is rejected cleanly with
  :class:`~repro.exceptions.ServerOverloadedError` instead of queueing
  without bound, and every rejection carries a machine-readable
  ``code`` / ``retry_after_ms`` / ``qos_class`` triple.
* **Graded overload behavior** instead of a binary gate: explicit
  per-query deadlines are checked *predictively* at admission (rolling
  per-op p95s → predicted completion; doomed queries are rejected up
  front) and *cooperatively* during execution (the deadline rides the
  PR 2 :class:`~repro.engine.RunBudget` to shard boundaries; partial
  work is salvaged into the cache). Under pressure ``best_effort``
  queries are downgraded to a reduced-θ ``approximate`` tier — a
  *cheaper answer with quantified error* (the response is tagged with
  the θ it used and its widened ε) — then to resident-cache-only
  service, and only then shed. Per-asset-kind circuit breakers stop
  repeated build failures from burning the pool.
* Expensive shareable artifacts — targeted RR sketches (the sampling
  half of TRS), warm query results, per-tag possible-world indexes, and
  tag-aggregation arrays — are built **once** (single-flight) and
  reused across queries through a byte-accounted LRU
  (:class:`~repro.serve.cache.AssetCache`).
* Every query runs inside its **own observability scope** (thread-local
  — see :mod:`repro.obs`), so ``rr.*`` / ``runtime.*`` counters are
  per-query exact even when one pooled
  :class:`~repro.engine.SamplingEngine` backs all queries (each query
  samples through a telemetry-isolated
  :class:`~repro.engine.QueryEngineView`).

Determinism contract
--------------------
A served answer is **bit-identical** to the equivalent direct library
call with the same RNG seed and *canonical* inputs (tags sorted and
deduplicated, seed lists sorted and deduplicated — the server
canonicalizes before executing, so all permutations of one query share
one answer). This holds on every cache path: cold (the server runs the
same code the library would), warm (the cached asset was produced by
that same code and the remaining selection is deterministic), and
post-eviction (the rebuild replays the same seeded build). The
differential test suite asserts this for seeds, tags, spreads, *and*
work counters: a cache hit merges the asset's build-time metrics into
the query's observation, so served reports always account for the work
embodied in the answer, not just the work done by this query.

Degraded tiers are the one *deliberate* departure: an ``approximate``
answer is bit-identical to a direct call *with the degraded sketch
config* (the reduced-θ config participates in the cache key via its
digest, so full and approximate assets never collide), a ``stale``
answer reuses a resident asset built for different parameters, and a
``salvaged`` answer reuses partial work a budget cancellation left
behind. Every non-full tier is tagged on the response (``tier`` +
``degraded`` payload) — degraded answers are never silent.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from collections import deque
from collections.abc import Sequence
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from dataclasses import dataclass, field, replace as dc_replace
from typing import Any, Callable

from repro import obs
from repro.core.joint import JointConfig, jointly_select
from repro.core.problem import JointQuery
from repro.diffusion.monte_carlo import estimate_spread
from repro.engine.runtime import RunBudget, RunTelemetry
from repro.exceptions import (
    BudgetExceededError,
    CircuitOpenError,
    ConfigurationError,
    DeadlineRejectedError,
    InvalidQueryError,
    QueryRejectedError,
    QueryShedError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.graphs.mutable import GraphEdit, MutableTagGraph, edit_from_dict
from repro.graphs.tag_graph import TagGraph
from repro.index.lazy import IndexManager
from repro.index.possible_world_index import theta_c as compute_theta_c
from repro.obs.distributed import (
    FlightRecorder,
    TraceCollector,
    empty_trace_payload,
    span_bundle_from_tracer,
)
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.seeds.api import ENGINES, SeedSelection, find_seeds
from repro.serve.cache import AssetCache
from repro.serve.chaos import InjectedChaosError, ServeFaultPlan
from repro.serve.keys import (
    AssetKey,
    canonical_tags,
    config_digest,
    targets_digest,
)
from repro.serve.qos import (
    QUERY_CLASSES,
    CircuitBreaker,
    LatencyPredictor,
    QosConfig,
    WeightedClassQueues,
)
from repro.sketch.incremental import (
    REPAIR_MODES,
    RepairableSketch,
    trs_build_repairable_sketch,
)
from repro.sketch.trs import trs_build_sketch, trs_select_from_sketch
from repro.tags.api import METHODS, find_tags
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer

__all__ = ["CampaignServer", "ServeResponse", "METRICS_SCHEMA"]

#: Schema tag for serialized metrics snapshots (``repro serve
#: --metrics-out``, protocol ``metrics`` responses). ``/2`` adds
#: histogram quantiles (p50/p95/p99), the per-op latency family
#: ``serve.op.latency_ms.*``, the ``serve.inflight`` /
#: ``serve.uptime_seconds`` gauges, and ``serve.errors*`` counters.
#: ``/3`` is additive again: QoS families (``serve.queries.<class>``,
#: ``serve.queue.depth.<class>`` gauges, ``serve.queue.wait_ms``
#: histogram, ``serve.utilization`` gauge), graded-overload counters
#: (``serve.rejected.<code>``, ``serve.degraded(+.<tier>)``,
#: ``serve.cancelled``, ``serve.salvaged``), circuit-breaker counters
#: (``serve.breaker.<state>``, ``serve.breaker.fastfail``), and cache
#: ``puts``/``stale_hits``. ``/4`` adds the mutable-graph families:
#: the ``serve.epoch`` gauge, edit counters (``serve.edits.applied``,
#: ``serve.edits.count``, ``serve.edits.dirty_edges``) and asset-
#: migration counters (``serve.repair.promoted`` / ``.repaired`` /
#: ``.dropped`` / ``.resampled_sets``) — see ``docs/serving.md`` and
#: ``docs/mutability.md`` for the diff.
METRICS_SCHEMA = "repro.serve.metrics/4"


@dataclass(frozen=True)
class ServeResponse:
    """Envelope around one served answer.

    Attributes
    ----------
    op:
        The query kind (``"find_seeds"``, ``"find_tags"``, ``"joint"``,
        ``"spread"``).
    value:
        The library-level result: a
        :class:`~repro.seeds.api.SeedSelection`,
        :class:`~repro.tags.api.TagSelection`,
        :class:`~repro.core.problem.JointResult`, or a float spread.
    cache:
        ``"miss"`` when this query built the decisive asset, ``"hit"``
        when it reused one (including single-flight joins), ``"none"``
        for uncached ops.
    elapsed_seconds:
        Wall-clock execution time on the worker (queue wait excluded).
    report:
        The per-query observability report (metrics + spans nested
        under the ``serve.query`` root). Work counters here are
        bit-identical to a direct library call's — cache hits merge the
        asset's build-time counters in.
    qos_class:
        The admission class this query ran under.
    tier:
        ``"full"`` for the normal bit-exact answer; ``"approximate"``
        (reduced-θ degraded build), ``"stale"`` (resident asset built
        for different parameters), or ``"salvaged"`` (partial work left
        by a budget cancellation) when load shedding downgraded it.
    degraded:
        ``None`` for full answers; otherwise the quantified-error tag
        (θ used vs. full, effective ε, CI width — see
        ``docs/serving.md`` for the approximate-tier contract).
    epoch:
        Graph epoch this answer was computed against. Always ``0`` for
        an immutable server; on a mutable one the epoch is pinned at
        query start, so a concurrent :meth:`CampaignServer.apply_edits`
        never tears a single answer across two graph versions.
    """

    op: str
    value: Any
    cache: str
    elapsed_seconds: float
    report: dict | None = None
    qos_class: str = "interactive"
    tier: str = "full"
    degraded: dict | None = None
    epoch: int = 0

    @property
    def seeds(self) -> tuple[int, ...] | None:
        """Convenience accessor for seed-bearing results."""
        return getattr(self.value, "seeds", None)

    @property
    def tags(self) -> tuple[str, ...] | None:
        """Convenience accessor for tag-bearing results."""
        return getattr(self.value, "tags", None)

    @property
    def spread(self) -> float:
        """The result's spread estimate, whatever its concrete type."""
        if isinstance(self.value, float):
            return self.value
        value = getattr(self.value, "estimated_spread", None)
        if value is None:
            value = getattr(self.value, "spread", 0.0)
        return float(value)


#: Rough in-memory footprint of a cached result object: enough for LRU
#: byte-accounting without a recursive sizeof walk.
def _approx_nbytes(value: Any) -> int:
    sized = getattr(value, "nbytes", None)
    if sized is not None:
        return int(sized)
    return max(256, len(repr(value)))


@dataclass
class _QueryItem:
    """One admitted query waiting in (or dispatched from) a class queue."""

    qid: str
    op: str
    runner: Callable
    future: Future
    qos_class: str
    tier: str
    deadline_s: float | None
    enqueued_at: float
    queue_wait_s: float = 0.0
    #: Inbound distributed-trace context (``repro.obs.distributed``):
    #: set when a shard router propagated a TraceContext with this
    #: query; the executing thread roots its spans under it.
    trace: Any = None


class CampaignServer:
    """Thread-safe multi-query facade over one graph.

    Parameters
    ----------
    graph:
        The tagged uncertain graph every query runs against. The server
        enables the graph's aggregation memo
        (:meth:`~repro.graphs.TagGraph.enable_probability_cache`) so
        repeat tag sets skip the per-query aggregation pass.
    config:
        Shared :class:`~repro.core.joint.JointConfig`; supplies the
        default seed engine, sketch knobs, and tag-selection knobs.
    sampler:
        Optional pooled :class:`~repro.engine.SamplingEngine` shared by
        all queries. Each query samples through
        ``sampler.for_query(...)`` — a view with per-query telemetry —
        so one set of worker processes serves every query without
        counter bleed.
    pool_size:
        Worker threads executing queries.
    queue_capacity:
        Additional queries allowed to wait beyond the ``pool_size``
        running ones; a submit past ``pool_size + queue_capacity``
        in-system queries raises :class:`ServerOverloadedError`.
    cache_bytes:
        Byte budget for the asset LRU.
    default_deadline / default_max_samples / default_max_rr_members:
        Per-query :class:`~repro.engine.RunBudget` defaults, overridable
        per call. An *explicit* per-call ``deadline`` additionally
        participates in admission control (predictive rejection) and is
        consumed by queue wait; the server-wide default only bounds
        execution.
    prob_cache_entries:
        Size of the graph's tag-aggregation memo (0 disables).
    events / event_capacity:
        Query-lifecycle event log (see :mod:`repro.obs.events`): pass a
        configured :class:`~repro.obs.events.EventLog` or let the
        server create a ring of ``event_capacity`` events
        (``0`` disables emission entirely).
    qos:
        :class:`~repro.serve.qos.QosConfig` — class weights, shedding
        thresholds, degraded-tier factor, deadline-admission and
        circuit-breaker knobs. Defaults apply when omitted.
    chaos:
        Optional :class:`~repro.serve.chaos.ServeFaultPlan` injecting
        deterministic faults at admission/dequeue/build boundaries;
        its ``engine_plan`` (if any) is installed on ``sampler`` so one
        seeded scenario exercises worker-level and serve-level faults
        together.
    mutable:
        When true (or when ``graph`` already is a
        :class:`~repro.graphs.MutableTagGraph`), the server serves
        versioned snapshots and accepts :meth:`apply_edits`; TRS
        sketches are built on the repairable sampler so edits patch
        them incrementally instead of invalidating them.
    repair_mode:
        Kernel for repairable sketch builds on a mutable server:
        ``"scalar"`` (default) or ``"bitparallel"``.
    tracing:
        When true the server keeps a
        :class:`~repro.obs.distributed.TraceCollector` and deposits
        every query's completed spans into it, so ``/trace`` and
        ``repro serve --trace`` can export Chrome traces without a
        shard router. Off by default — tracing must never cost a
        hot-path cycle when unused, and answers/work counters are
        bit-identical either way.
    """

    def __init__(
        self,
        graph: TagGraph,
        config: JointConfig = JointConfig(),
        sampler=None,
        pool_size: int = 4,
        queue_capacity: int = 32,
        cache_bytes: int = 256 * 1024 * 1024,
        default_deadline: float | None = None,
        default_max_samples: int | None = None,
        default_max_rr_members: int | None = None,
        prob_cache_entries: int = 64,
        events: EventLog | None = None,
        event_capacity: int = 1024,
        qos: QosConfig | None = None,
        chaos: ServeFaultPlan | None = None,
        mutable: bool = False,
        repair_mode: str = "scalar",
        tracing: bool = False,
    ) -> None:
        if pool_size <= 0:
            raise ConfigurationError(
                f"pool_size must be positive, got {pool_size}"
            )
        if queue_capacity < 0:
            raise ConfigurationError(
                f"queue_capacity must be >= 0, got {queue_capacity}"
            )
        # A mutable server wraps the graph in a versioned edit layer
        # and serves immutable per-epoch snapshots; apply_edits() swaps
        # the (snapshot, epoch) pair atomically while in-flight queries
        # stay pinned to the epoch they started under.
        self._mutable: MutableTagGraph | None = None
        if isinstance(graph, MutableTagGraph):
            self._mutable = graph
        elif mutable:
            self._mutable = MutableTagGraph(graph)
        if self._mutable is not None:
            served = self._mutable.snapshot()
            epoch0 = self._mutable.epoch
        else:
            served, epoch0 = graph, 0
        if repair_mode not in REPAIR_MODES:
            raise ConfigurationError(
                f"repair_mode must be one of {REPAIR_MODES}, "
                f"got {repair_mode!r}"
            )
        self._graph_state: tuple[TagGraph, int] = (served, epoch0)
        self._edit_lock = threading.Lock()
        self._repair_mode = repair_mode
        self._config = config
        self._sampler = sampler
        self._default_deadline = default_deadline
        self._default_max_samples = default_max_samples
        self._default_max_rr_members = default_max_rr_members
        self._prob_cache_entries = prob_cache_entries
        if prob_cache_entries:
            served.enable_probability_cache(prob_cache_entries)

        self._qos = qos if qos is not None else QosConfig()
        self._chaos = chaos
        if (
            chaos is not None
            and chaos.engine_plan is not None
            and sampler is not None
        ):
            sampler.fault_plan = chaos.engine_plan

        self._metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        # Pre-register the core serving metrics so a /metrics scrape of
        # an idle server already exposes every family at zero (scrapers
        # need the t=0 sample to compute rates over the first window).
        for name in (
            "serve.queries", "serve.rejected", "serve.errors",
            "serve.degraded", "serve.cancelled", "serve.salvaged",
            "serve.cache.hits", "serve.cache.misses", "serve.cache.builds",
            "serve.cache.evictions", "serve.cache.singleflight_joins",
            "serve.edits.applied", "serve.edits.count",
            "serve.edits.dirty_edges", "serve.repair.promoted",
            "serve.repair.repaired", "serve.repair.dropped",
            "serve.repair.resampled_sets",
        ):
            self._metrics.counter(name)
        self._metrics.set_gauge("serve.epoch", epoch0)
        self._metrics.histogram("serve.query.latency_ms")
        self._metrics.histogram("serve.queue.wait_ms")
        self._metrics.set_gauge("serve.queue.depth", 0)
        self._metrics.set_gauge("serve.inflight", 0)
        self._metrics.set_gauge("serve.utilization", 0.0)
        for name in QUERY_CLASSES:
            self._metrics.set_gauge(f"serve.queue.depth.{name}", 0)
        self._cache = AssetCache(
            max_bytes=cache_bytes, on_event=self._on_cache_event
        )
        self._executor = ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="repro-serve"
        )
        self._pool_size = pool_size
        self._capacity = pool_size + queue_capacity
        self._in_system = 0
        self._executing = 0
        self._dispatched = 0
        self._admission_lock = threading.Lock()
        self._queues = WeightedClassQueues(self._qos.weight_map)
        self._predictor = LatencyPredictor(self._qos.predictor_window)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self._index_manager: IndexManager | None = None
        self._warm_theta_c: int | None = None
        self._closed = False
        self._started_monotonic = time.monotonic()
        # Query-lifecycle telemetry: a monotone id per query (stamped on
        # the query's spans AND its events, so the two correlate) plus a
        # bounded event ring. Emitting events never touches observation
        # scopes or RNGs — telemetry on/off cannot change results.
        self._events = (
            events if events is not None else EventLog(capacity=event_capacity)
        )
        self._query_seq = itertools.count(1)
        self._query_local = threading.local()
        # Distributed tracing (repro.obs.distributed). The staged
        # context hands an inbound TraceContext from the protocol layer
        # (request thread) to _submit on the same thread; the export
        # ring buffers finished span bundles for a shard worker loop to
        # piggy-back on replies. The flight recorder is always on — a
        # qualifying record is one lock-append.
        self._staged_trace = threading.local()
        self._span_lock = threading.Lock()
        self._span_exports: deque = deque(maxlen=256)
        self._trace_collector = (
            TraceCollector(label="server") if tracing else None
        )
        self.flightrec = FlightRecorder(
            self._qos.flight_capacity, slow_ms=self._qos.flight_slow_ms
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def _graph(self) -> TagGraph:
        """The graph snapshot for the *calling context*.

        On a query worker thread this is the snapshot pinned at query
        start (:meth:`_run_query` stores the ``(graph, epoch)`` pair in
        the query's thread-local), so a single query never observes two
        graph versions even if :meth:`apply_edits` lands mid-execution.
        Everywhere else it is the current epoch's snapshot. Reading the
        tuple is a single attribute load — atomic under the GIL, so no
        lock and no torn ``(graph, epoch)`` pairs.
        """
        state = getattr(self._query_local, "graph_state", None)
        return (state or self._graph_state)[0]

    def _query_epoch(self) -> int:
        """Epoch paired with :attr:`_graph` for the calling context."""
        state = getattr(self._query_local, "graph_state", None)
        return (state or self._graph_state)[1]

    @property
    def graph(self) -> TagGraph:
        """The served graph (current-epoch snapshot)."""
        return self._graph

    @property
    def epoch(self) -> int:
        """Current graph epoch (``0`` forever on an immutable server)."""
        return self._graph_state[1]

    @property
    def graph_state(self) -> tuple[TagGraph, int]:
        """Atomic ``(graph, epoch)`` snapshot currently being served.

        The pair is replaced wholesale by :meth:`apply_edits`, so a
        caller that needs a consistent graph/epoch view (the shard
        workers' scatter/gather coverage path) reads this once instead
        of racing :attr:`graph` against :attr:`epoch`.
        """
        return self._graph_state

    @property
    def mutable_graph(self) -> MutableTagGraph | None:
        """The versioned edit layer, or ``None`` if immutable."""
        return self._mutable

    @property
    def config(self) -> JointConfig:
        """The shared query configuration."""
        return self._config

    @property
    def qos(self) -> QosConfig:
        """The QoS configuration (weights, thresholds, breaker knobs)."""
        return self._qos

    @property
    def index_manager(self) -> IndexManager | None:
        """The frozen shared possible-world index, when warmed."""
        return self._index_manager

    @property
    def events(self) -> EventLog:
        """The query-lifecycle event log (ring + optional sink)."""
        return self._events

    @property
    def uptime_seconds(self) -> float:
        """Seconds since the server was constructed."""
        return time.monotonic() - self._started_monotonic

    def metrics(self) -> dict:
        """Snapshot of the server-level ``serve.*`` metrics."""
        # Snapshot the cache first: stats() takes the cache lock, and
        # cache counter bumps call back into _record (metrics lock)
        # while holding it — taking the metrics lock around stats()
        # would invert that order and deadlock against a concurrent
        # query's cache activity.
        stats = self._cache.stats()
        uptime = self.uptime_seconds
        utilization = self._utilization()
        epoch = self._graph_state[1]
        with self._metrics_lock:
            self._metrics.set_gauge("serve.cache.bytes", stats.bytes)
            self._metrics.set_gauge("serve.cache.entries", stats.entries)
            self._metrics.set_gauge("serve.uptime_seconds", uptime)
            self._metrics.set_gauge("serve.utilization", utilization)
            self._metrics.set_gauge("serve.epoch", epoch)
            return self._metrics.as_dict()

    def breaker_states(self) -> dict[str, str]:
        """Current circuit-breaker state per asset kind."""
        with self._breaker_lock:
            breakers = dict(self._breakers)
        return {kind: breaker.state for kind, breaker in breakers.items()}

    def predictor_snapshot(self) -> dict:
        """Rolling per-op latency windows feeding deadline admission."""
        return self._predictor.snapshot()

    def health(self) -> dict:
        """Admission/queue/closed state (the ``/healthz`` document).

        ``status`` is ``"degraded"`` (still healthy — HTTP 200) while
        the server is shedding (utilization at or past the QoS
        ``shed_threshold``) or any asset kind's circuit breaker is not
        closed; ``"closed"`` once :meth:`close` ran.
        """
        with self._admission_lock:
            closed = self._closed
            in_system = self._in_system
            executing = self._executing
            depths = self._queues.depths()
        breakers = self.breaker_states()
        utilization = in_system / self._capacity if self._capacity else 0.0
        shedding = utilization >= self._qos.shed_threshold
        breaker_open = any(state != "closed" for state in breakers.values())
        degraded = not closed and (shedding or breaker_open)
        if closed:
            status = "closed"
        elif degraded:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "closed": closed,
            "degraded": degraded,
            "shedding": shedding,
            "in_flight": executing,
            "queued": max(in_system - executing, 0),
            "queue_depths": depths,
            "capacity": self._capacity,
            "pool_size": self._pool_size,
            "utilization": round(utilization, 4),
            "breakers": breakers,
            "uptime_seconds": self.uptime_seconds,
            "epoch": self._graph_state[1],
            "mutable": self._mutable is not None,
        }

    def cache_stats(self):
        """The asset cache's own counter snapshot."""
        return self._cache.stats()

    def _record(self, name: str, amount: int = 1) -> None:
        with self._metrics_lock:
            self._metrics.count(name, amount)

    def _observe_hist(self, name: str, value: float) -> None:
        with self._metrics_lock:
            self._metrics.record(name, value)

    def _set_gauge(self, name: str, value: float) -> None:
        with self._metrics_lock:
            self._metrics.set_gauge(name, value)

    def _emit(self, kind: str, trace_id: str | None = None, **attrs) -> None:
        """Emit a lifecycle event (no-op when the log is disabled)."""
        if self._events.enabled:
            self._events.emit(kind, trace_id=trace_id, **attrs)

    def _on_cache_event(self, name: str, amount: int) -> None:
        # Called under the cache lock — keep to a counter bump. The
        # metrics lock nests inside the cache lock only here, so no
        # code may take the cache lock while holding the metrics lock
        # (metrics() snapshots the cache *before* locking metrics for
        # exactly this reason).
        self._record(f"serve.cache.{name}", amount)

    def _utilization(self) -> float:
        # Racy single-int read; good enough for gauges and shed errors.
        return self._in_system / self._capacity if self._capacity else 0.0

    def _retry_after_ms(self) -> float:
        """Advertised retry delay: roughly one pool drain of the backlog."""
        predicted = self._predictor.predicted_wait_ms(1, self._pool_size)
        return max(predicted, self._qos.min_retry_after_ms)

    # ------------------------------------------------------------------
    # Circuit breakers
    # ------------------------------------------------------------------
    def _breaker(self, kind: str) -> CircuitBreaker:
        with self._breaker_lock:
            breaker = self._breakers.get(kind)
            if breaker is None:
                breaker = CircuitBreaker(
                    kind,
                    failure_threshold=self._qos.breaker_failure_threshold,
                    reset_timeout=self._qos.breaker_reset_timeout,
                    on_transition=self._on_breaker_transition,
                )
                self._breakers[kind] = breaker
            return breaker

    def _on_breaker_transition(self, kind: str, old: str, new: str) -> None:
        self._record(f"serve.breaker.{new}")
        verb = {
            "open": "breaker.open",
            "closed": "breaker.close",
            "half_open": "breaker.half_open",
        }[new]
        self._emit(verb, asset=kind, previous=old)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Finish in-flight queries and stop accepting new ones.

        Queued-but-undispatched queries are drained and rejected with
        :class:`ServerClosedError`; every admitted query therefore ends
        in exactly one of done / rejected, never silently dropped.
        """
        # Flip the flag under the admission lock so no query can pass
        # the closed check after we start shutting the pool down.
        with self._admission_lock:
            already = self._closed
            self._closed = True
            drained = self._queues.drain()
            self._in_system -= len(drained)
            self._set_gauge("serve.queue.depth", self._in_system)
            self._sync_class_depths_locked()
        for item in drained:
            self._emit(
                "query.rejected", trace_id=item.qid, op=item.op,
                reason="ServerClosedError", qos_class=item.qos_class,
            )
            try:
                item.future.set_exception(
                    ServerClosedError("campaign server is closed")
                )
            except InvalidStateError:  # pragma: no cover - client cancel
                pass
        if not already:
            self._executor.shutdown(wait=True)
        # In-flight queries have drained; push their final lifecycle
        # events to any attached sink. The log itself stays open so
        # post-close rejections are still recorded (and the ring stays
        # snapshottable) — the sink owner closes it.
        self._events.flush()

    def __enter__(self) -> "CampaignServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Warm-up
    # ------------------------------------------------------------------
    def warm_index(
        self,
        tags: Sequence[str] | None = None,
        theta_c: int | None = None,
        r: int = 2,
        seed: int = 0,
    ) -> list[str]:
        """Build and pin a frozen shared possible-world index.

        Builds ``theta_c`` worlds per tag (default: Theorem 6's count
        for the config's pessimistic ``theta_max`` and ``r``) with a
        deterministic RNG, then freezes the manager so any number of
        concurrent ``ltrs``/``itrs`` queries can read it. Replaying the
        same ``(tags, theta_c, seed)`` elsewhere reproduces the exact
        manager — the differential suite exploits this for bit-identity
        against direct library calls.
        """
        sketch = self._config.sketch
        if theta_c is None:
            theta_c = compute_theta_c(
                sketch.theta_max, max(r, 1), sketch.alpha, sketch.delta
            )
        manager = IndexManager(self._graph)
        built = manager.ensure_indexes(
            tags if tags is not None else self._graph.tags,
            theta_c,
            ensure_rng(seed),
        )
        self._index_manager = manager.freeze()
        self._warm_theta_c = int(theta_c)
        self._record("serve.index.warmed_tags", len(built))
        return built

    @property
    def warmed_theta_c(self) -> int | None:
        """Worlds-per-tag count of the warmed index (``None`` if cold)."""
        return self._warm_theta_c

    def warm(self, requests: Sequence[dict]) -> int:
        """Prebuild assets by executing query specs (protocol dicts).

        Returns the number of requests executed. Used by ``repro serve
        --warm``; failures propagate so a bad warm file is loud.
        """
        from repro.serve.protocol import execute_request

        for request in requests:
            execute_request(self, dict(request))
        return len(requests)

    # ------------------------------------------------------------------
    # Mutation — versioned edits + asset migration
    # ------------------------------------------------------------------
    def apply_edits(
        self, edits: Sequence[GraphEdit | dict], repair: bool = True
    ) -> dict:
        """Apply an edit batch and advance the served epoch.

        Requires a mutable server (``mutable=True`` or a
        :class:`~repro.graphs.MutableTagGraph` at construction). The
        batch is validated and applied atomically — a bad edit leaves
        the graph, the epoch, and the cache untouched. On success the
        server:

        1. materializes the new epoch's snapshot (old-epoch snapshots
           stay alive exactly as long as in-flight queries pin them —
           the pooled sampler's shared-memory CSR for a dead snapshot
           is reclaimed through its weakref finalizer);
        2. migrates resident cache assets: repairable sketches whose
           touch trace missed every dirty edge are *promoted* (rekeyed
           to the new epoch, payload untouched), dirty ones are
           *repaired* incrementally (``repair=True``) by resampling
           only their dirtied RR sets, and everything else — whole
           results, salvaged partials, sketches past their frozen edge
           capacity — is dropped for a cold rebuild on next use;
        3. swaps the served ``(graph, epoch)`` pair atomically (a
           single reference store), so queries pinned to the old epoch
           finish consistently while new queries see the new epoch.

        Returns a summary dict (new/previous epoch, dirty-set sizes,
        per-disposition asset counts, elapsed seconds). Accepts either
        :data:`~repro.graphs.GraphEdit` objects or their wire-format
        dicts (``{"op": "edge_add", ...}``).
        """
        if self._mutable is None:
            raise ConfigurationError(
                "server is immutable; construct CampaignServer with "
                "mutable=True (or a MutableTagGraph) to apply edits"
            )
        if self._closed:
            raise ServerClosedError("campaign server is closed")
        parsed = [
            edit_from_dict(e) if isinstance(e, dict) else e for e in edits
        ]
        timer = Timer()
        with self._edit_lock, timer:
            old_epoch = self._graph_state[1]
            new_epoch = self._mutable.apply(parsed)
            new_graph = self._mutable.snapshot()
            if self._prob_cache_entries:
                new_graph.enable_probability_cache(self._prob_cache_entries)
            dirty_edges = self._mutable.dirty_edges(old_epoch)
            dirty_nodes = self._mutable.dirty_nodes(old_epoch)
            migration = self._migrate_assets(
                old_epoch, new_epoch, new_graph, dirty_edges, dirty_nodes,
                repair,
            )
            index_invalidated = False
            if self._index_manager is not None and dirty_edges.size:
                # The frozen possible-world index sampled old-epoch
                # worlds; it has no touch traces, so invalidate it.
                self._index_manager = None
                self._warm_theta_c = None
                index_invalidated = True
            self._graph_state = (new_graph, new_epoch)
        self._record("serve.edits.applied")
        self._record("serve.edits.count", len(parsed))
        self._record("serve.edits.dirty_edges", int(dirty_edges.size))
        for name, amount in migration.items():
            if amount:
                self._record(f"serve.repair.{name}", amount)
        self._set_gauge("serve.epoch", new_epoch)
        self._emit(
            "edits.applied",
            epoch=new_epoch,
            previous_epoch=old_epoch,
            edits=len(parsed),
            dirty_edges=int(dirty_edges.size),
            dirty_nodes=int(dirty_nodes.size),
            promoted=migration["promoted"],
            repaired=migration["repaired"],
            dropped=migration["dropped"],
            elapsed_ms=round(timer.elapsed * 1000.0, 3),
        )
        return {
            "epoch": new_epoch,
            "previous_epoch": old_epoch,
            "edits": len(parsed),
            "dirty_edges": int(dirty_edges.size),
            "dirty_nodes": int(dirty_nodes.size),
            "assets": migration,
            "index_invalidated": index_invalidated,
            "elapsed_seconds": timer.elapsed,
        }

    def _migrate_assets(
        self, old_epoch, new_epoch, new_graph, dirty_edges, dirty_nodes,
        repair: bool,
    ) -> dict[str, int]:
        """Promote / repair / drop resident assets across an epoch bump.

        Runs under the edit lock. Concurrent queries keep working: old
        assets are never mutated (repair is copy-on-write) and ``rekey``
        refuses to clobber, so the worst race outcome is a redundant
        rebuild, never a wrong answer.
        """
        stats = {
            "promoted": 0, "repaired": 0, "dropped": 0,
            "resampled_sets": 0,
        }
        for key in self._cache.keys_snapshot():
            if getattr(key, "epoch", 0) != old_epoch:
                # An epoch no new query can name — free the bytes.
                if self._cache.invalidate(key):
                    stats["dropped"] += 1
                continue
            asset = self._cache.peek(key)
            if asset is None:  # pragma: no cover - concurrent eviction
                continue
            new_key = key._replace(epoch=new_epoch)
            value = asset.value
            if isinstance(value, RepairableSketch):
                dirty_sets = value.dirty_set_ids(dirty_nodes)
                if not dirty_sets.size:
                    # Touch trace missed every dirty edge: the sketch
                    # is bit-identical at the new epoch. Promote.
                    if self._cache.rekey(key, new_key):
                        stats["promoted"] += 1
                    continue
                if repair:
                    try:
                        edge_probs = new_graph.edge_probabilities(key.tags)
                        repaired, rstats = value.repair(
                            new_graph, edge_probs, dirty_edges
                        )
                    except InvalidQueryError:
                        # Past the frozen edge capacity, or the edits
                        # emptied one of the sketch's tags — either way
                        # the sketch cannot be patched forward.
                        repaired = None
                    if repaired is not None and self._cache.rekey(
                        key, new_key, value=repaired,
                        nbytes=repaired.nbytes,
                    ):
                        stats["repaired"] += 1
                        stats["resampled_sets"] += rstats["dirty_sets"]
                        continue
                if self._cache.invalidate(key):
                    stats["dropped"] += 1
                continue
            # Whole results, salvaged partials, non-repairable sketches:
            # no touch trace, so any dirt at all forces a drop.
            if dirty_nodes.size:
                if self._cache.invalidate(key):
                    stats["dropped"] += 1
            elif self._cache.rekey(key, new_key):
                stats["promoted"] += 1
        return stats

    # ------------------------------------------------------------------
    # Distributed tracing (repro.obs.distributed)
    # ------------------------------------------------------------------
    def stage_trace_context(self, context) -> None:
        """Stage an inbound :class:`TraceContext` for the next submit.

        Called by the protocol layer on the request thread immediately
        before dispatching a query op; :meth:`_submit` (same thread)
        claims it and attaches it to the query item. Thread-local, so
        concurrent connections cannot cross-contaminate contexts.
        """
        self._staged_trace.ctx = context

    def _claim_trace_context(self):
        context = getattr(self._staged_trace, "ctx", None)
        if context is not None:
            self._staged_trace.ctx = None
        return context

    def export_span_bundle(self, bundle: dict) -> None:
        """Buffer a finished span bundle for shipping (bounded ring)."""
        with self._span_lock:
            self._span_exports.append(bundle)

    def drain_span_exports(self) -> list:
        """Remove and return every buffered span bundle."""
        with self._span_lock:
            if not self._span_exports:
                return []
            bundles = list(self._span_exports)
            self._span_exports.clear()
        return bundles

    def chrome_trace(self, trace_id: str | None = None) -> list:
        """Stitched Chrome trace events (empty when ``tracing`` off)."""
        if self._trace_collector is None:
            return []
        return self._trace_collector.chrome_trace(trace_id)

    def trace_payload(self, trace_id: str | None = None) -> dict:
        """The ``/trace`` debug document for this server."""
        if self._trace_collector is None:
            return empty_trace_payload()
        return self._trace_collector.payload(trace_id)

    # ------------------------------------------------------------------
    # Admission + dispatch
    # ------------------------------------------------------------------
    def _sync_class_depths_locked(self) -> None:
        for name, depth in self._queues.depths().items():
            self._set_gauge(f"serve.queue.depth.{name}", depth)

    def _submit(
        self,
        op: str,
        runner: Callable,
        qos_class: str = "interactive",
        deadline: float | None = None,
    ) -> "Future[ServeResponse]":
        if qos_class not in QUERY_CLASSES:
            raise ConfigurationError(
                f"unknown qos_class {qos_class!r}; expected one of "
                f"{QUERY_CLASSES}"
            )
        qid = f"q-{next(self._query_seq):06d}"
        trace_ctx = self._claim_trace_context()
        trace_id = trace_ctx.trace_id if trace_ctx is not None else qid
        if self._chaos is not None:
            try:
                self._chaos.at_admission()
            except InjectedChaosError:
                self._record("serve.chaos.admission")
                self._emit(
                    "chaos.injected", trace_id=qid, op=op, site="admission"
                )
                raise
            deadline = self._chaos.skew_deadline(deadline)

        rejection: QueryRejectedError | None = None
        tier = "full"
        item: _QueryItem | None = None
        dequeue_rejects: list = []
        closed = False
        with self._admission_lock:
            if self._closed:
                closed = True
            elif self._in_system >= self._capacity:
                rejection = ServerOverloadedError(
                    self._capacity,
                    retry_after_ms=self._retry_after_ms(),
                    qos_class=qos_class,
                )
            elif deadline is not None and self._qos.deadline_admission:
                predicted = self._predictor.predicted_completion_ms(
                    op, self._in_system, self._pool_size
                )
                if predicted > deadline * 1000.0:
                    rejection = DeadlineRejectedError(
                        deadline, predicted,
                        retry_after_ms=self._retry_after_ms(),
                        qos_class=qos_class, phase="admission",
                    )
            if not closed and rejection is None:
                utilization = (self._in_system + 1) / self._capacity
                if qos_class == "best_effort":
                    if utilization >= self._qos.stale_threshold:
                        tier = "stale_only"
                    elif utilization >= self._qos.shed_threshold:
                        tier = "approximate"
                self._in_system += 1
                self._set_gauge("serve.queue.depth", self._in_system)
                item = _QueryItem(
                    qid=qid, op=op, runner=runner, future=Future(),
                    qos_class=qos_class, tier=tier, deadline_s=deadline,
                    enqueued_at=time.monotonic(), trace=trace_ctx,
                )
                self._queues.push(qos_class, item)
                dequeue_rejects = self._pump_locked()

        if closed:
            self._emit(
                "query.rejected", trace_id=qid, op=op,
                reason="ServerClosedError", qos_class=qos_class,
            )
            raise ServerClosedError("campaign server is closed")
        if rejection is not None:
            self._record("serve.rejected")
            self._record(f"serve.rejected.{rejection.code}")
            self._emit(
                "query.rejected", trace_id=qid, op=op, code=rejection.code,
                qos_class=qos_class, phase="admission",
                retry_after_ms=rejection.retry_after_ms,
            )
            self.flightrec.record(
                reason="rejected", op=op, trace_id=trace_id, qid=qid,
                code=rejection.code, qos_class=qos_class, phase="admission",
                retry_after_ms=rejection.retry_after_ms,
            )
            raise rejection
        self._emit(
            "query.admitted", trace_id=qid, op=op, qos_class=qos_class,
            tier=tier,
        )
        if tier != "full":
            self._record("serve.degraded.admitted")
            self._emit(
                "query.degraded", trace_id=qid, op=op, tier=tier,
                qos_class=qos_class,
            )
        self._emit("query.queued", trace_id=qid, op=op)
        self._finalize_rejections(dequeue_rejects)
        return item.future

    def _pump_locked(self) -> list:
        """Dispatch queued items while worker slots are free.

        Caller holds the admission lock. Items that die at the dequeue
        boundary (expired deadline, injected chaos, executor shut down
        by a racing close) are *not* finalized here — their
        ``(item, error)`` pairs are returned so the caller can set
        future exceptions outside the lock (done-callbacks run in the
        setting thread and must not run under the admission lock).
        """
        rejected: list = []
        while not self._closed and self._dispatched < self._pool_size:
            item = self._queues.pop()
            if item is None:
                break
            waited = time.monotonic() - item.enqueued_at
            error: BaseException | None = None
            if self._chaos is not None:
                try:
                    self._chaos.at_dequeue()
                except InjectedChaosError as exc:
                    error = exc
            if (
                error is None
                and item.deadline_s is not None
                and waited >= item.deadline_s
            ):
                error = DeadlineRejectedError(
                    item.deadline_s, waited * 1000.0,
                    retry_after_ms=self._retry_after_ms(),
                    qos_class=item.qos_class, phase="queue",
                )
            if error is not None:
                self._in_system -= 1
                self._set_gauge("serve.queue.depth", self._in_system)
                rejected.append((item, error))
                continue
            item.queue_wait_s = waited
            self._dispatched += 1
            try:
                self._executor.submit(self._execute_item, item)
            except RuntimeError:
                # close() can win the race between the closed check and
                # submit; the shut-down executor then means "closed".
                self._dispatched -= 1
                self._in_system -= 1
                self._set_gauge("serve.queue.depth", self._in_system)
                rejected.append(
                    (item, ServerClosedError("campaign server is closed"))
                )
                break
        self._sync_class_depths_locked()
        return rejected

    def _finalize_rejections(self, rejected: list) -> None:
        """Deliver dequeue-boundary failures (outside the admission lock)."""
        for item, error in rejected:
            if isinstance(error, QueryRejectedError):
                self._record("serve.rejected")
                self._record(f"serve.rejected.{error.code}")
                self._emit(
                    "query.rejected", trace_id=item.qid, op=item.op,
                    code=error.code, qos_class=item.qos_class, phase="queue",
                )
                self.flightrec.record(
                    reason="rejected", op=item.op, qid=item.qid,
                    trace_id=(
                        item.trace.trace_id if item.trace is not None
                        else item.qid
                    ),
                    code=error.code, qos_class=item.qos_class, phase="queue",
                )
            elif isinstance(error, ServerClosedError):
                self._emit(
                    "query.rejected", trace_id=item.qid, op=item.op,
                    reason="ServerClosedError", qos_class=item.qos_class,
                )
            else:
                self._record("serve.errors")
                self._record(f"serve.errors.{type(error).__name__}")
                if isinstance(error, InjectedChaosError):
                    self._record("serve.chaos.dequeue")
                    self._emit(
                        "chaos.injected", trace_id=item.qid, op=item.op,
                        site="dequeue",
                    )
                self._emit(
                    "query.done", trace_id=item.qid, op=item.op, ok=False,
                    error=type(error).__name__,
                )
            try:
                item.future.set_exception(error)
            except InvalidStateError:  # pragma: no cover - client cancel
                pass

    def _execute_item(self, item: _QueryItem) -> None:
        response: ServeResponse | None = None
        failure: BaseException | None = None
        started = item.future.set_running_or_notify_cancel()
        if started:
            try:
                response = self._run_query(item)
            except BaseException as exc:
                failure = exc
        # Release this query's slot (and pump the queues) BEFORE
        # delivering the result: a client that wakes from .result() and
        # immediately resubmits must see the freed capacity.
        with self._admission_lock:
            self._dispatched -= 1
            self._in_system -= 1
            self._set_gauge("serve.queue.depth", self._in_system)
            rejected = self._pump_locked()
        if started:
            try:
                if failure is not None:
                    item.future.set_exception(failure)
                else:
                    item.future.set_result(response)
            except InvalidStateError:  # pragma: no cover - client cancel
                pass
        self._finalize_rejections(rejected)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_query(self, item: _QueryItem) -> ServeResponse:
        op, runner, qid = item.op, item.runner, item.qid
        with self._admission_lock:
            self._executing += 1
            self._set_gauge("serve.inflight", self._executing)
        local = self._query_local
        local.qid = qid
        local.qos_class = item.qos_class
        local.tier = item.tier
        local.degrade = None
        local.deadline_remaining = None
        # Pin this query to the current (graph, epoch) pair: every
        # self._graph read below resolves through the thread-local, so
        # a concurrent apply_edits() cannot tear this answer across two
        # graph versions.
        local.graph_state = self._graph_state
        query_epoch = local.graph_state[1]
        if item.deadline_s is not None:
            # The deadline covers queue wait + execution: hand the
            # remainder to the RunBudget so shard-boundary checks
            # cancel cooperatively (floor keeps the budget valid).
            local.deadline_remaining = max(
                item.deadline_s - item.queue_wait_s, 1e-3
            )
        self._observe_hist("serve.queue.wait_ms", item.queue_wait_s * 1000.0)
        timer = Timer()
        final_tier = item.tier
        degrade_info = None
        # Distributed queries run under the router's trace: the
        # propagated trace_id replaces the local qid on spans/events,
        # and the parent link lets the stitcher graft this worker's
        # roots under the router's serve.query span.
        trace_ctx = item.trace
        trace_id = trace_ctx.trace_id if trace_ctx is not None else qid
        try:
            with timer, obs.observe() as ob:
                # Stamp the query id on the tracer so spans, Chrome
                # trace events, and lifecycle events all correlate.
                ob.tracer.trace_id = trace_id
                if trace_ctx is not None:
                    ob.tracer.parent_span_id = trace_ctx.parent_span_id
                with obs.span("serve.query", op=op, trace_id=trace_id):
                    value, cache_mode = runner(ob)
                report = ob.report()
            final_tier = getattr(local, "tier", None) or "full"
            degrade_info = getattr(local, "degrade", None)
        except QueryRejectedError as exc:
            # Clean in-execution rejections (shed ladder exhausted,
            # breaker fast-fail) — counted as rejections, not errors.
            self._record("serve.rejected")
            self._record(f"serve.rejected.{exc.code}")
            verb = "query.shed" if exc.code == "shed" else "query.rejected"
            self._emit(
                verb, trace_id=qid, op=op, code=exc.code,
                qos_class=item.qos_class, phase="execute",
            )
            self.flightrec.record(
                reason="rejected", op=op, trace_id=trace_id, qid=qid,
                code=exc.code, qos_class=item.qos_class, phase="execute",
            )
            raise
        except BudgetExceededError as exc:
            # Cooperative cancellation at a shard boundary; any partial
            # was already salvaged into the cache at the build site.
            self._record("serve.cancelled")
            self._emit(
                "query.cancelled", trace_id=qid, op=op, reason=exc.reason,
                qos_class=item.qos_class, salvaged=exc.partial is not None,
            )
            self.flightrec.record(
                reason="cancelled", op=op, trace_id=trace_id, qid=qid,
                cancel_reason=exc.reason, qos_class=item.qos_class,
                salvaged=exc.partial is not None,
            )
            raise
        except BaseException as exc:
            self._record("serve.errors")
            self._record(f"serve.errors.{type(exc).__name__}")
            self._emit(
                "query.done", trace_id=qid, op=op, ok=False,
                error=type(exc).__name__,
            )
            raise
        finally:
            local.qid = None
            local.qos_class = None
            local.tier = None
            local.degrade = None
            local.deadline_remaining = None
            local.graph_state = None
            with self._admission_lock:
                self._executing -= 1
                self._set_gauge("serve.inflight", self._executing)
        elapsed_ms = timer.elapsed * 1000.0
        self._record("serve.queries")
        self._record(f"serve.queries.{item.qos_class}")
        if final_tier != "full":
            self._record("serve.degraded")
            self._record(f"serve.degraded.{final_tier}")
        self._observe_hist("serve.query.latency_ms", elapsed_ms)
        self._observe_hist(f"serve.op.latency_ms.{op}", elapsed_ms)
        self._predictor.observe(op, elapsed_ms)
        # Ship / store the finished spans. Both paths are post-answer
        # bookkeeping: they cannot influence the value, counters, or
        # even timing recorded above.
        if trace_ctx is not None:
            self.export_span_bundle(
                span_bundle_from_tracer(
                    ob.tracer,
                    parent_span_id=trace_ctx.parent_span_id,
                    report={"phases": report.get("phases") or []},
                )
            )
        elif self._trace_collector is not None:
            self._trace_collector.add_bundle(
                span_bundle_from_tracer(ob.tracer),
                pid=self._trace_collector.pid,
            )
        deadline_ms = (
            item.deadline_s * 1000.0 if item.deadline_s is not None else None
        )
        if self.flightrec.should_record(
            elapsed_ms=elapsed_ms, deadline_ms=deadline_ms
        ):
            missed = deadline_ms is not None and elapsed_ms > deadline_ms
            self.flightrec.record(
                reason="deadline_miss" if missed else "slow",
                op=op, trace_id=trace_id, qid=qid,
                elapsed_ms=round(elapsed_ms, 3), deadline_ms=deadline_ms,
                qos_class=item.qos_class, tier=final_tier,
                decisions={
                    "qos_class": item.qos_class,
                    "tier": final_tier,
                    "degraded": degrade_info,
                    "queue_wait_ms": round(item.queue_wait_s * 1000.0, 3),
                    "cache": cache_mode,
                    "epoch": query_epoch,
                },
                phases=report.get("phases"),
                trace=report.get("trace"),
            )
        self._emit(
            "query.done", trace_id=qid, op=op, ok=True, cache=cache_mode,
            tier=final_tier, elapsed_ms=round(elapsed_ms, 3),
            epoch=query_epoch,
        )
        return ServeResponse(
            op=op,
            value=value,
            cache=cache_mode,
            elapsed_seconds=timer.elapsed,
            report=report,
            qos_class=item.qos_class,
            tier=final_tier,
            degraded=degrade_info,
            epoch=query_epoch,
        )

    def _budget(
        self,
        deadline: float | None,
        max_samples: int | None,
        max_rr_members: int | None = None,
    ) -> RunBudget | None:
        deadline = (
            deadline if deadline is not None else self._default_deadline
        )
        # An explicit per-query deadline is consumed by queue wait: the
        # execution budget is whatever remains after dequeue.
        remaining = getattr(self._query_local, "deadline_remaining", None)
        if remaining is not None:
            deadline = remaining if deadline is None else min(
                deadline, remaining
            )
        max_samples = (
            max_samples
            if max_samples is not None
            else self._default_max_samples
        )
        max_rr_members = (
            max_rr_members
            if max_rr_members is not None
            else self._default_max_rr_members
        )
        if deadline is None and max_samples is None and max_rr_members is None:
            return None
        return RunBudget(
            wall_seconds=deadline,
            max_samples=max_samples,
            max_rr_members=max_rr_members,
        )

    def _view(self, registry=None):
        """A telemetry-isolated engine view, or None (scalar path)."""
        if self._sampler is None:
            return None
        return self._sampler.for_query(registry=registry)

    def _runtime_dict(self, ob) -> dict | None:
        if self._sampler is None:
            return None
        return RunTelemetry(registry=ob.metrics).as_dict()

    # ------------------------------------------------------------------
    # Degraded tiers
    # ------------------------------------------------------------------
    def _current_tier(self) -> str:
        return getattr(self._query_local, "tier", None) or "full"

    def _current_class(self) -> str:
        return getattr(self._query_local, "qos_class", None) or "interactive"

    def _sketch_config(self):
        """The sketch config for this query's tier.

        ``approximate``-tier queries run with ``theta_max`` divided by
        the QoS ``degrade_theta_factor`` (floored at ``theta_min``);
        the reduced config's digest flows into the asset key, so
        degraded and full sketches are distinct cache entries and a
        degraded answer can never be served as a full one (or vice
        versa).
        """
        cfg = self._config.sketch
        if self._current_tier() != "approximate":
            return cfg
        factor = self._qos.degrade_theta_factor
        return dc_replace(
            cfg, theta_max=max(cfg.theta_min, cfg.theta_max // factor)
        )

    def _note_sketch_degrade(self, sketch, cfg) -> None:
        """Tag this query with its approximate-tier error contract.

        Theorem 5's slack scales as ``ε ∝ 1/sqrt(θ)``: running with
        ``θ_used`` instead of the full config's ``θ_full`` cap widens
        the effective slack to ``ε · sqrt(θ_full / θ_used)``.
        """
        full = self._config.sketch
        theta_used = max(int(getattr(sketch, "theta", 0)), 1)
        eps_eff = full.epsilon * math.sqrt(full.theta_max / theta_used)
        self._query_local.degrade = {
            "kind": "reduced_theta",
            "theta": theta_used,
            "theta_max": cfg.theta_max,
            "theta_max_full": full.theta_max,
            "epsilon": full.epsilon,
            "epsilon_eff": round(max(eps_eff, full.epsilon), 6),
        }

    def _shed(self) -> QueryShedError:
        return QueryShedError(
            self._utilization(),
            retry_after_ms=self._retry_after_ms(),
            qos_class=self._current_class(),
        )

    # ------------------------------------------------------------------
    # Asset fetch/build
    # ------------------------------------------------------------------
    def _get_asset(self, ob, key: AssetKey, build: Callable):
        """Fetch-or-build through the cache with lifecycle telemetry.

        Wraps :meth:`AssetCache.get_or_build`: the winning builder's
        build is bracketed by ``query.build.start`` / ``query.build.done``
        events, joiners and resident hits get ``query.cache.hit``, and
        non-builders merge the asset's build-time metrics into this
        query's observation so warm answers carry the same work
        counters as cold ones.

        The build path is additionally guarded by the asset kind's
        circuit breaker (resident hits and single-flight joins are
        *not* — an open breaker refuses fresh builds only) and by the
        chaos plan's build site; a :class:`BudgetExceededError` from a
        cancelled build salvages its partial into the cache under
        ``<kind>_partial`` before propagating.
        """
        qid = getattr(self._query_local, "qid", None)
        breaker = self._breaker(key.kind)

        def building():
            if not breaker.allow():
                self._record("serve.breaker.fastfail")
                raise CircuitOpenError(
                    key.kind,
                    retry_after_ms=max(
                        breaker.retry_after_ms(),
                        self._qos.min_retry_after_ms,
                    ),
                    qos_class=self._current_class(),
                )
            self._emit(
                "query.build.start", trace_id=qid, asset=key.kind
            )
            try:
                if self._chaos is not None:
                    self._chaos.before_build(key.kind)
                built = build()
            except BudgetExceededError as exc:
                # A cooperative cancellation is not a build-infra
                # failure: don't trip the breaker, do keep the work.
                breaker.release_probe()
                self._emit(
                    "query.build.done", trace_id=qid, asset=key.kind,
                    ok=False, error="BudgetExceededError",
                )
                self._salvage(qid, key, exc)
                raise
            except QueryRejectedError as exc:
                breaker.release_probe()
                self._emit(
                    "query.build.done", trace_id=qid, asset=key.kind,
                    ok=False, error=type(exc).__name__,
                )
                raise
            except BaseException as exc:
                breaker.record_failure()
                if isinstance(exc, InjectedChaosError):
                    self._record("serve.chaos.build")
                    self._emit(
                        "chaos.injected", trace_id=qid, site="build",
                        asset=key.kind,
                    )
                self._emit(
                    "query.build.done", trace_id=qid, asset=key.kind,
                    ok=False, error=type(exc).__name__,
                )
                raise
            breaker.record_success()
            self._emit(
                "query.build.done", trace_id=qid, asset=key.kind, ok=True
            )
            return built

        asset, built_here = self._cache.get_or_build(key, building)
        if not built_here:
            self._emit("query.cache.hit", trace_id=qid, asset=key.kind)
            if asset.metrics is not None:
                ob.metrics.merge(asset.metrics)
        return asset, built_here

    def _salvage(self, qid, key: AssetKey, exc: BudgetExceededError) -> None:
        """Keep a cancelled build's partial result for degraded service.

        Stored under ``<kind>_partial`` with the *same* digest/tags/
        params, so the partial can never shadow the full asset; the
        ``stale_only`` ladder rung picks it up (tier ``"salvaged"``).
        """
        partial = exc.partial
        if partial is None:
            return
        pkey = AssetKey(
            kind=f"{key.kind}_partial",
            targets_digest=key.targets_digest,
            tags=key.tags,
            params=key.params,
            epoch=key.epoch,
        )
        self._cache.put(pkey, partial, _approx_nbytes(partial))
        self._record("serve.salvaged")
        self._emit(
            "query.build.salvaged", trace_id=qid, asset=pkey.kind,
            reason=exc.reason,
        )

    def _resident_or_shed(self, ob, key: AssetKey):
        """Resident-exact asset, or a clean shed (``stale_only`` tier).

        For ``result``-kind assets only an exact key match is a valid
        answer (params-mismatched results answer a *different*
        question), so the stale ladder rung reduces to resident-or-shed.
        """
        asset = self._cache.get(key)
        if asset is None:
            raise self._shed()
        qid = getattr(self._query_local, "qid", None)
        self._emit("query.cache.hit", trace_id=qid, asset=key.kind)
        if asset.metrics is not None:
            ob.metrics.merge(asset.metrics)
        # A resident exact hit IS the full answer — don't mislabel it.
        self._query_local.tier = "full"
        return asset

    # ------------------------------------------------------------------
    # Queries — sync facade
    # ------------------------------------------------------------------
    def find_seeds(self, *args, **kwargs) -> ServeResponse:
        """Top-``k`` seed selection (blocking). See :meth:`submit_find_seeds`."""
        return self.submit_find_seeds(*args, **kwargs).result()

    def find_tags(self, *args, **kwargs) -> ServeResponse:
        """Top-``r`` tag selection (blocking). See :meth:`submit_find_tags`."""
        return self.submit_find_tags(*args, **kwargs).result()

    def jointly_select(self, *args, **kwargs) -> ServeResponse:
        """Full Algorithm 2 (blocking). See :meth:`submit_jointly_select`."""
        return self.submit_jointly_select(*args, **kwargs).result()

    def estimate_spread(self, *args, **kwargs) -> ServeResponse:
        """MC spread estimate (blocking). See :meth:`submit_estimate_spread`."""
        return self.submit_estimate_spread(*args, **kwargs).result()

    # ------------------------------------------------------------------
    # Queries — async submission
    # ------------------------------------------------------------------
    def submit_find_seeds(
        self,
        targets: Sequence[int],
        tags: Sequence[str],
        k: int,
        engine: str | None = None,
        seed: int = 0,
        num_samples: int = 100,
        deadline: float | None = None,
        max_samples: int | None = None,
        max_rr_members: int | None = None,
        qos_class: str = "interactive",
    ) -> "Future[ServeResponse]":
        """Queue a seed-selection query; the future yields a response.

        ``engine`` defaults to the server config's ``seed_engine``;
        ``"trs"`` queries reuse cached RR sketches across queries, other
        engines reuse whole results. ``seed`` pins the query's RNG —
        the served answer is bit-identical to
        ``repro.find_seeds(graph, targets, canonical_tags(tags), k,
        engine=..., rng=seed)``. ``qos_class`` selects the admission
        class (``best_effort`` queries may be served degraded under
        load); an explicit ``deadline`` participates in predictive
        admission and cooperative cancellation.
        """
        engine = engine or self._config.seed_engine
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        tags_c = canonical_tags(tags)
        tdigest = targets_digest(targets, self._graph.num_nodes)
        targets = tuple(int(t) for t in targets)

        def runner(ob):
            budget = self._budget(deadline, max_samples, max_rr_members)
            if engine == "trs":
                return self._seeds_via_sketch(
                    ob, targets, tdigest, tags_c, k, seed, budget
                )
            return self._seeds_via_result(
                ob, targets, tdigest, tags_c, k, engine, seed,
                num_samples, budget,
            )

        return self._submit(
            "find_seeds", runner, qos_class=qos_class, deadline=deadline
        )

    def _seeds_via_sketch(
        self, ob, targets, tdigest, tags_c, k, seed, budget
    ) -> tuple[SeedSelection, str]:
        """TRS path: cache the expensive sampling half, re-cover per query."""
        tier = self._current_tier()
        cfg = self._sketch_config()
        key = AssetKey(
            kind="trs_sketch",
            targets_digest=tdigest,
            tags=tags_c,
            params=(k, seed, config_digest(cfg)),
            epoch=self._query_epoch(),
        )
        if tier == "stale_only":
            return self._seeds_from_resident(ob, key, tdigest, tags_c, k)

        def build():
            with obs.observe() as build_ob:
                view = self._view(registry=build_ob.metrics)
                if self._mutable is not None:
                    # Mutable servers build the *repairable* sampler so
                    # apply_edits() can patch this asset forward to the
                    # next epoch instead of dropping it. The repairable
                    # path replays per-set RNG substreams and does not
                    # take a RunBudget — mutable mode trades cooperative
                    # sketch cancellation for incremental repair.
                    sketch = trs_build_repairable_sketch(
                        self._graph, targets, tags_c, k,
                        config=cfg, seed=int(seed),
                        mode=self._repair_mode, engine=view,
                    )
                else:
                    sketch = trs_build_sketch(
                        self._graph, targets, tags_c, k,
                        config=cfg, rng=ensure_rng(seed),
                        engine=view, budget=budget,
                    )
            return sketch, sketch.nbytes, build_ob.metrics

        # _get_asset accounts a reused asset's build work to this
        # query's report, so warm answers carry cold answers' counters.
        asset, built_here = self._get_asset(ob, key, build)
        result = trs_select_from_sketch(self._graph, asset.value, k)
        selection = SeedSelection(
            seeds=result.seeds,
            estimated_spread=result.estimated_spread,
            engine="trs",
            elapsed_seconds=result.elapsed_seconds,
            telemetry=self._runtime_dict(ob),
        )
        if tier == "approximate":
            self._note_sketch_degrade(asset.value, cfg)
        return selection, ("miss" if built_here else "hit")

    def _seeds_from_resident(
        self, ob, key: AssetKey, tdigest, tags_c, k
    ) -> tuple[SeedSelection, str]:
        """``stale_only`` ladder rung for the TRS path.

        Preference order: the exact resident sketch (a *full* answer),
        any resident sketch for the same ``(targets, tags)`` built
        under different params (tier ``"stale"``), a salvaged partial
        from a cancelled build (tier ``"salvaged"``); otherwise shed.
        """
        qid = getattr(self._query_local, "qid", None)
        asset = self._cache.get(key)
        if asset is not None:
            self._emit("query.cache.hit", trace_id=qid, asset=key.kind)
            if asset.metrics is not None:
                ob.metrics.merge(asset.metrics)
            self._query_local.tier = "full"
            result = trs_select_from_sketch(self._graph, asset.value, k)
            selection = SeedSelection(
                seeds=result.seeds,
                estimated_spread=result.estimated_spread,
                engine="trs",
                elapsed_seconds=result.elapsed_seconds,
                telemetry=self._runtime_dict(ob),
            )
            return selection, "hit"
        stale = self._cache.find_stale(
            "trs_sketch", tdigest, tags_c, epoch=key.epoch
        )
        if stale is not None:
            self._emit(
                "query.cache.stale_hit", trace_id=qid, asset="trs_sketch"
            )
            if stale.metrics is not None:
                ob.metrics.merge(stale.metrics)
            self._query_local.tier = "stale"
            self._query_local.degrade = {
                "kind": "stale_asset",
                "asset_params": repr(getattr(stale.key, "params", None)),
                "theta": int(getattr(stale.value, "theta", 0)),
            }
            result = trs_select_from_sketch(self._graph, stale.value, k)
            selection = SeedSelection(
                seeds=result.seeds,
                estimated_spread=result.estimated_spread,
                engine="trs",
                elapsed_seconds=result.elapsed_seconds,
                telemetry=self._runtime_dict(ob),
            )
            return selection, "hit"
        salvaged = self._cache.find_stale(
            "trs_sketch_partial", tdigest, tags_c, epoch=key.epoch
        )
        if salvaged is not None and getattr(salvaged.value, "seeds", None):
            self._emit(
                "query.cache.stale_hit", trace_id=qid,
                asset="trs_sketch_partial",
            )
            self._query_local.tier = "salvaged"
            partial = salvaged.value
            self._query_local.degrade = {
                "kind": "salvaged_partial",
                "theta": int(getattr(partial, "theta", 0)),
            }
            selection = SeedSelection(
                seeds=tuple(partial.seeds),
                estimated_spread=float(partial.estimated_spread),
                engine="trs",
                elapsed_seconds=0.0,
                telemetry=self._runtime_dict(ob),
            )
            return selection, "hit"
        raise self._shed()

    def _seeds_via_result(
        self, ob, targets, tdigest, tags_c, k, engine, seed, num_samples,
        budget,
    ) -> tuple[SeedSelection, str]:
        """Non-TRS engines: cache the whole (deterministic) result."""
        cfg = self._sketch_config()
        key = AssetKey(
            kind="result",
            targets_digest=tdigest,
            tags=tags_c,
            params=(
                "find_seeds", engine, k, seed, num_samples,
                config_digest(cfg),
            ),
            epoch=self._query_epoch(),
        )
        if self._current_tier() == "stale_only":
            asset = self._resident_or_shed(ob, key)
            return asset.value, "hit"

        def build():
            with obs.observe() as build_ob:
                view = self._view(registry=build_ob.metrics)
                selection = find_seeds(
                    self._graph, targets, tags_c, k,
                    engine=engine, config=cfg,
                    manager=self._manager_for(engine, tags_c),
                    num_samples=num_samples, rng=ensure_rng(seed),
                    sampler=view, budget=budget,
                )
            return selection, _approx_nbytes(selection), build_ob.metrics

        asset, built_here = self._get_asset(ob, key, build)
        if cfg is not self._config.sketch:
            self._query_local.degrade = {
                "kind": "reduced_theta",
                "theta_max": cfg.theta_max,
                "theta_max_full": self._config.sketch.theta_max,
                "epsilon": self._config.sketch.epsilon,
            }
        return asset.value, ("miss" if built_here else "hit")

    def _manager_for(
        self, engine: str, tags_c: tuple[str, ...]
    ) -> IndexManager | None:
        """The frozen shared index when it can serve this query.

        Only global-universe engines (``ltrs``/``itrs``) read the shared
        manager, and only when every queried tag is already indexed —
        otherwise the query falls back to a fresh private manager, like
        a direct library call (a frozen manager must never build).
        """
        manager = self._index_manager
        if manager is None or engine not in ("ltrs", "itrs"):
            return None
        if all(manager.has_index(tag) for tag in tags_c):
            return manager
        return None

    def submit_find_tags(
        self,
        seeds: Sequence[int],
        targets: Sequence[int],
        r: int,
        method: str | None = None,
        seed: int = 0,
        deadline: float | None = None,
        max_samples: int | None = None,
        max_rr_members: int | None = None,
        qos_class: str = "interactive",
    ) -> "Future[ServeResponse]":
        """Queue a tag-selection query (seed set canonicalized).

        Tag finding has no principled reduced-θ form, so the
        ``approximate`` tier passes it through at full fidelity; the
        ``stale_only`` rung still applies (resident-exact or shed).
        """
        method = method or self._config.tag_method
        if method not in METHODS:
            raise ConfigurationError(
                f"unknown tag method {method!r}; expected one of {METHODS}"
            )
        seeds_c = tuple(sorted({int(s) for s in seeds}))
        tdigest = targets_digest(targets, self._graph.num_nodes)
        targets = tuple(int(t) for t in targets)

        def runner(ob):
            # The key is built on the worker, not at submit time: the
            # epoch it embeds must be the one the query is pinned to
            # (an edit can land between submit and dispatch).
            key = AssetKey(
                kind="result",
                targets_digest=tdigest,
                tags=(),
                params=(
                    "find_tags", method, r, seed, seeds_c,
                    config_digest(self._config.tag_config),
                ),
                epoch=self._query_epoch(),
            )
            if self._current_tier() == "stale_only":
                asset = self._resident_or_shed(ob, key)
                return asset.value, "hit"

            def build():
                with obs.observe() as build_ob:
                    selection = find_tags(
                        self._graph, seeds_c, targets, r,
                        method=method, config=self._config.tag_config,
                        rng=ensure_rng(seed),
                    )
                return (
                    selection, _approx_nbytes(selection), build_ob.metrics
                )

            asset, built_here = self._get_asset(ob, key, build)
            return asset.value, ("miss" if built_here else "hit")

        return self._submit(
            "find_tags", runner, qos_class=qos_class, deadline=deadline
        )

    def submit_jointly_select(
        self,
        targets: Sequence[int],
        k: int,
        r: int,
        seed: int = 0,
        deadline: float | None = None,
        max_samples: int | None = None,
        max_rr_members: int | None = None,
        qos_class: str = "interactive",
    ) -> "Future[ServeResponse]":
        """Queue a full joint (Algorithm 2) query.

        Under the ``approximate`` tier the joint run uses the reduced-θ
        sketch config (tagged on the response); the degraded config's
        digest keys the cache entry, so full and approximate joint
        results never collide.
        """
        tdigest = targets_digest(targets, self._graph.num_nodes)
        targets = tuple(int(t) for t in targets)

        def runner(ob):
            budget = self._budget(deadline, max_samples, max_rr_members)
            cfg_sketch = self._sketch_config()
            joint_config = (
                self._config
                if cfg_sketch is self._config.sketch
                else dc_replace(self._config, sketch=cfg_sketch)
            )
            key = AssetKey(
                kind="result",
                targets_digest=tdigest,
                tags=(),
                params=("joint", k, r, seed, config_digest(joint_config)),
                epoch=self._query_epoch(),
            )
            if self._current_tier() == "stale_only":
                asset = self._resident_or_shed(ob, key)
                return asset.value, "hit"

            def build():
                with obs.observe() as build_ob:
                    view = self._view(registry=build_ob.metrics)
                    result = jointly_select(
                        self._graph, JointQuery(targets, k=k, r=r),
                        joint_config, rng=ensure_rng(seed), sampler=view,
                        budget=budget,
                    )
                return result, _approx_nbytes(result), build_ob.metrics

            asset, built_here = self._get_asset(ob, key, build)
            if joint_config is not self._config:
                self._query_local.degrade = {
                    "kind": "reduced_theta",
                    "theta_max": cfg_sketch.theta_max,
                    "theta_max_full": self._config.sketch.theta_max,
                    "epsilon": self._config.sketch.epsilon,
                }
            return asset.value, ("miss" if built_here else "hit")

        return self._submit(
            "joint", runner, qos_class=qos_class, deadline=deadline
        )

    def submit_estimate_spread(
        self,
        seeds: Sequence[int],
        targets: Sequence[int],
        tags: Sequence[str],
        num_samples: int | None = None,
        seed: int = 0,
        deadline: float | None = None,
        max_samples: int | None = None,
        max_rr_members: int | None = None,
        qos_class: str = "interactive",
    ) -> "Future[ServeResponse]":
        """Queue an MC spread estimate (seeds and tags canonicalized).

        Under the ``approximate`` tier the sample count is divided by
        the QoS degrade factor and the response is tagged with a
        Hoeffding 95% half-width for the reduced estimate.
        """
        tags_c = canonical_tags(tags)
        seeds_c = tuple(sorted({int(s) for s in seeds}))
        samples_full = (
            num_samples if num_samples is not None
            else self._config.eval_samples
        )
        tdigest = targets_digest(targets, self._graph.num_nodes)
        targets = tuple(int(t) for t in targets)
        num_targets = len(set(targets))

        def runner(ob):
            budget = self._budget(deadline, max_samples, max_rr_members)
            samples = samples_full
            if self._current_tier() == "approximate":
                samples = max(
                    16, samples_full // self._qos.degrade_theta_factor
                )
            key = AssetKey(
                kind="result",
                targets_digest=tdigest,
                tags=tags_c,
                params=("spread", seeds_c, samples, seed),
                epoch=self._query_epoch(),
            )
            if self._current_tier() == "stale_only":
                asset = self._resident_or_shed(ob, key)
                return asset.value, "hit"

            def build():
                with obs.observe() as build_ob:
                    view = self._view(registry=build_ob.metrics)
                    value = estimate_spread(
                        self._graph, seeds_c, targets, tags_c,
                        num_samples=samples, rng=ensure_rng(seed),
                        engine=view, budget=budget,
                    )
                return float(value), 64, build_ob.metrics

            asset, built_here = self._get_asset(ob, key, build)
            if samples != samples_full:
                # Hoeffding: spread ∈ [0, |T|], so the 95% half-width
                # of an n-sample mean is |T|·sqrt(ln(2/0.05) / (2n)).
                half_width = num_targets * math.sqrt(
                    math.log(2.0 / 0.05) / (2.0 * samples)
                )
                self._query_local.degrade = {
                    "kind": "reduced_samples",
                    "num_samples": samples,
                    "num_samples_full": samples_full,
                    "ci_width": round(2.0 * half_width, 6),
                }
            return asset.value, ("miss" if built_here else "hit")

        return self._submit(
            "spread", runner, qos_class=qos_class, deadline=deadline
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self._cache.stats()
        return (
            f"CampaignServer(graph={self._graph!r}, "
            f"epoch={self._graph_state[1]}, "
            f"cache=[{stats.entries} entries, {stats.bytes} bytes], "
            f"in_system={self._in_system}/{self._capacity})"
        )
