"""Line-delimited JSON protocol for ``repro serve``.

One request per input line, one response per output line, both JSON
objects. Requests carry an ``op`` plus op-specific fields; responses
echo the request ``id`` (when given) and either the result fields with
``"ok": true`` or ``{"ok": false, "error": ..., "type": ...}``.

Request shapes
--------------
``{"op": "find_seeds", "targets": [...], "tags": [...], "k": 2,
   "engine": "trs", "seed": 0, "deadline": 5.0}``
   (query ops also accept ``max_samples`` / ``max_rr_members`` budget
   caps alongside ``deadline``)
``{"op": "find_tags", "seeds": [...], "targets": [...], "r": 2,
   "method": "batch", "seed": 0}``
``{"op": "joint", "targets": [...], "k": 2, "r": 2, "seed": 0}``
``{"op": "spread", "seeds": [...], "targets": [...], "tags": [...],
   "num_samples": 200, "seed": 0}``
``{"op": "warm_index", "tags": [...], "theta_c": 64, "seed": 0}``
``{"op": "apply_edits", "edits": [{"op": "tag_set", "edge_id": 3,
   "tag": "a", "prob": 0.4}, ...], "repair": true}``
   (mutable servers only; replies are epoch-tagged — ``epoch`` /
   ``previous_epoch`` / dirty sizes / per-disposition asset counts)
``{"op": "metrics"}`` / ``{"op": "health"}`` / ``{"op": "ping"}``
``{"op": "events", "limit": 50}``
   (the most recent query-lifecycle events, schema
   ``repro.obs.events/2`` — the same document the live telemetry
   endpoint serves at ``/events``; against a shard router this is the
   causally merged fleet stream, each record labeled with its source
   ``worker`` and the fleet ``epoch``)

Distributed tracing: a request may carry a compact trace context under
the private ``"_trace"`` key (``{"trace_id": ..., "parent_span_id":
...}``, see :mod:`repro.obs.distributed`). It is stripped before op
dispatch — validation and responses are byte-identical with or without
it — and staged on the server so the executing query's spans root under
the propagating router's ``serve.query`` span.

Query responses include ``cache`` (``"miss"``/``"hit"``) and
``elapsed_ms``; pass ``"report": true`` in a request to inline the full
per-query observability report. EOF on the input stream shuts the
server down cleanly after draining in-flight queries.

QoS surface
-----------
Query ops accept ``"class"`` (alias ``"qos_class"``): one of
``interactive`` (default) / ``batch`` / ``best_effort``. Responses add
``"class"``, ``"tier"`` (``full`` unless the answer was served
degraded) and — for non-full tiers — the ``"degraded"`` payload with
the quantified-error tag (θ used, effective ε, CI width).

Admission-control rejections (overload, unmeetable deadline, shed,
circuit breaker) are *structured*: ``"error"`` is an object, not a
string — ``{"ok": false, "type": ..., "error": {"code": "overloaded" |
"deadline" | "shed" | "breaker_open", "message": ..., "retry_after_ms":
..., "class": ...}}`` — so clients can implement backoff without
parsing prose. Every other failure keeps the flat string ``"error"``.
"""

from __future__ import annotations

import json
import sys
from typing import Any, IO

from repro.exceptions import QueryRejectedError, ReproError
from repro.obs.distributed import TraceContext
from repro.serve.server import METRICS_SCHEMA, CampaignServer, ServeResponse

__all__ = ["execute_request", "handle_line", "handle_request", "serve_stdio"]

_QUERY_OPS = ("find_seeds", "find_tags", "joint", "spread")


def _response_fields(response: ServeResponse) -> dict[str, Any]:
    value = response.value
    fields: dict[str, Any] = {
        "cache": response.cache,
        "elapsed_ms": round(response.elapsed_seconds * 1000.0, 3),
        "class": response.qos_class,
        "tier": response.tier,
        "epoch": response.epoch,
    }
    if response.degraded is not None:
        fields["degraded"] = response.degraded
    if response.op == "find_seeds":
        fields["seeds"] = [int(s) for s in value.seeds]
        fields["spread"] = float(value.estimated_spread)
        fields["engine"] = value.engine
    elif response.op == "find_tags":
        fields["tags"] = list(value.tags)
        fields["spread"] = float(value.estimated_spread)
        fields["method"] = value.method
    elif response.op == "joint":
        fields["seeds"] = [int(s) for s in value.seeds]
        fields["tags"] = list(value.tags)
        fields["spread"] = float(value.spread)
        fields["rounds"] = int(value.rounds)
        fields["converged"] = bool(value.converged)
    elif response.op == "spread":
        fields["spread"] = float(value)
    return fields


def execute_request(
    server: CampaignServer, request: dict
) -> ServeResponse | dict:
    """Run one decoded request against the server (blocking).

    Returns the :class:`ServeResponse` for query ops, or a plain dict
    for administrative ops (``metrics``/``ping``/``warm_index``).
    Raises on invalid requests — :func:`handle_line` turns that into an
    error response.

    ``server`` may also be a shard router (anything exposing
    ``route_request``): the whole decoded request is then handed to the
    router verbatim, which dispatches it to a worker process (or
    broadcasts it) and returns the finished wire response dict — so
    ``serve_stdio`` speaks the identical protocol whether it fronts one
    in-process :class:`CampaignServer` or a sharded fleet.
    """
    route = getattr(server, "route_request", None)
    if route is not None:
        return route(request)
    # Strip any propagated trace context BEFORE op dispatch so every
    # validation / unknown-op path behaves byte-identically with or
    # without tracing; stage it on the server (thread-local) so the
    # query submitted below roots its spans under the remote parent.
    trace_ctx = TraceContext.pop_from(request)
    op = request.get("op")
    if trace_ctx is not None and op in _QUERY_OPS:
        # Stage only for query ops — an admin op must not leave a
        # stale context behind for the thread's next query.
        stage = getattr(server, "stage_trace_context", None)
        if stage is not None:
            stage(trace_ctx)
    if op == "ping":
        return {"pong": True}
    if op == "metrics":
        return {"schema": METRICS_SCHEMA,
                "metrics": server.metrics(),
                "cache": server.cache_stats().as_dict()}
    if op == "health":
        return {"health": server.health()}
    if op == "events":
        limit = request.get("limit")
        return server.events.payload(
            int(limit) if limit is not None else None
        )
    if op == "warm_index":
        built = server.warm_index(
            tags=request.get("tags"),
            theta_c=request.get("theta_c"),
            r=int(request.get("r", 2)),
            seed=int(request.get("seed", 0)),
        )
        return {"warmed_tags": built}
    if op == "apply_edits":
        edits = request.get("edits")
        if not isinstance(edits, list):
            raise ReproError("apply_edits requires an \"edits\" list")
        summary = server.apply_edits(
            edits, repair=bool(request.get("repair", True))
        )
        summary["elapsed_ms"] = round(
            summary.pop("elapsed_seconds") * 1000.0, 3
        )
        return summary
    if op not in _QUERY_OPS:
        raise ReproError(
            f"unknown op {op!r}; expected one of "
            f"{_QUERY_OPS + ('warm_index', 'apply_edits', 'metrics', 'health', 'events', 'ping')}"
        )

    seed = int(request.get("seed", 0))
    qos_class = str(
        request.get("class", request.get("qos_class", "interactive"))
    )
    deadline = request.get("deadline")
    deadline = float(deadline) if deadline is not None else None
    max_samples = request.get("max_samples")
    max_samples = int(max_samples) if max_samples is not None else None
    max_rr_members = request.get("max_rr_members")
    max_rr_members = (
        int(max_rr_members) if max_rr_members is not None else None
    )

    if op == "find_seeds":
        return server.find_seeds(
            targets=request["targets"],
            tags=request.get("tags", ()),
            k=int(request["k"]),
            engine=request.get("engine"),
            seed=seed,
            num_samples=int(request.get("num_samples", 100)),
            deadline=deadline,
            max_samples=max_samples,
            max_rr_members=max_rr_members,
            qos_class=qos_class,
        )
    if op == "find_tags":
        return server.find_tags(
            seeds=request["seeds"],
            targets=request["targets"],
            r=int(request["r"]),
            method=request.get("method"),
            seed=seed,
            deadline=deadline,
            max_samples=max_samples,
            max_rr_members=max_rr_members,
            qos_class=qos_class,
        )
    if op == "joint":
        return server.jointly_select(
            targets=request["targets"],
            k=int(request["k"]),
            r=int(request["r"]),
            seed=seed,
            deadline=deadline,
            max_samples=max_samples,
            max_rr_members=max_rr_members,
            qos_class=qos_class,
        )
    return server.estimate_spread(
        seeds=request["seeds"],
        targets=request["targets"],
        tags=request.get("tags", ()),
        num_samples=request.get("num_samples"),
        seed=seed,
        deadline=deadline,
        max_samples=max_samples,
        max_rr_members=max_rr_members,
        qos_class=qos_class,
    )


def handle_line(server: CampaignServer, line: str) -> dict:
    """Decode one request line and return the response dict.

    Every failure mode — bad JSON, unknown op, library errors, budget
    and overload rejections — becomes a well-formed error response; the
    protocol loop never dies on a bad request.
    """
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        return {
            "ok": False,
            "error": str(exc) or repr(exc),
            "type": type(exc).__name__,
        }
    return handle_request(server, request)


def handle_request(server: CampaignServer, request: object) -> dict:
    """Run one decoded request and shape the full response dict.

    The dict-level core of :func:`handle_line`, shared by the stdio
    loop and the shard workers (whose requests arrive over a pipe
    already decoded). Same guarantee: every failure becomes a
    well-formed error response.
    """
    request_id = None
    try:
        if not isinstance(request, dict):
            raise ReproError("request must be a JSON object")
        request_id = request.get("id")
        result = execute_request(server, request)
        response: dict[str, Any] = {"ok": True}
        if isinstance(result, ServeResponse):
            response.update(_response_fields(result))
            if request.get("report"):
                response["report"] = result.report
        else:
            response.update(result)
    except QueryRejectedError as exc:
        # Admission-control rejections are machine-actionable: clients
        # implement backoff from code/retry_after_ms, never from prose.
        response = {
            "ok": False,
            "error": {
                "code": exc.code,
                "message": str(exc),
                "retry_after_ms": exc.retry_after_ms,
                "class": exc.qos_class,
            },
            "type": type(exc).__name__,
        }
    except (ReproError, json.JSONDecodeError, KeyError, ValueError,
            TypeError) as exc:
        response = {
            "ok": False,
            "error": str(exc) or repr(exc),
            "type": type(exc).__name__,
        }
    if request_id is not None:
        response["id"] = request_id
    return response


def serve_stdio(
    server: CampaignServer,
    stdin: IO[str] | None = None,
    stdout: IO[str] | None = None,
) -> int:
    """Run the request/response loop until EOF. Returns request count."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    handled = 0
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        response = handle_line(server, line)
        stdout.write(json.dumps(response) + "\n")
        stdout.flush()
        handled += 1
    return handled
