"""Deterministic serve-layer fault injection (``repro.serve.chaos``).

The engine already has a fault harness (:class:`repro.engine.FaultPlan`)
keyed by ``(shard, attempt)`` — it exercises the *sampling* runtime.
This module is its serving-layer sibling: a seeded
:class:`ServeFaultPlan` that injects failures at the server's own
seams — admission, dequeue, and asset builds — so every shedding,
breaker, cancellation, and retry path can be driven deterministically
and replayed bit-identically from the same seed.

Decision model
--------------
Each injection site keeps its own monotonically increasing counter
(``admission`` #0, #1, … independent of ``dequeue`` #0, #1, …). For the
``n``-th event at a site the plan derives an independent PRNG from
``(seed, site, n)`` and draws once against the configured probability.
Because the decision depends only on the seed and the per-site ordinal
— never on wall clock, thread ids, or interleaving — a replay with the
same seed and the same per-site event ordering takes identical
decisions. Sites that are serialized under the server's admission lock
(admission, dequeue) therefore replay exactly; the build site is keyed
by asset kind so concurrent builds of different kinds cannot perturb
each other's sequences.

Composability: a :class:`ServeFaultPlan` optionally carries an engine
``FaultPlan`` (:attr:`engine_plan`); the server installs it on its
sampling engine so one chaos run can exercise worker death mid-shard
*and* serve-layer shedding in the same deterministic scenario.

All injected exceptions are :class:`InjectedChaosError`, a
:class:`~repro.exceptions.ReproError` subclass — unlike the engine's
``InjectedFault`` (a bare ``RuntimeError``, deliberately, so retry
classification treats it as a real crash), serve-layer chaos must be
catchable by the protocol loop like any other library error.
"""

from __future__ import annotations

import hashlib
import random
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import ConfigurationError, ReproError

__all__ = ["InjectedChaosError", "ServeFaultPlan"]


class InjectedChaosError(ReproError):
    """Raised by :class:`ServeFaultPlan` at an injection site.

    Carries the ``site`` (``"admission"`` / ``"dequeue"`` /
    ``"build"``) and the per-site event ordinal ``ordinal`` so tests
    can assert exactly which injection fired.
    """

    def __init__(self, site: str, ordinal: int, detail: str = "") -> None:
        suffix = f": {detail}" if detail else ""
        super().__init__(
            f"injected chaos at {site} (event #{ordinal}){suffix}"
        )
        self.site = site
        self.ordinal = ordinal


def _derive_rng(seed: int, site: str, ordinal: int) -> random.Random:
    """Independent PRNG for one (seed, site, ordinal) decision."""
    digest = hashlib.blake2b(
        site.encode("utf-8") + struct.pack("<qq", seed, ordinal),
        digest_size=8,
    ).digest()
    return random.Random(int.from_bytes(digest, "little"))


@dataclass
class ServeFaultPlan:
    """Seeded, replayable fault plan for the serving layer.

    Parameters
    ----------
    seed:
        Root seed; identical seeds yield identical per-site decision
        sequences.
    admission_error_rate / dequeue_error_rate:
        Probability of raising :class:`InjectedChaosError` at the
        admission boundary (before any accounting) / at the dequeue
        boundary (after a queued query is picked, exercising the
        server's must-not-leak-accounting error path).
    build_slow_rate / build_slow_seconds:
        Probability of sleeping ``build_slow_seconds`` inside an asset
        build (models a pathologically slow sketch build; drives
        queue-wait prediction, deadline cancellation, and SLO pressure).
    build_error_rate:
        Probability of failing an asset build with
        :class:`InjectedChaosError` (drives the per-kind circuit
        breaker; the error is *not* a rejection, so it counts as a
        build failure).
    deadline_skew_s:
        Constant subtracted from every query's remaining deadline at
        admission (positive = clock running fast: deadlines look
        tighter than the client intended). Exercises predictive
        rejection and queue-expiry paths without real waiting.
    engine_plan:
        Optional :class:`repro.engine.FaultPlan` the server installs on
        its sampling engine, composing worker-level faults (kill, hang,
        poison) with serve-level ones under a single scenario.
    """

    seed: int = 0
    admission_error_rate: float = 0.0
    dequeue_error_rate: float = 0.0
    build_slow_rate: float = 0.0
    build_slow_seconds: float = 0.05
    build_error_rate: float = 0.0
    deadline_skew_s: float = 0.0
    engine_plan: object = None
    _counters: Dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for name in (
            "admission_error_rate",
            "dequeue_error_rate",
            "build_slow_rate",
            "build_error_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if self.build_slow_seconds < 0:
            raise ConfigurationError(
                "build_slow_seconds must be >= 0, got "
                f"{self.build_slow_seconds}"
            )

    def _next_ordinal(self, site: str) -> int:
        with self._lock:
            ordinal = self._counters.get(site, 0)
            self._counters[site] = ordinal + 1
        return ordinal

    def _decide(self, site: str, rate: float) -> Optional[int]:
        """Ordinal if the ``site``'s next event fires, else ``None``.

        The counter advances on every call (fired or not) so decision
        sequences are stable regardless of which ones fire.
        """
        ordinal = self._next_ordinal(site)
        if rate <= 0.0:
            return None
        if _derive_rng(self.seed, site, ordinal).random() < rate:
            return ordinal
        return None

    # -- injection sites -------------------------------------------------

    def at_admission(self) -> None:
        """Maybe raise before a query is admitted (no accounting yet)."""
        ordinal = self._decide("admission", self.admission_error_rate)
        if ordinal is not None:
            raise InjectedChaosError("admission", ordinal)

    def at_dequeue(self) -> None:
        """Maybe raise after a queued query is dequeued for dispatch."""
        ordinal = self._decide("dequeue", self.dequeue_error_rate)
        if ordinal is not None:
            raise InjectedChaosError("dequeue", ordinal)

    def before_build(self, kind: str) -> None:
        """Maybe slow down and/or fail an asset build of ``kind``.

        Slow-down and failure draw from distinct per-kind sites
        (``build_slow:<kind>``, ``build:<kind>``) so enabling one does
        not shift the other's decision sequence.
        """
        slow = self._decide(f"build_slow:{kind}", self.build_slow_rate)
        if slow is not None:
            time.sleep(self.build_slow_seconds)
        ordinal = self._decide(f"build:{kind}", self.build_error_rate)
        if ordinal is not None:
            raise InjectedChaosError("build", ordinal, detail=kind)

    def skew_deadline(self, deadline_s: Optional[float]) -> Optional[float]:
        """Apply the configured clock skew to a remaining deadline."""
        if deadline_s is None or self.deadline_skew_s == 0.0:
            return deadline_s
        return deadline_s - self.deadline_skew_s

    def counters(self) -> Dict[str, int]:
        """Per-site event counts so far (diagnostics / determinism tests)."""
        with self._lock:
            return dict(self._counters)
