"""``repro.serve`` — concurrent campaign serving with asset reuse.

The batch library answers one query per process; this package turns it
into a long-lived service. A :class:`CampaignServer` loads a
:class:`~repro.graphs.TagGraph` once, runs concurrent queries on a
bounded worker pool, and shares expensive read-only artifacts —
targeted RR sketches, warm results, frozen possible-world indexes,
tag-aggregation arrays — across queries through a single-flight,
byte-accounted LRU (:class:`AssetCache`).

The serving contract is *determinism-preserving*: a served answer
(seeds, tags, spread, and work counters) is bit-identical to the
equivalent direct library call with the same RNG seed and canonical
inputs, on cold misses, warm hits, and post-eviction rebuilds alike.
See ``docs/serving.md`` and the differential/concurrency test suites.

Overload is *graded*, not binary (:mod:`repro.serve.qos`): queries
carry a QoS class (``interactive``/``batch``/``best_effort``) drained
by weighted round-robin, explicit deadlines participate in predictive
admission and cooperative cancellation, ``best_effort`` queries degrade
to quantified-error approximate tiers before being shed, and per-asset
circuit breakers stop failing builds from burning the pool. A seeded
:class:`ServeFaultPlan` (:mod:`repro.serve.chaos`) drives every one of
those paths deterministically for tests and chaos drills.

Quick start::

    from repro.serve import CampaignServer

    server = CampaignServer(graph, pool_size=4)
    resp = server.find_seeds(targets, tags, k=2, seed=0)
    resp.value.seeds, resp.cache          # (…), "miss"
    server.find_seeds(targets, tags, k=2, seed=0).cache  # "hit"

The ``repro serve`` CLI subcommand exposes the same facade over a
line-delimited JSON protocol on stdin/stdout
(:mod:`repro.serve.protocol`).

For multi-process serving, :class:`ShardedCampaignService`
(:mod:`repro.serve.shard`) fronts N worker processes — each a full
``CampaignServer`` attached to the shared-memory graph — behind the
identical wire protocol, with consistent-hash affinity routing
(:mod:`repro.serve.ring`), scatter/gather greedy coverage, worker
respawn, and epoch-broadcast edits. ``repro serve --workers N`` boots
it from the CLI.
"""

from repro.serve.cache import AssetCache, CachedAsset, CacheStats
from repro.serve.chaos import InjectedChaosError, ServeFaultPlan
from repro.serve.keys import (
    AssetKey,
    canonical_tags,
    config_digest,
    routing_token,
    targets_digest,
)
from repro.serve.protocol import (
    execute_request,
    handle_line,
    handle_request,
    serve_stdio,
)
from repro.serve.qos import (
    QUERY_CLASSES,
    TIERS,
    CircuitBreaker,
    LatencyPredictor,
    QosConfig,
    RouterAdmission,
    WeightedClassQueues,
)
from repro.serve.ring import HashRing
from repro.serve.server import METRICS_SCHEMA, CampaignServer, ServeResponse
from repro.serve.shard import ShardedCampaignService, WorkerSpec

__all__ = [
    "AssetCache",
    "AssetKey",
    "CachedAsset",
    "CacheStats",
    "CampaignServer",
    "CircuitBreaker",
    "HashRing",
    "InjectedChaosError",
    "LatencyPredictor",
    "METRICS_SCHEMA",
    "QUERY_CLASSES",
    "QosConfig",
    "RouterAdmission",
    "ServeFaultPlan",
    "ServeResponse",
    "ShardedCampaignService",
    "TIERS",
    "WeightedClassQueues",
    "WorkerSpec",
    "canonical_tags",
    "config_digest",
    "routing_token",
    "targets_digest",
    "execute_request",
    "handle_line",
    "handle_request",
    "serve_stdio",
]
