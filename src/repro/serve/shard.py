"""Sharded multi-process campaign service.

A front-end **router** (this module, in the caller's process) fans a
fleet of N **worker processes** out behind the single-process
``CampaignServer`` wire protocol. Each worker owns a full
:class:`~repro.serve.CampaignServer` — graded QoS queues, asset cache,
chaos hooks, mutable epochs — attached to the *same* graph, either via
a zero-copy shared-memory :class:`~repro.engine.SharedTagGraph` or a
per-worker pickled copy.

Topology (one box per process)::

    client ──► ShardedCampaignService (router)
                 │  RouterAdmission · HashRing · metrics merge
                 │  edit journal · respawn supervisor
          ┌──────┼──────────┬─ ... ─┐     (one duplex pipe each)
          ▼      ▼          ▼       ▼
        worker w0, w1, ..., wN-1   — CampaignServer + SamplingEngine

Routing and determinism
-----------------------
Every query is reduced to a :func:`~repro.serve.keys.routing_token`
(the campaign-identity fields only — never deadline/QoS/report) and
placed on a consistent-hash ring, so the same campaign always lands on
the same worker and its cached sketch: repeat queries never rebuild on
a different worker, and adding/removing a worker remaps only ~1/N of
tokens. Because each worker runs the identical ``handle_request`` code
path over the identical graph, the wire response is bit-identical to a
single-process server for every op, engine, and worker count.

Scatter/gather coverage
-----------------------
``find_seeds`` with ``"scatter": true`` partitions the θ RR-set shards
round-robin across all live workers (each spawns the *full* seed-stream
tree and materializes only its slice, so the union is exactly the
monolithic sample), then the router runs the greedy cover over summed
per-node residual counts: one broadcast per round (pick → workers mark
newly covered sets and return decremented counts). Counts are additive
across partitions and greedy's argmax tie-break (lowest node id) sees
the same totals, so seeds, marginals and the spread estimate are
bit-identical to the single-process TRS answer.

Failure model
-------------
A receiver thread per worker detects pipe EOF (crash or SIGKILL). The
supervisor respawns the worker under the same ring slot, replays the
edit journal so it rejoins at the current epoch, and transparently
re-sends the retryable in-flight requests; scatter rounds are not
retryable mid-flight — the whole (deterministic) scatter query
restarts. :class:`~repro.exceptions.WorkerDiedError` surfaces only
when the respawn budget is exhausted, after which the worker leaves
the ring and its ~1/N of tokens remap to survivors.

Epoch broadcast
---------------
``apply_edits`` takes the writer side of a router-level gate (queries
take the read side), appends the batch to the journal *before*
broadcasting, then requires every worker to report the same new epoch.
Pipes are FIFO, so every query dispatched after the broadcast observes
the new epoch on every worker.

Fleet observability
-------------------
With ``tracing=True`` the router owns one
:class:`~repro.obs.distributed.TraceCollector`: every routed query
opens a router-clock ``serve.query`` span whose
:class:`~repro.obs.distributed.TraceContext` rides the pipe message
(and, for scatter, every ``_shard.build``/``_shard.pick``); workers
ship their finished span bundles back piggy-backed on replies, where
the receive loop strips them *before* the caller's future resolves —
wire responses are byte-identical with tracing on or off, and the
flight recorder can attach the already-complete stitched trace. Worker
clocks are aligned per spawn handshake (each ready message carries the
worker's ``perf_counter``), so one Chrome trace covers the whole fleet
with non-negative durations. ``/events`` serves the causally merged
fleet stream (schema ``repro.obs.events/2``) and ``/debug/slow`` the
router's :class:`~repro.obs.distributed.FlightRecorder` ring.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    InvalidQueryError,
    QueryRejectedError,
    ReproError,
    ServerClosedError,
    WorkerDiedError,
)
from repro.obs.distributed import (
    SPAN_BUNDLE_KEY,
    TRACE_CONTEXT_KEY,
    FlightRecorder,
    TraceCollector,
    TraceContext,
    empty_trace_payload,
    merge_event_payloads,
)
from repro.serve.keys import routing_token
from repro.serve.qos import RouterAdmission
from repro.serve.ring import HashRing

__all__ = ["ShardedCampaignService", "WorkerSpec"]

_CONTROL_RID = -1
_QUERY_OPS = ("find_seeds", "find_tags", "joint", "spread")


# ----------------------------------------------------------------------
# Worker specification (pickled to every spawned worker)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to build its ``CampaignServer``.

    Must stay picklable under the ``spawn`` start method — chaos is
    carried as :class:`~repro.serve.chaos.ServeFaultPlan` constructor
    kwargs (the plan itself holds a lock), and the engine as a mode
    string (each worker builds its own single-process
    :class:`~repro.engine.SamplingEngine`; intra-query parallelism
    comes from the fleet, not nested pools).
    """

    config: Any = None  # JointConfig | None
    engine_mode: Optional[str] = None  # None -> scalar library path
    pool_size: int = 4
    queue_capacity: int = 32
    cache_bytes: int = 256 * 1024 * 1024
    default_deadline: Optional[float] = None
    default_max_samples: Optional[int] = None
    prob_cache_entries: int = 64
    qos: Any = None  # QosConfig | None
    chaos: Optional[Dict[str, Any]] = None  # ServeFaultPlan kwargs
    mutable: bool = False
    repair_mode: str = "scalar"
    listen: bool = False  # per-worker OpenMetrics endpoint on 127.0.0.1:0


# ----------------------------------------------------------------------
# Worker process side
# ----------------------------------------------------------------------


class _ScatterSessions:
    """Per-worker state for in-flight scatter/gather coverage queries.

    One session per router-side scatter query: the worker's RR-set
    partition plus the residual bookkeeping mirroring
    ``_greedy_max_coverage_flat`` (counts start as one bincount, each
    pick decrements by one bincount over the newly covered sets).
    """

    def __init__(self, server, sampler) -> None:
        self._server = server
        self._sampler = sampler
        self._lock = threading.Lock()
        self._sessions: Dict[str, Dict[str, Any]] = {}

    def handle(self, op: str, request: dict) -> dict:
        if op == "_shard.build":
            return self._build(request)
        if op == "_shard.pick":
            return self._pick(request)
        if op == "_shard.finish":
            return self._finish(request)
        raise ReproError(f"unknown shard op {op!r}")

    def _build(self, request: dict) -> dict:
        from repro.serve.keys import canonical_tags
        from repro.sketch.theta import compute_theta, estimate_opt_t
        from repro.utils.rng import ensure_rng
        from repro.utils.validation import (
            as_target_array,
            check_budget,
            check_tags_exist,
        )

        if self._sampler is None:
            raise ConfigurationError(
                "scatter coverage requires an engine_mode on WorkerSpec "
                "(the scalar library path draws RR sets sequentially)"
            )
        graph, epoch = self._server.graph_state
        expect = request.get("expect_epoch")
        if expect is not None and int(expect) != epoch:
            raise ReproError(
                f"epoch mismatch: worker at {epoch}, router expected {expect}"
            )
        sid = str(request["sid"])
        k = int(request["k"])
        tags = canonical_tags(request.get("tags", ()))
        # Identical validation + RNG pipeline to trs_build_sketch: the
        # pilot runs in full on every worker (it consumes the stream
        # prefix), only the main sampling pass is partitioned.
        check_budget(k, graph.num_nodes, what="seeds")
        check_tags_exist(tags, graph.tags)
        target_arr = as_target_array(
            request["targets"], graph.num_nodes, context="targets"
        )
        cfg = self._server.config.sketch
        rng = ensure_rng(int(request.get("seed", 0)))
        edge_probs = graph.edge_probabilities(tags)
        opt_t = estimate_opt_t(
            graph, target_arr, edge_probs, k, cfg, rng, engine=self._sampler
        )
        theta = compute_theta(
            graph.num_nodes, k, int(target_arr.size), opt_t, cfg
        )
        rr, _ = self._sampler.sample_rr_partition(
            graph, target_arr, edge_probs, theta, rng,
            int(request["part_index"]), int(request["part_count"]),
        )
        inv_indptr, inv_sets = rr.inverted()
        counts = np.bincount(rr.members, minlength=graph.num_nodes)
        with self._lock:
            self._sessions[sid] = {
                "members": rr.members,
                "indptr": rr.indptr,
                "inv_indptr": inv_indptr,
                "inv_sets": inv_sets,
                "counts": counts,
                "covered": np.zeros(rr.num_sets, dtype=bool),
                "num_nodes": graph.num_nodes,
            }
        return {
            "ok": True,
            "theta": int(theta),
            "opt_t": float(opt_t),
            "num_targets": int(target_arr.size),
            "epoch": epoch,
            "local_sets": int(rr.num_sets),
            "counts": counts,
        }

    def _pick(self, request: dict) -> dict:
        sid = str(request["sid"])
        node = int(request["node"])
        with self._lock:
            state = self._sessions.get(sid)
        if state is None:
            raise ReproError(f"unknown scatter session {sid!r}")
        covered = state["covered"]
        newly = state["inv_sets"][
            state["inv_indptr"][node]:state["inv_indptr"][node + 1]
        ]
        newly = newly[~covered[newly]]
        covered[newly] = True
        indptr = state["indptr"]
        starts = indptr[newly]
        lengths = indptr[newly + 1] - starts
        total = int(lengths.sum())
        if total:
            cumulative = np.cumsum(lengths)
            positions = np.arange(total, dtype=np.int64) + np.repeat(
                starts - (cumulative - lengths), lengths
            )
            touched = state["members"][positions]
            state["counts"] -= np.bincount(
                touched, minlength=state["num_nodes"]
            )
        return {
            "ok": True,
            "counts": state["counts"],
            "covered": int(covered.sum()),
        }

    def _finish(self, request: dict) -> dict:
        with self._lock:
            self._sessions.pop(str(request["sid"]), None)
        return {"ok": True}


def _worker_main(conn, worker_id: str, graph_payload, spec: WorkerSpec):
    """Entry point of one spawned worker process.

    Handshakes readiness (or the construction error) on the pipe, then
    serves rid-tagged requests until ``_shard.shutdown`` or pipe EOF.
    Requests run on an internal thread pool so queries pipeline the
    same way they do inside a single-process ``CampaignServer``.
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    server = sampler = endpoint = None
    try:
        graph = (
            graph_payload.attach()
            if hasattr(graph_payload, "attach")
            else graph_payload
        )
        if spec.engine_mode is not None:
            from repro.engine.parallel import SamplingEngine

            sampler = SamplingEngine(mode=spec.engine_mode, workers=1)
        from repro.core.joint import JointConfig
        from repro.serve.server import CampaignServer

        kwargs: Dict[str, Any] = {
            "config": spec.config if spec.config is not None else JointConfig(),
            "sampler": sampler,
            "pool_size": spec.pool_size,
            "queue_capacity": spec.queue_capacity,
            "cache_bytes": spec.cache_bytes,
            "default_deadline": spec.default_deadline,
            "default_max_samples": spec.default_max_samples,
            "prob_cache_entries": spec.prob_cache_entries,
            "qos": spec.qos,
            "mutable": spec.mutable,
            "repair_mode": spec.repair_mode,
        }
        if spec.chaos:
            from repro.serve.chaos import ServeFaultPlan

            kwargs["chaos"] = ServeFaultPlan(**spec.chaos)
        server = CampaignServer(graph, **kwargs)
        if spec.listen:
            from repro.obs.live import start_live_telemetry

            endpoint = start_live_telemetry(server, listen="127.0.0.1:0")
        conn.send({
            "_rid": _CONTROL_RID,
            "ok": True,
            "worker": worker_id,
            "pid": os.getpid(),
            "endpoint": getattr(endpoint, "url", None),
            # Clock-alignment handshake: the router subtracts this from
            # its own perf_counter at receipt to map shipped span
            # timestamps onto the router clock (repro.obs.distributed).
            "clock": time.perf_counter(),
        })
    except BaseException as exc:  # report the construction failure, then die
        try:
            conn.send({
                "_rid": _CONTROL_RID,
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            })
        except OSError:
            pass
        conn.close()
        return
    try:
        _serve_conn(conn, server, sampler, spec)
    finally:
        if endpoint is not None:
            endpoint.close()
        server.close()
        if sampler is not None:
            sampler.close()
        try:
            conn.close()
        except OSError:
            pass


def _serve_conn(conn, server, sampler, spec: WorkerSpec) -> None:
    from repro import obs
    from repro.obs.distributed import span_bundle_from_tracer
    from repro.serve.protocol import handle_request

    scatter = _ScatterSessions(server, sampler)
    send_lock = threading.Lock()
    stop = threading.Event()

    def reply(rid, payload: dict) -> None:
        # Piggy-back any span bundles finished since the last reply;
        # the router strips the key before the caller's future resolves,
        # so the client-visible response is unchanged. Empty unless the
        # router propagated a trace context (zero overhead when off).
        spans = server.drain_span_exports()
        if spans:
            payload = {**payload, SPAN_BUNDLE_KEY: spans}
        with send_lock:
            try:
                conn.send({"_rid": rid, **payload})
            except (OSError, BrokenPipeError, ValueError):
                stop.set()

    def handle_shard_op(op: str, request: dict) -> dict:
        trace_ctx = TraceContext.pop_from(request)
        if op == "_shard.spans":
            # Explicit drain: the reply itself carries the buffered
            # bundles, bounding the export queue during long builds.
            return {"ok": True}
        if trace_ctx is None:
            return scatter.handle(op, request)
        # Observe the scatter phase so its spans join the stitched
        # fleet trace. Observability never perturbs results (PR 3
        # contract), so the payload is bit-identical either way.
        with obs.observe() as ob:
            ob.tracer.trace_id = trace_ctx.trace_id
            ob.tracer.parent_span_id = trace_ctx.parent_span_id
            with obs.span(op.lstrip("_")):
                payload = scatter.handle(op, request)
        server.export_span_bundle(span_bundle_from_tracer(
            ob.tracer, parent_span_id=trace_ctx.parent_span_id,
        ))
        return payload

    def handle(rid, request: dict) -> None:
        op = request.get("op")
        try:
            if isinstance(op, str) and op.startswith("_shard."):
                payload = handle_shard_op(op, request)
            else:
                payload = handle_request(server, request)
        except BaseException as exc:  # a request must never kill the loop
            payload = {
                "ok": False,
                "error": str(exc) or repr(exc),
                "type": type(exc).__name__,
            }
        reply(rid, payload)

    workers = max(int(spec.pool_size), 1) + 2  # queries + admin headroom
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="shard-worker"
    ) as pool:
        while not stop.is_set():
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(msg, dict):
                continue
            rid = msg.pop("_rid", None)
            if msg.get("op") == "_shard.shutdown":
                reply(rid, {"ok": True})
                break
            pool.submit(handle, rid, msg)


# ----------------------------------------------------------------------
# Router side
# ----------------------------------------------------------------------


@dataclass
class _Pending:
    future: Future
    payload: dict
    retryable: bool
    #: The pipe the request was last written to. A send that raced a
    #: respawn wrote to the dead pipe; the death handler finds it by
    #: comparing this against the worker's current conn.
    conn: object = None


class _Worker:
    """Router-side handle for one worker process."""

    def __init__(self, worker_id: str) -> None:
        self.id = worker_id
        self.process = None
        self.conn = None
        self.pid: Optional[int] = None
        self.endpoint: Optional[str] = None
        self.lock = threading.Lock()
        self.outstanding: Dict[int, _Pending] = {}
        self.respawns = 0
        self.dead = False  # permanently failed, removed from the ring
        #: router_perf_counter - worker_perf_counter at the spawn
        #: handshake; re-measured on every respawn. Maps shipped span
        #: timestamps onto the router clock when stitching traces.
        self.clock_offset = 0.0

    @property
    def alive(self) -> bool:
        return not self.dead and self.process is not None \
            and self.process.is_alive()


class ShardedCampaignService:
    """Router fronting N ``CampaignServer`` worker processes.

    Exposes the single-server surface the serving stack already speaks:
    :meth:`route_request` (consumed by ``repro.serve.protocol``),
    :meth:`metrics` / :meth:`health` / ``events`` (consumed by the live
    telemetry endpoint) and :meth:`apply_edits`. See the module
    docstring for routing, scatter, failure and epoch semantics.

    Parameters
    ----------
    graph:
        The :class:`~repro.graphs.TagGraph` to serve. With
        ``share_graph=True`` (default) its arrays are packed once into
        shared memory and every worker attaches zero-copy; the router
        owns the segments and unlinks them on :meth:`close`.
    workers:
        Fleet size (>= 1).
    spec:
        Per-worker :class:`WorkerSpec`.
    max_respawns:
        Per-worker budget of crash recoveries before the worker is
        declared permanently dead and leaves the ring.
    admission_capacity:
        Router-level in-flight cap; defaults to the fleet's aggregate
        ``pool_size + queue_capacity``.
    tracing:
        Enable fleet-wide distributed tracing: every routed query gets
        a router ``serve.query`` span, workers ship their span bundles
        back, and :meth:`chrome_trace` / the ``trace`` op serve one
        stitched Chrome trace. Off by default — when off, no trace
        context is injected and workers never open observations.
    trace_capacity:
        Bound on retained traces in the router collector (oldest
        evicted first).
    """

    def __init__(
        self,
        graph,
        workers: int = 2,
        spec: WorkerSpec = WorkerSpec(),
        *,
        max_respawns: int = 3,
        admission_capacity: Optional[int] = None,
        ring_replicas: int = 128,
        share_graph: bool = True,
        tracing: bool = False,
        trace_capacity: int = 256,
    ) -> None:
        from repro.obs.events import EventLog

        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        self._graph = graph
        self._spec = spec
        self._max_respawns = int(max_respawns)
        self._closing = False
        self._closed = False
        self._started = time.monotonic()
        self._ctx = mp.get_context("spawn")
        self._rids = itertools.count(1)
        self._sids = itertools.count(1)
        self._journal: List[Tuple[list, bool]] = []
        self._epoch = 0
        self._fleet_lock = threading.RLock()
        self.events = EventLog(capacity=512)

        # Router-local counters (merged into /metrics scrapes).
        self._stats_lock = threading.Lock()
        self._dispatched = 0
        self._retries = 0
        self._respawn_count = 0
        self._scatter_queries = 0
        self._scatter_restarts = 0
        self._unreachable = 0  # workers that died mid-scrape (cumulative)

        # Fleet tracing + slow-query flight recorder (see module docs).
        self._trace = (
            TraceCollector(int(trace_capacity), label="router")
            if tracing else None
        )
        self._trace_seq = itertools.count(1)
        qos_cfg = spec.qos
        self.flightrec = FlightRecorder(
            int(getattr(qos_cfg, "flight_capacity", None) or 64),
            slow_ms=getattr(qos_cfg, "flight_slow_ms", None),
        )

        # Reader/writer gate: queries read, apply_edits writes.
        self._gate = threading.Condition()
        self._gate_queries = 0
        self._gate_writer = False

        self._shared = None
        payload = graph
        if share_graph:
            from repro.engine.shared_csr import SharedTagGraph
            from repro.graphs.tag_graph import TagGraph

            if type(graph) is TagGraph:
                self._shared = SharedTagGraph(graph)
                payload = self._shared.handle
        self._graph_payload = payload

        capacity = admission_capacity
        if capacity is None:
            capacity = workers * (
                int(spec.pool_size) + int(spec.queue_capacity)
            )
        self._admission = RouterAdmission(max(int(capacity), 1))

        self._workers: Dict[str, _Worker] = {}
        try:
            for i in range(workers):
                worker = _Worker(f"w{i}")
                self._spawn(worker)
                self._workers[worker.id] = worker
        except BaseException:
            self.close()
            raise
        self.ring = HashRing(self._workers, replicas=ring_replicas)

    # ------------------------------------------------------------------
    # Fleet management
    # ------------------------------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        """Start (or restart) one worker process and handshake it.

        On restart, replays the edit journal over the fresh pipe before
        the receiver thread starts, so the worker rejoins at the
        current epoch and FIFO ordering guarantees every subsequently
        dispatched query sees it.
        """
        parent, child = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child, worker.id, self._graph_payload, self._spec),
            name=f"repro-shard-{worker.id}",
            daemon=True,
        )
        process.start()
        child.close()
        ready = parent.recv()  # blocks until the worker built its server
        # Clock alignment: sampled immediately after recv so the offset
        # over-counts by at most the one-way pipe latency — a positive
        # bias, so stitched worker spans never predate their dispatch.
        router_clock = time.perf_counter()
        if not ready.get("ok"):
            parent.close()
            process.join(timeout=5.0)
            raise ReproError(
                f"worker {worker.id} failed to start: {ready.get('error')}"
            )
        for index, (edits, repair) in enumerate(self._journal):
            parent.send({
                "op": "apply_edits", "edits": edits, "repair": repair,
                "_rid": _CONTROL_RID - 1 - index,
            })
            applied = parent.recv()
            if not applied.get("ok"):
                parent.close()
                process.terminate()
                raise ReproError(
                    f"worker {worker.id} failed journal replay: "
                    f"{applied.get('error')}"
                )
        worker.process = process
        worker.conn = parent
        worker.pid = ready.get("pid")
        worker.endpoint = ready.get("endpoint")
        worker_clock = ready.get("clock")
        worker.clock_offset = (
            router_clock - float(worker_clock)
            if isinstance(worker_clock, (int, float)) else 0.0
        )
        thread = threading.Thread(
            target=self._receive_loop,
            args=(worker, parent),
            name=f"shard-recv-{worker.id}",
            daemon=True,
        )
        thread.start()
        self.events.emit(
            "shard.worker_up", worker=worker.id, pid=worker.pid,
            respawns=worker.respawns,
        )

    def _receive_loop(self, worker: _Worker, conn) -> None:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(msg, dict):
                continue
            rid = msg.pop("_rid", None)
            # Strip piggy-backed span bundles unconditionally (wire
            # responses stay identical tracing on or off) and ingest
            # them BEFORE the future resolves, so a flight record cut
            # on response completion sees the full stitched trace.
            bundles = msg.pop(SPAN_BUNDLE_KEY, None)
            if bundles and self._trace is not None:
                for bundle in bundles:
                    self._trace.add_bundle(
                        bundle,
                        offset_seconds=worker.clock_offset,
                        worker=worker.id,
                        pid=worker.pid,
                    )
            with worker.lock:
                pending = worker.outstanding.pop(rid, None)
            if pending is not None:
                pending.future.set_result(msg)
        self._on_conn_down(worker, conn)

    def _on_conn_down(self, worker: _Worker, conn) -> None:
        """Handle a dead pipe: respawn + replay, or retire the worker."""
        with self._fleet_lock:
            if self._closing or worker.conn is not conn:
                return
            with worker.lock:
                orphans = dict(worker.outstanding)
                worker.outstanding.clear()
            worker.respawns += 1
            with self._stats_lock:
                self._respawn_count += 1
            self.events.emit(
                "shard.worker_down", worker=worker.id, pid=worker.pid,
                orphaned=len(orphans), respawns=worker.respawns,
            )
            if worker.respawns > self._max_respawns:
                self._retire(worker, orphans, "respawn budget exhausted")
                return
            try:
                self._spawn(worker)
            except (ReproError, OSError) as exc:
                self._retire(worker, orphans, f"respawn failed: {exc}")
                return
            # Sends that raced the respawn wrote to the dead pipe and
            # were swallowed; sweep them into the orphan set so they are
            # replayed (or failed) like everything else that was lost.
            with worker.lock:
                strays = {
                    rid: pending
                    for rid, pending in worker.outstanding.items()
                    if pending.conn is not worker.conn
                }
                for rid in strays:
                    del worker.outstanding[rid]
            orphans.update(strays)
            for rid, pending in orphans.items():
                if pending.retryable:
                    with self._stats_lock:
                        self._retries += 1
                    self._send(worker, rid, pending)
                else:
                    pending.future.set_exception(WorkerDiedError(
                        f"worker {worker.id} died mid-request "
                        "(non-retryable op)"
                    ))

    def _retire(self, worker: _Worker, orphans, reason: str) -> None:
        worker.dead = True
        with worker.lock:
            orphans = {**orphans, **worker.outstanding}
            worker.outstanding.clear()
        if worker.id in self.ring:
            self.ring.remove(worker.id)
        self.events.emit(
            "shard.worker_retired", worker=worker.id, reason=reason
        )
        for pending in orphans.values():
            pending.future.set_exception(WorkerDiedError(
                f"worker {worker.id} permanently dead: {reason}"
            ))

    def _live_workers(self) -> List[_Worker]:
        return [w for w in self._workers.values() if not w.dead]

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------

    def _send(self, worker: _Worker, rid: int, pending: _Pending) -> None:
        with worker.lock:
            if worker.dead:
                pending.future.set_exception(WorkerDiedError(
                    f"worker {worker.id} permanently dead"
                ))
                return
            worker.outstanding[rid] = pending
            pending.conn = worker.conn
            try:
                worker.conn.send({**pending.payload, "_rid": rid})
            except (OSError, BrokenPipeError, ValueError):
                # The receiver thread sees the same broken pipe and runs
                # the death handler; the pending entry rides along.
                pass

    def _call(
        self, worker: _Worker, payload: dict, retryable: bool
    ) -> Future:
        if self._closed:
            raise ServerClosedError("sharded service is closed")
        rid = next(self._rids)
        pending = _Pending(Future(), dict(payload), retryable)
        with self._stats_lock:
            self._dispatched += 1
        self._send(worker, rid, pending)
        return pending.future

    def _enter_query(self) -> None:
        with self._gate:
            while self._gate_writer:
                self._gate.wait()
            self._gate_queries += 1

    def _exit_query(self) -> None:
        with self._gate:
            self._gate_queries -= 1
            if self._gate_queries == 0:
                self._gate.notify_all()

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    def route_request(self, request: dict) -> dict:
        """Dispatch one decoded wire request; returns the wire response.

        Raises :class:`~repro.exceptions.QueryRejectedError` subclasses
        for router-level admission rejections (the protocol layer turns
        them into structured error responses) and
        :class:`WorkerDiedError` when no worker can serve the request.
        """
        if self._closed:
            raise ServerClosedError("sharded service is closed")
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True,
                    "workers": len(self._live_workers())}
        if op == "metrics":
            return self._metrics_response()
        if op == "health":
            return {"ok": True, "health": self.health()}
        if op == "events":
            limit = request.get("limit")
            return {"ok": True, **self.events_payload(
                int(limit) if limit is not None else None
            )}
        if op == "trace":
            return {"ok": True,
                    **self.trace_payload(request.get("trace_id"))}
        if op == "flightrec":
            limit = request.get("limit")
            return {"ok": True, **self.flightrec.payload(
                int(limit) if limit is not None else None
            )}
        if op == "apply_edits":
            edits = request.get("edits")
            if not isinstance(edits, list):
                raise ReproError("apply_edits requires an \"edits\" list")
            return self.apply_edits(
                edits, repair=bool(request.get("repair", True))
            )
        if op == "find_seeds" and request.get("scatter"):
            return self._scatter_find_seeds(request)
        if op in _QUERY_OPS or op == "warm_index":
            return self._dispatch_affinity(request)
        raise ReproError(
            f"unknown op {op!r}; expected one of "
            f"{_QUERY_OPS + ('warm_index', 'apply_edits', 'metrics', 'health', 'events', 'trace', 'flightrec', 'ping')}"
        )

    # -- tracing + flight-recorder plumbing -----------------------------

    def _begin_trace(self, op, **attrs) -> Optional[dict]:
        """Open the router-clock ``serve.query`` span (None when off)."""
        if self._trace is None:
            return None
        trace_id = f"t-{next(self._trace_seq):06d}"
        return self._trace.begin(
            "serve.query", trace_id=trace_id, op=op, **attrs
        )

    @staticmethod
    def _with_trace_context(request: dict, record: Optional[dict]) -> dict:
        """Copy ``request`` with the propagation context injected.

        Called AFTER :func:`routing_token` so placement never sees the
        private key (the token only reads identity fields anyway).
        """
        if record is None:
            return request
        ctx = TraceContext(record["trace_id"], record["span_id"])
        return {**request, TRACE_CONTEXT_KEY: ctx.as_dict()}

    def _flight_rejection(self, exc, op, qos, record, started) -> None:
        """Flight-record a router-level admission rejection."""
        if record is not None:
            self._trace.finish(record, error=exc.code)
        self.flightrec.record(
            reason="rejected",
            op=op,
            qos_class=qos,
            phase="admission",
            code=exc.code,
            retry_after_ms=exc.retry_after_ms,
            elapsed_ms=round((time.monotonic() - started) * 1000.0, 3),
            trace_id=record["trace_id"] if record is not None else None,
        )

    def _finish_query(self, record, response, op, qos, request,
                      started) -> None:
        """Close the router span and flight-record qualifying queries."""
        elapsed_ms = (time.monotonic() - started) * 1000.0
        ok = bool(response.get("ok"))
        if record is not None:
            self._trace.finish(
                record, ok=ok,
                cache=response.get("cache"), tier=response.get("tier"),
            )
        error = response.get("error")
        kind = str(response.get("type") or "")
        # Only admission/budget failures are flight-worthy; a plain
        # validation error is the client's bug, not a serving incident.
        failed = not ok and (
            isinstance(error, dict) or kind == "BudgetExceededError"
        )
        deadline = request.get("deadline")
        deadline_ms = (
            float(deadline) * 1000.0 if deadline is not None else None
        )
        if not self.flightrec.should_record(
            elapsed_ms=elapsed_ms, deadline_ms=deadline_ms, failed=failed
        ):
            return
        if failed:
            reason = (
                "cancelled" if kind == "BudgetExceededError" else "rejected"
            )
        elif deadline_ms is not None and elapsed_ms > deadline_ms:
            reason = "deadline_miss"
        else:
            reason = "slow"
        decisions = None
        if ok:
            decisions = {
                "class": response.get("class"),
                "tier": response.get("tier"),
                "cache": response.get("cache"),
                "epoch": response.get("epoch"),
                "degraded": response.get("degraded") is not None,
            }
        # The stitched trace is already complete: worker bundles ride
        # the same reply and are ingested before the future resolves.
        trace = (
            self._trace.chrome_trace(record["trace_id"])
            if record is not None else None
        )
        self.flightrec.record(
            reason=reason,
            op=op,
            qos_class=qos,
            elapsed_ms=round(elapsed_ms, 3),
            deadline_ms=deadline_ms,
            code=error.get("code") if isinstance(error, dict) else None,
            error=error if isinstance(error, str) else None,
            tier=response.get("tier"),
            decisions=decisions,
            trace_id=record["trace_id"] if record is not None else None,
            trace=trace,
        )

    def _dispatch_affinity(self, request: dict) -> dict:
        op = request.get("op")
        qos = str(request.get("class", request.get("qos_class",
                                                   "interactive")))
        started = time.monotonic()
        record = self._begin_trace(op, **{"class": qos})
        try:
            self._admission.admit(qos)
        except QueryRejectedError as exc:
            self._flight_rejection(exc, op, qos, record, started)
            raise
        try:
            self._enter_query()
            try:
                token = routing_token(request)
                payload = self._with_trace_context(request, record)
                while True:
                    worker = self._place(token)
                    future = self._call(worker, payload, retryable=True)
                    try:
                        response = future.result()
                    except WorkerDiedError:
                        # The worker left the ring; re-place on survivors.
                        continue
                    self._finish_query(
                        record, response, op, qos, request, started
                    )
                    return response
            finally:
                self._exit_query()
        finally:
            self._admission.release(qos)

    def _place(self, token: str) -> _Worker:
        try:
            worker_id = self.ring.place(token)
        except ConfigurationError:
            raise WorkerDiedError(
                "no live workers remain in the sharded service"
            ) from None
        return self._workers[worker_id]

    def worker_for(self, request: dict) -> str:
        """Ring placement for a request — exposed for affinity tests."""
        return self.ring.place(routing_token(request))

    # -- scatter/gather greedy coverage --------------------------------

    def _scatter_find_seeds(self, request: dict) -> dict:
        qos = str(request.get("class", request.get("qos_class",
                                                   "interactive")))
        if request.get("engine") not in (None, "trs"):
            raise InvalidQueryError(
                "scatter coverage supports engine='trs' only"
            )
        started = time.monotonic()
        record = self._begin_trace("find_seeds", scatter=True,
                                   **{"class": qos})
        try:
            self._admission.admit(qos)
        except QueryRejectedError as exc:
            self._flight_rejection(exc, "find_seeds", qos, record, started)
            raise
        try:
            self._enter_query()
            try:
                with self._stats_lock:
                    self._scatter_queries += 1
                attempts = 0
                while True:
                    try:
                        response = self._scatter_once(
                            request, qos, trace=record
                        )
                    except WorkerDiedError:
                        attempts += 1
                        if attempts > 2:
                            raise
                        with self._stats_lock:
                            self._scatter_restarts += 1
                        # Deterministic pipeline: a clean restart over
                        # the surviving fleet gives the same answer.
                        continue
                    self._finish_query(
                        record, response, "find_seeds", qos, request,
                        started,
                    )
                    return response
            finally:
                self._exit_query()
        finally:
            self._admission.release(qos)

    def _scatter_once(
        self, request: dict, qos: str, trace: Optional[dict] = None
    ) -> dict:
        started = time.monotonic()
        live = self._live_workers()
        if not live:
            raise WorkerDiedError(
                "no live workers remain in the sharded service"
            )
        sid = f"scatter-{next(self._sids)}"
        part_count = len(live)
        k = int(request["k"])
        # Propagation context for the scatter phases: every build/pick
        # runs under the router's serve.query span, so the stitched
        # trace shows one query fanning across all worker pids.
        ctx = (
            TraceContext(trace["trace_id"], trace["span_id"]).as_dict()
            if trace is not None else None
        )
        base = {
            "op": "_shard.build",
            "sid": sid,
            "targets": list(request["targets"]),
            "tags": list(request.get("tags", ())),
            "k": k,
            "seed": int(request.get("seed", 0)),
            "part_count": part_count,
            "expect_epoch": self._epoch,
        }
        if ctx is not None:
            base[TRACE_CONTEXT_KEY] = ctx
        futures = [
            self._call(w, {**base, "part_index": i}, retryable=False)
            for i, w in enumerate(live)
        ]
        try:
            infos = self._gather(futures, "scatter build")
            thetas = {info["theta"] for info in infos}
            epochs = {info["epoch"] for info in infos}
            if len(thetas) != 1 or len(epochs) != 1:
                raise ReproError(
                    f"scatter divergence: thetas={sorted(thetas)} "
                    f"epochs={sorted(epochs)}"
                )
            theta = thetas.pop()
            num_targets = infos[0]["num_targets"]
            num_nodes = int(self._graph.num_nodes)
            counts = np.zeros(num_nodes, dtype=np.int64)
            for info in infos:
                counts += np.asarray(info["counts"], dtype=np.int64)

            # Greedy max coverage over summed residual counts — same
            # argmax/tie-break/stop/filler semantics as
            # repro.sketch.coverage (allowed = all nodes).
            seeds: List[int] = []
            marginals: List[int] = []
            used = np.zeros(num_nodes, dtype=bool)
            covered = 0
            budget = min(k, num_nodes)
            for _ in range(budget):
                masked = np.where(~used, counts, -1)
                best = int(masked.argmax())
                gain = int(masked[best])
                if gain <= 0:
                    break
                seeds.append(best)
                marginals.append(gain)
                used[best] = True
                pick = {"op": "_shard.pick", "sid": sid, "node": best}
                if ctx is not None:
                    pick[TRACE_CONTEXT_KEY] = ctx
                picks = [
                    self._call(w, dict(pick), retryable=False)
                    for w in live
                ]
                responses = self._gather(picks, "scatter pick")
                counts = np.zeros(num_nodes, dtype=np.int64)
                covered = 0
                for resp in responses:
                    counts += np.asarray(resp["counts"], dtype=np.int64)
                    covered += int(resp["covered"])
            if len(seeds) < budget:
                fillers = np.flatnonzero(~used)
                for node in fillers[: budget - len(seeds)].tolist():
                    seeds.append(int(node))
                    marginals.append(0)

            total = sum(int(info["local_sets"]) for info in infos)
            fraction = covered / total if total else 0.0
            elapsed_ms = (time.monotonic() - started) * 1000.0
            return {
                "ok": True,
                "seeds": [int(s) for s in seeds],
                "spread": float(fraction * num_targets),
                "engine": "trs",
                "cache": "scatter",
                "class": qos,
                "tier": "full",
                "epoch": self._epoch,
                "elapsed_ms": round(elapsed_ms, 3),
                "scatter": {
                    "workers": part_count,
                    "theta": int(theta),
                    "covered": int(covered),
                    "total_sets": int(total),
                    "marginals": [int(m) for m in marginals],
                },
            }
        finally:
            for w in live:
                if not w.dead:
                    try:
                        self._call(
                            w, {"op": "_shard.finish", "sid": sid},
                            retryable=False,
                        )
                    except ServerClosedError:  # pragma: no cover
                        break

    def _gather(self, futures: List[Future], what: str) -> List[dict]:
        results = []
        for future in futures:
            response = future.result()
            if not response.get("ok"):
                error = response.get("error")
                kind = response.get("type", "")
                if kind == "InvalidQueryError":
                    raise InvalidQueryError(str(error))
                raise ReproError(f"{what} failed: {error}")
            results.append(response)
        return results

    # -- epoch broadcast ------------------------------------------------

    def apply_edits(self, edits, repair: bool = True) -> dict:
        """Broadcast an edit batch to every worker (writer-gated).

        Appends to the journal *before* sending, so a worker that dies
        mid-apply replays the batch during respawn; afterwards every
        worker must report the same epoch or the call fails loudly.
        """
        if not self._spec.mutable:
            raise ReproError(
                "apply_edits requires a mutable service "
                "(WorkerSpec(mutable=True))"
            )
        batch = ([dict(e) for e in edits], bool(repair))
        with self._gate:
            while self._gate_writer:
                self._gate.wait()
            self._gate_writer = True
            while self._gate_queries:
                self._gate.wait()
        try:
            self._journal.append(batch)
            live = self._live_workers()
            if not live:
                raise WorkerDiedError(
                    "no live workers remain in the sharded service"
                )
            futures = {
                w.id: self._call(
                    w,
                    {"op": "apply_edits", "edits": batch[0],
                     "repair": batch[1]},
                    retryable=False,
                )
                for w in live
            }
            summary: Optional[dict] = None
            epochs = set()
            for worker_id, future in futures.items():
                try:
                    response = future.result()
                except WorkerDiedError:
                    # The respawn replayed the journal (including this
                    # batch); confirm its epoch through a health probe.
                    worker = self._workers[worker_id]
                    if worker.dead:
                        continue
                    probe = self._call(
                        worker, {"op": "health"}, retryable=True
                    ).result()
                    epochs.add(int(probe["health"]["epoch"]))
                    continue
                if not response.get("ok"):
                    raise ReproError(
                        f"apply_edits failed on {worker_id}: "
                        f"{response.get('error')}"
                    )
                epochs.add(int(response["epoch"]))
                if summary is None:
                    summary = response
            if len(epochs) != 1:
                raise ReproError(
                    f"epoch divergence after apply_edits: {sorted(epochs)}"
                )
            self._epoch = epochs.pop()
            if summary is None:  # every worker died and respawned
                summary = {"ok": True, "epoch": self._epoch}
            summary["epoch"] = self._epoch
            summary["workers"] = len(futures)
            self.events.emit(
                "shard.epoch_broadcast", epoch=self._epoch,
                workers=len(futures), edits=len(batch[0]),
            )
            return summary
        finally:
            with self._gate:
                self._gate_writer = False
                self._gate.notify_all()

    # -- observability ---------------------------------------------------

    def _router_snapshot(self) -> dict:
        with self._stats_lock:
            counters = {
                "router.dispatched": self._dispatched,
                "router.retries": self._retries,
                "router.respawns": self._respawn_count,
                "router.scatter_queries": self._scatter_queries,
                "router.scatter_restarts": self._scatter_restarts,
                "router.workers.unreachable": self._unreachable,
            }
        admission = self._admission.snapshot()
        counters["router.admitted"] = admission["admitted"]
        counters["router.rejected"] = admission["rejected"]
        return {
            "counters": counters,
            "gauges": {
                "router.workers": float(len(self._live_workers())),
                "router.in_flight": float(admission["in_flight"]),
            },
            "histograms": {},
        }

    def _metrics_response(self) -> dict:
        from repro.obs.live import merge_metrics_snapshots
        from repro.serve.server import METRICS_SCHEMA

        futures = [
            (w, self._call(w, {"op": "metrics"}, retryable=True))
            for w in self._live_workers()
        ]
        snapshots: List[dict] = []
        cache: Dict[str, Any] = {}
        per_worker: Dict[str, Dict[str, Any]] = {}
        unreachable = 0
        for worker, future in futures:
            info: Dict[str, Any] = {
                "pid": worker.pid,
                "endpoint": worker.endpoint,
                "respawns": worker.respawns,
            }
            try:
                response = future.result()
            except (WorkerDiedError, ServerClosedError) as exc:
                # A worker dying mid-scrape is a labeled gap in the
                # response, never a KeyError or a silently missing row.
                info["unreachable"] = True
                info["error"] = type(exc).__name__
                per_worker[worker.id] = info
                unreachable += 1
                continue
            if not response.get("ok"):
                info["unreachable"] = True
                info["error"] = str(response.get("error"))
                per_worker[worker.id] = info
                unreachable += 1
                continue
            metrics = response.get("metrics") or {}
            snapshots.append(metrics)
            counters = metrics.get("counters") or {}
            gauges = metrics.get("gauges") or {}
            info["queries"] = int(counters.get("serve.queries") or 0)
            info["inflight"] = float(gauges.get("serve.inflight") or 0.0)
            info["epoch"] = int(gauges.get("serve.epoch") or 0)
            per_worker[worker.id] = info
            for key, value in (response.get("cache") or {}).items():
                if isinstance(value, (int, float)):
                    cache[key] = cache.get(key, 0) + value
        if unreachable:
            with self._stats_lock:
                self._unreachable += unreachable
        # Router snapshot is taken AFTER the scrape so the unreachable
        # counter reflects this very scrape's gaps.
        snapshots.insert(0, self._router_snapshot())
        merged = merge_metrics_snapshots(snapshots)
        # Per-worker families are injected post-merge so they never sum
        # across workers; rendered as labeled OpenMetrics series and the
        # per-worker rows of `repro top`.
        for worker_id, info in per_worker.items():
            if info.get("unreachable"):
                continue
            merged["counters"][f"worker.{worker_id}.queries"] = (
                info["queries"]
            )
            merged["gauges"][f"worker.{worker_id}.inflight"] = (
                info["inflight"]
            )
            merged["gauges"][f"worker.{worker_id}.respawns"] = float(
                info["respawns"]
            )
            merged["gauges"][f"worker.{worker_id}.epoch"] = float(
                info["epoch"]
            )
        return {
            "ok": True,
            "schema": METRICS_SCHEMA,
            "metrics": merged,
            "cache": cache,
            "workers": per_worker,
        }

    def events_payload(self, limit: Optional[int] = None) -> dict:
        """Causally merged fleet event stream (``repro.obs.events/2``).

        Scrapes every live worker's event ring plus the router's own
        and merges them into one ordered stream; a worker that dies
        mid-scrape becomes a labeled gap in ``sources``.
        """
        futures = [
            (w, self._call(w, {"op": "events"}, retryable=True))
            for w in self._live_workers()
        ]
        payloads: Dict[str, Any] = {"router": self.events.payload(None)}
        for worker, future in futures:
            try:
                response = future.result()
            except (WorkerDiedError, ServerClosedError):
                payloads[worker.id] = None
                continue
            payloads[worker.id] = response if response.get("ok") else None
        return merge_event_payloads(
            payloads, epoch=self._epoch, limit=limit
        )

    def _drain_worker_spans(self) -> None:
        """Pull buffered span bundles out of every live worker.

        The ``_shard.spans`` reply carries the bundles piggy-backed, so
        by the time each future resolves the receive loop has already
        ingested them into the collector.
        """
        futures = [
            (w, self._call(w, {"op": "_shard.spans"}, retryable=False))
            for w in self._live_workers()
        ]
        for _worker, future in futures:
            try:
                future.result()
            except (WorkerDiedError, ServerClosedError):
                continue

    def chrome_trace(self, trace_id: Optional[str] = None) -> List[dict]:
        """One stitched fleet Chrome trace (empty when tracing is off)."""
        if self._trace is None:
            return []
        self._drain_worker_spans()
        return self._trace.chrome_trace(trace_id)

    def trace_payload(self, trace_id: Optional[str] = None) -> dict:
        """The ``/trace`` debug document for the fleet."""
        if self._trace is None:
            return empty_trace_payload()
        self._drain_worker_spans()
        return self._trace.payload(trace_id)

    def flight_payload(self, limit: Optional[int] = None) -> dict:
        """The ``/debug/slow`` document (always available)."""
        return self.flightrec.payload(limit)

    def metrics(self) -> dict:
        """Aggregated fleet metrics (one merged snapshot)."""
        return self._metrics_response()["metrics"]

    def cache_stats(self):
        """Summed per-worker cache stats as a plain dict-like object."""
        return _DictStats(self._metrics_response()["cache"])

    def health(self) -> dict:
        """Router-local health: never blocks on worker round-trips."""
        workers = {
            w.id: {
                "alive": w.alive,
                "pid": w.pid,
                "respawns": w.respawns,
                "endpoint": w.endpoint,
                "clock_offset_ms": round(w.clock_offset * 1000.0, 3),
            }
            for w in self._workers.values()
        }
        live = len(self._live_workers())
        if self._closed:
            status = "closed"
        elif live == len(self._workers):
            status = "ok"
        elif live:
            status = "degraded"
        else:
            status = "failed"
        return {
            "status": status,
            "epoch": self._epoch,
            "tracing": self._trace is not None,
            "workers": workers,
            "admission": self._admission.snapshot(),
            "ring": {
                "members": sorted(self.ring.members),
                "replicas": self.ring.replicas,
            },
            "uptime_seconds": round(time.monotonic() - self._started, 3),
        }

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def num_workers(self) -> int:
        return len(self._live_workers())

    def worker_pids(self) -> Dict[str, Optional[int]]:
        """Live worker pids, for chaos tests that SIGKILL a worker."""
        return {w.id: w.pid for w in self._live_workers()}

    # -- convenience query helpers (wire-shaped responses) --------------

    def find_seeds(self, targets, tags=(), k=1, **kw) -> dict:
        return self.route_request({
            "op": "find_seeds", "targets": list(targets),
            "tags": list(tags), "k": k, **kw,
        })

    def find_tags(self, seeds, targets, r=1, **kw) -> dict:
        return self.route_request({
            "op": "find_tags", "seeds": list(seeds),
            "targets": list(targets), "r": r, **kw,
        })

    def estimate_spread(self, seeds, targets, tags=(), **kw) -> dict:
        return self.route_request({
            "op": "spread", "seeds": list(seeds),
            "targets": list(targets), "tags": list(tags), **kw,
        })

    def broadcast(self, request: dict) -> List[dict]:
        """Send one request to every live worker and gather the replies.

        For fleet-wide warming (``warm_index``) where affinity routing
        would prime only one worker's cache.
        """
        futures = [
            self._call(w, dict(request), retryable=True)
            for w in self._live_workers()
        ]
        return [f.result() for f in futures]

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Shut the fleet down and release shared-memory segments."""
        with self._fleet_lock:
            if self._closed:
                return
            self._closing = True
            self._closed = True
            workers = list(self._workers.values())
        for worker in workers:
            if worker.conn is None:
                continue
            try:
                worker.conn.send({
                    "op": "_shard.shutdown", "_rid": _CONTROL_RID,
                })
            except (OSError, BrokenPipeError, ValueError):
                pass
        for worker in workers:
            if worker.process is not None:
                worker.process.join(timeout=10.0)
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.kill()
                    worker.process.join(timeout=5.0)
            if worker.conn is not None:
                try:
                    worker.conn.close()
                except OSError:
                    pass
            with worker.lock:
                orphans = dict(worker.outstanding)
                worker.outstanding.clear()
            for pending in orphans.values():
                pending.future.set_exception(
                    ServerClosedError("sharded service closed")
                )
        if self._shared is not None:
            self._shared.unlink()
            self._shared = None

    def __enter__(self) -> "ShardedCampaignService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _DictStats(dict):
    """Summed cache counters with the ``CacheStats`` surface callers use.

    Numeric fields are fleet-wide sums; missing fields read as 0 so
    ``stats.entries``-style access keeps working against any worker
    cache-stats version.
    """

    def as_dict(self) -> dict:
        return dict(self)

    def __getattr__(self, name: str):
        try:
            return self[name]
        except KeyError:
            return 0
