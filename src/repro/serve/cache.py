"""Byte-accounted LRU asset cache with single-flight deduplication.

The serving hot path is "many concurrent queries, few distinct assets";
this cache guarantees two things under that contention:

* **Single flight** — when N threads ask for the same missing key, one
  becomes the *builder* and runs the (expensive, RR-sampling) build;
  the other N-1 block on the build's ticket and receive the same asset
  object. The ``builds`` counter therefore increments exactly once per
  distinct key, which the concurrency suite asserts directly.
* **Bounded memory** — every asset declares its payload size in bytes;
  inserting past ``max_bytes`` evicts least-recently-used entries (the
  just-inserted asset is never evicted, so a single oversized asset
  still serves the query that built it).

A failed build never poisons the cache: the error propagates to the
builder, waiting threads observe the failure and re-compete to build
(one of them becomes the next builder). All waiting is on per-ticket
events — the cache-wide lock is only ever held for dictionary
bookkeeping, never across a build, so builds of distinct keys proceed
in parallel and the cache cannot deadlock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

__all__ = ["AssetCache", "CacheStats", "CachedAsset"]


@dataclass
class CachedAsset:
    """One cached asset: the payload plus its accounting metadata.

    ``metrics`` carries the observability registry captured while the
    asset was built. On a cache hit the server merges it into the
    query's own observation, so a served answer reports the *same* work
    counters whether the asset was built for this query or reused —
    the differential suite's bit-identity includes counters.
    """

    key: object
    value: Any
    nbytes: int
    metrics: Any = None  # MetricsRegistry snapshot from the build scope
    builds: int = 1  # builds of *this* asset object (always 1 today)


@dataclass
class CacheStats:
    """Point-in-time cache counters (all monotonic except gauges).

    Every satisfied request is either a ``miss`` (it ran the build) or
    a ``hit`` (it was served an already/concurrently built asset);
    ``singleflight_joins`` is the subset of hits that blocked on an
    in-flight build rather than finding the asset resident. So
    ``misses == builds`` (absent failed builds) and the request total
    is ``hits + misses``, with joins double-counted nowhere.

    ``puts`` counts direct :meth:`AssetCache.put` inserts (salvaged
    partials) — kept out of ``builds`` so the ``misses == builds``
    invariant above survives; ``stale_hits`` counts
    :meth:`AssetCache.find_stale` matches (degraded-tier service) —
    kept out of ``hits`` so exact-answer hit rates stay honest.
    """

    hits: int = 0
    misses: int = 0
    builds: int = 0
    evictions: int = 0
    singleflight_joins: int = 0
    puts: int = 0
    stale_hits: int = 0
    entries: int = 0
    bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "evictions": self.evictions,
            "singleflight_joins": self.singleflight_joins,
            "puts": self.puts,
            "stale_hits": self.stale_hits,
            "entries": self.entries,
            "bytes": self.bytes,
        }


@dataclass
class _Ticket:
    """In-flight build marker; waiters block on ``event``."""

    event: threading.Event = field(default_factory=threading.Event)
    asset: Optional[CachedAsset] = None
    error: Optional[BaseException] = None


class AssetCache:
    """Thread-safe LRU keyed by :class:`~repro.serve.keys.AssetKey`.

    Parameters
    ----------
    max_bytes:
        Soft ceiling on cached payload bytes. Eviction runs at insert
        time and spares the entry being inserted.
    on_event:
        Optional callback ``on_event(name, amount)`` mirroring every
        counter bump (``hits``/``misses``/``builds``/``evictions``/
        ``singleflight_joins``) into the server's ``serve.cache.*``
        metrics. Called outside any wait but under the cache lock, so
        it must be cheap and must not call back into the cache.
    """

    def __init__(
        self,
        max_bytes: int = 256 * 1024 * 1024,
        on_event: Callable[[str, int], None] | None = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[object, CachedAsset]" = OrderedDict()
        self._inflight: dict[object, _Ticket] = {}
        self._lock = threading.Lock()
        self._stats = CacheStats()
        self._on_event = on_event

    # ------------------------------------------------------------------
    # Events / stats
    # ------------------------------------------------------------------
    def _bump(self, name: str, amount: int = 1) -> None:
        setattr(self._stats, name, getattr(self._stats, name) + amount)
        if self._on_event is not None:
            self._on_event(name, amount)

    def stats(self) -> CacheStats:
        """Snapshot of the counters (entries/bytes reflect *now*)."""
        with self._lock:
            snap = CacheStats(**self._stats.as_dict())
            snap.entries = len(self._entries)
            snap.bytes = sum(e.nbytes for e in self._entries.values())
            return snap

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def get(self, key: object) -> Optional[CachedAsset]:
        """Plain lookup: LRU-touch and return the asset, or ``None``."""
        with self._lock:
            asset = self._entries.get(key)
            if asset is not None:
                self._entries.move_to_end(key)
                self._bump("hits")
            return asset

    def peek(self, key: object) -> Optional[CachedAsset]:
        """Counter-free lookup: no LRU touch, no ``hits`` bump.

        For maintenance passes (epoch migration) that must inspect
        resident assets without perturbing hit rates or recency.
        """
        with self._lock:
            return self._entries.get(key)

    def get_or_build(
        self,
        key: object,
        build: Callable[[], Tuple[Any, int, Any]],
    ) -> Tuple[CachedAsset, bool]:
        """Return the asset for ``key``, building it at most once.

        ``build()`` returns ``(value, nbytes, metrics)``; it runs
        without the cache lock held. Returns ``(asset, built_here)`` —
        ``built_here`` tells the caller whether *this* thread ran the
        build (its observation already contains the build's metrics via
        scope nesting) or received a cached/joined asset (and should
        merge ``asset.metrics`` itself).
        """
        while True:
            ticket: Optional[_Ticket] = None
            am_builder = False
            with self._lock:
                asset = self._entries.get(key)
                if asset is not None:
                    self._entries.move_to_end(key)
                    self._bump("hits")
                    return asset, False
                ticket = self._inflight.get(key)
                if ticket is None:
                    ticket = _Ticket()
                    self._inflight[key] = ticket
                    am_builder = True
                    self._bump("misses")
                else:
                    self._bump("singleflight_joins")

            if am_builder:
                try:
                    value, nbytes, metrics = build()
                except BaseException as exc:
                    with self._lock:
                        self._inflight.pop(key, None)
                    ticket.error = exc
                    ticket.event.set()
                    raise
                asset = self._insert(key, value, nbytes, metrics)
                ticket.asset = asset
                ticket.event.set()
                return asset, True

            ticket.event.wait()
            if ticket.error is not None:
                # The build failed; compete to become the next builder.
                continue
            with self._lock:
                # LRU-touch if the asset is still resident (it may have
                # been evicted while we were waking up — still usable).
                if ticket.asset is not None and ticket.asset.key in self._entries:
                    self._entries.move_to_end(ticket.asset.key)
                self._bump("hits")
            return ticket.asset, False

    def _insert(self, key, value, nbytes, metrics) -> CachedAsset:
        with self._lock:
            # Single-flight guarantees the key is absent here, so each
            # insert is this asset's first build. Per-key rebuild
            # history is deliberately not kept across eviction or
            # invalidation — a long-lived server with unbounded
            # distinct keys must not grow state for departed entries
            # (the monotonic CacheStats counters track totals instead).
            asset = CachedAsset(
                key=key,
                value=value,
                nbytes=int(nbytes),
                metrics=metrics,
                builds=1,
            )
            self._entries[key] = asset
            self._entries.move_to_end(key)
            self._bump("builds")
            self._evict_over_budget(spare=key)
            self._inflight.pop(key, None)
            return asset

    def put(
        self, key: object, value: Any, nbytes: int, metrics: Any = None
    ) -> CachedAsset:
        """Insert (or replace) an asset directly, bypassing single-flight.

        Used for opportunistic inserts — salvaged partials from
        cancelled builds — that no query *requested* through
        :meth:`get_or_build`. Bumps ``puts`` rather than ``builds`` so
        the ``misses == builds`` single-flight invariant stays intact.
        """
        with self._lock:
            asset = CachedAsset(
                key=key, value=value, nbytes=int(nbytes), metrics=metrics,
                builds=1,
            )
            self._entries[key] = asset
            self._entries.move_to_end(key)
            self._bump("puts")
            self._evict_over_budget(spare=key)
            return asset

    def find_stale(
        self,
        kind: str,
        targets_digest: object,
        tags: object | None = None,
        epoch: object | None = None,
    ) -> Optional[CachedAsset]:
        """Most-recently-used resident asset matching ``(kind, digest)``.

        Parameter-*insensitive* lookup for the degraded ``stale`` tier:
        any resident asset of the given kind for the same target digest
        (and, when given, the same tag set) is acceptable, regardless of
        the params under which it was built. Scans MRU-first so the
        freshest candidate wins; a match is LRU-touched and counted as
        a ``stale_hit`` (never a ``hit``). Returns ``None`` when
        nothing matches — the caller decides whether that means shed.

        ``epoch``, when given, additionally requires the key's graph
        epoch to match exactly. "Stale" here means *parameter*-stale
        (an older θ, a different seed), never *graph*-stale: an asset
        computed against a pre-edit graph must not answer a post-edit
        query, not even as a degraded tier — its members may reference
        edges that no longer exist.
        """
        with self._lock:
            for key in reversed(self._entries):
                if getattr(key, "kind", None) != kind:
                    continue
                if getattr(key, "targets_digest", None) != targets_digest:
                    continue
                if tags is not None and getattr(key, "tags", None) != tags:
                    continue
                if epoch is not None and getattr(key, "epoch", 0) != epoch:
                    continue
                self._entries.move_to_end(key)
                self._bump("stale_hits")
                return self._entries[key]
        return None

    def _evict_over_budget(self, spare: object) -> None:
        """Evict LRU entries (never ``spare``) while over ``max_bytes``."""
        total = sum(e.nbytes for e in self._entries.values())
        while total > self.max_bytes and len(self._entries) > 1:
            oldest = next(iter(self._entries))
            if oldest == spare:
                # The new entry is the oldest only when it's alone —
                # handled by the loop guard; otherwise skip it.
                self._entries.move_to_end(oldest)
                oldest = next(iter(self._entries))
                if oldest == spare:
                    break
            evicted = self._entries.pop(oldest)
            total -= evicted.nbytes
            self._bump("evictions")

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def keys_snapshot(self) -> list[object]:
        """Resident keys, LRU-first (a copy — safe to iterate and mutate).

        Used by epoch migration: the server enumerates resident assets
        after an edit batch and decides per key whether to promote
        (rekey to the new epoch), repair, or drop it.
        """
        with self._lock:
            return list(self._entries)

    def rekey(
        self,
        old_key: object,
        new_key: object,
        value: Any = None,
        nbytes: int | None = None,
    ) -> bool:
        """Move a resident entry to a new key, preserving LRU position.

        Optionally swaps the payload too (``value`` non-None, with its
        new ``nbytes``) — used when an incremental repair produced a
        new asset object for the new epoch. No counters are bumped:
        migration is bookkeeping, not service. Returns ``False`` if
        ``old_key`` is not resident or ``new_key`` already is (the
        newer entry wins; the caller drops the old one).
        """
        with self._lock:
            if old_key not in self._entries or new_key in self._entries:
                return False
            # Rebuild the OrderedDict in order, swapping the one key, so
            # the entry keeps its recency (pop+insert would make every
            # migrated asset look most-recently-used).
            moved = OrderedDict()
            for key, asset in self._entries.items():
                if key == old_key:
                    asset.key = new_key
                    if value is not None:
                        asset.value = value
                        if nbytes is not None:
                            asset.nbytes = int(nbytes)
                    moved[new_key] = asset
                else:
                    moved[key] = asset
            self._entries = moved
            return True

    def invalidate(self, key: object) -> bool:
        """Drop one entry (if resident). Returns whether it was there."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> int:
        """Drop every resident entry; returns how many were dropped."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            return n

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
