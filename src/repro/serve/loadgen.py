"""Synthetic serving traffic + capacity reports (``repro loadgen``).

Overload behavior can only be judged under load, and "load" for this
server has structure: tag popularity is heavy-tailed (a few campaign
topics dominate), target sets overlap (queries about one community
share digests, so the asset cache matters), and traffic mixes latency
classes. This module synthesizes exactly that workload, drives a
:class:`~repro.serve.CampaignServer` with it in open- or closed-loop
mode, classifies every query's terminal outcome, and sweeps offered
rates into a capacity report (``BENCH_load.json``, schema
``repro.bench.load/1``) whose headline is the **max sustainable qps**:
the highest swept rate at which interactive traffic still meets its
p95 SLO without being rejected.

Workload model
--------------
* **Tags** are drawn Zipfian (``weight ∝ 1 / rank^s``) over the graph's
  tag universe — rank 0 is the hottest topic.
* **Targets** come from a small pool of overlapping sets built around a
  shared core (communities overlap in real networks), drawn Zipfian
  too, so distinct queries repeatedly hit the same ``targets_digest``
  and exercise single-flight asset reuse.
* **Classes and ops** are drawn from configurable mixes; interactive
  queries carry a deadline derived from the SLO, which arms both
  predictive admission and cooperative cancellation.

Everything about the *workload* is deterministic in ``seed`` (the
arrival *timing* is wall-clock, necessarily). A lifecycle-event JSONL
written by ``repro serve --events-out`` can be replayed instead: the
op/class sequence is lifted from its ``query.admitted`` events and
re-fleshed with synthesized inputs.

Outcome accounting is exact and exhaustive: every issued query ends in
exactly one of ``done`` (full tier), ``degraded`` (served at a reduced
tier, tagged with its quantified error), ``rejected`` (clean structured
rejection, broken down by code), or ``errors`` — the report's rows all
satisfy ``issued == done + degraded + rejected + errors`` and
``scripts/check_bench.py`` gates exactly that.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import (
    ConfigurationError,
    QueryRejectedError,
    ReproError,
)
from repro.serve.qos import QUERY_CLASSES

__all__ = [
    "LOAD_SCHEMA",
    "LoadSpec",
    "QuerySpec",
    "RateResult",
    "capacity_report",
    "replay_ops_from_events",
    "run_rate",
    "synthesize_queries",
]

#: Schema tag for the capacity report document.
LOAD_SCHEMA = "repro.bench.load/1"


@dataclass(frozen=True)
class QuerySpec:
    """One synthetic query: the submit call, declaratively."""

    op: str
    qos_class: str
    args: Tuple[Tuple[str, Any], ...]
    deadline: Optional[float] = None

    def kwargs(self) -> Dict[str, Any]:
        return dict(self.args)


@dataclass(frozen=True)
class LoadSpec:
    """Workload shape and sweep parameters.

    Attributes
    ----------
    seed:
        Root seed; the full query sequence is a pure function of it.
    queries_per_rate:
        Queries issued at each swept rate.
    rates:
        Offered arrival rates (queries/second) to sweep, ascending.
    class_mix / op_mix:
        ``(name, weight)`` pairs; weights need not sum to 1.
    zipf_s:
        Zipf exponent for tag and target-pool popularity (1.0–1.5 is
        web-like; higher = hotter head).
    tags_per_query:
        Tags drawn (without replacement) per query.
    target_pool / target_size / target_overlap:
        Pool of candidate target sets, their size, and the fraction of
        each set shared with the pool's common core.
    seed_pool:
        Distinct RNG seeds cycled across queries — smaller pools mean
        more exact-key cache hits.
    interactive_deadline_factor:
        Interactive deadline = ``factor * slo_p95_ms`` (None disables
        per-query deadlines entirely).
    slo_p95_ms:
        The interactive p95 latency SLO the capacity verdict uses.
    open_loop:
        Open loop (arrivals on a fixed schedule, the honest way to
        measure overload) or closed loop (``concurrency`` synchronous
        clients back to back).
    concurrency:
        Closed-loop client count (ignored in open loop).
    k / r / spread_samples:
        Query shape knobs passed through to the ops.
    """

    seed: int = 0
    queries_per_rate: int = 60
    rates: Tuple[float, ...] = (4.0, 8.0, 16.0)
    class_mix: Tuple[Tuple[str, float], ...] = (
        ("interactive", 0.5), ("batch", 0.3), ("best_effort", 0.2),
    )
    op_mix: Tuple[Tuple[str, float], ...] = (
        ("find_seeds", 0.7), ("spread", 0.3),
    )
    zipf_s: float = 1.1
    tags_per_query: int = 2
    target_pool: int = 6
    target_size: int = 24
    target_overlap: float = 0.5
    seed_pool: int = 4
    interactive_deadline_factor: Optional[float] = 4.0
    slo_p95_ms: float = 500.0
    open_loop: bool = True
    concurrency: int = 8
    k: int = 2
    r: int = 2
    spread_samples: int = 50

    def __post_init__(self) -> None:
        if self.queries_per_rate <= 0:
            raise ConfigurationError(
                f"queries_per_rate must be positive, got "
                f"{self.queries_per_rate}"
            )
        if not self.rates or any(r <= 0 for r in self.rates):
            raise ConfigurationError(
                f"rates must be positive, got {self.rates}"
            )
        for name, _w in self.class_mix:
            if name not in QUERY_CLASSES:
                raise ConfigurationError(
                    f"unknown class {name!r} in class_mix"
                )
        for name, _w in self.op_mix:
            if name not in ("find_seeds", "find_tags", "joint", "spread"):
                raise ConfigurationError(f"unknown op {name!r} in op_mix")
        if not 0.0 <= self.target_overlap <= 1.0:
            raise ConfigurationError(
                f"target_overlap must be in [0, 1], got "
                f"{self.target_overlap}"
            )


def _zipf_weights(n: int, s: float) -> List[float]:
    return [1.0 / (rank + 1) ** s for rank in range(n)]


def _weighted_choice(rng: Random, pairs: Sequence[Tuple[str, float]]) -> str:
    names = [name for name, _w in pairs]
    weights = [w for _n, w in pairs]
    return rng.choices(names, weights=weights, k=1)[0]


def _build_target_pool(
    num_nodes: int, spec: LoadSpec, rng: Random
) -> List[Tuple[int, ...]]:
    """Overlapping target sets around a shared core (clamped to graph)."""
    size = min(spec.target_size, max(num_nodes, 1))
    core_size = int(size * spec.target_overlap)
    population = list(range(num_nodes))
    core = rng.sample(population, min(core_size, num_nodes))
    pool: List[Tuple[int, ...]] = []
    for _ in range(max(spec.target_pool, 1)):
        extra = [n for n in rng.sample(population, min(size, num_nodes))
                 if n not in core]
        members = (core + extra)[:size]
        pool.append(tuple(sorted(members)))
    return pool


def synthesize_queries(
    graph,
    spec: LoadSpec,
    count: Optional[int] = None,
    ops: Optional[Sequence[Tuple[str, str]]] = None,
) -> List[QuerySpec]:
    """Deterministic query sequence for ``graph`` under ``spec``.

    ``ops`` (optional) pins the ``(op, qos_class)`` sequence — used by
    event-log replay — while tags/targets/seeds are still synthesized;
    otherwise both are drawn from the configured mixes.
    """
    rng = Random(spec.seed)
    count = count if count is not None else spec.queries_per_rate
    tags = sorted(graph.tags)
    if not tags:
        raise ConfigurationError("graph has no tags to synthesize against")
    tag_weights = _zipf_weights(len(tags), spec.zipf_s)
    pool = _build_target_pool(graph.num_nodes, spec, rng)
    pool_weights = _zipf_weights(len(pool), spec.zipf_s)
    deadline = None
    if spec.interactive_deadline_factor is not None:
        deadline = spec.interactive_deadline_factor * spec.slo_p95_ms / 1000.0

    queries: List[QuerySpec] = []
    for index in range(count):
        if ops is not None:
            op, qos_class = ops[index % len(ops)]
        else:
            op = _weighted_choice(rng, spec.op_mix)
            qos_class = _weighted_choice(rng, spec.class_mix)
        targets = rng.choices(pool, weights=pool_weights, k=1)[0]
        n_tags = min(spec.tags_per_query, len(tags))
        drawn: List[str] = []
        while len(drawn) < n_tags:
            tag = rng.choices(tags, weights=tag_weights, k=1)[0]
            if tag not in drawn:
                drawn.append(tag)
        query_seed = rng.randrange(spec.seed_pool)
        query_deadline = deadline if qos_class == "interactive" else None
        if op == "find_seeds":
            args = (
                ("targets", targets), ("tags", tuple(drawn)),
                ("k", spec.k), ("engine", "trs"), ("seed", query_seed),
            )
        elif op == "find_tags":
            seeds = tuple(sorted(rng.sample(
                range(graph.num_nodes), min(spec.k, graph.num_nodes)
            )))
            args = (
                ("seeds", seeds), ("targets", targets), ("r", spec.r),
                ("seed", query_seed),
            )
        elif op == "joint":
            args = (
                ("targets", targets), ("k", spec.k), ("r", spec.r),
                ("seed", query_seed),
            )
        else:  # spread
            seeds = tuple(sorted(rng.sample(
                range(graph.num_nodes), min(spec.k, graph.num_nodes)
            )))
            args = (
                ("seeds", seeds), ("targets", targets),
                ("tags", tuple(drawn)),
                ("num_samples", spec.spread_samples), ("seed", query_seed),
            )
        queries.append(QuerySpec(
            op=op, qos_class=qos_class, args=args, deadline=query_deadline,
        ))
    return queries


def replay_ops_from_events(path) -> List[Tuple[str, str]]:
    """``(op, qos_class)`` sequence from an ``--events-out`` JSONL file.

    Reads ``query.admitted`` events (op + class are recorded there);
    unknown classes fall back to ``interactive``. Raises if the file
    holds no admitted queries — replaying nothing is a user error.
    """
    ops: List[Tuple[str, str]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line from a killed server
            if event.get("kind") != "query.admitted":
                continue
            attrs = event.get("attrs", {})
            op = attrs.get("op")
            if op not in ("find_seeds", "find_tags", "joint", "spread"):
                continue
            qos_class = attrs.get("qos_class", "interactive")
            if qos_class not in QUERY_CLASSES:
                qos_class = "interactive"
            ops.append((op, qos_class))
    if not ops:
        raise ConfigurationError(
            f"no query.admitted events found in {path!r}; nothing to replay"
        )
    return ops


# ---------------------------------------------------------------------------
# Driving the server
# ---------------------------------------------------------------------------


@dataclass
class RateResult:
    """Outcome accounting for one swept rate (one fresh server)."""

    rate: float
    issued: int = 0
    done: int = 0
    degraded: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    errors: int = 0
    latencies_ms: Dict[str, List[float]] = field(default_factory=dict)
    degraded_tiers: Dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def p95_ms(self, qos_class: str) -> Optional[float]:
        values = sorted(self.latencies_ms.get(qos_class, ()))
        if not values:
            return None
        return values[min(int(0.95 * len(values)), len(values) - 1)]

    def class_count(self, qos_class: str, outcomes: Dict[str, str]) -> int:
        return sum(1 for c in outcomes.values() if c == qos_class)

    def as_row(self) -> Dict[str, Any]:
        accounted = (
            self.done + self.degraded + self.rejected_total + self.errors
        )
        row: Dict[str, Any] = {
            "rate_qps": self.rate,
            "issued": self.issued,
            "done": self.done,
            "degraded": self.degraded,
            "rejected": dict(sorted(self.rejected.items())),
            "rejected_total": self.rejected_total,
            "errors": self.errors,
            "accounted": accounted,
            "elapsed_s": round(self.elapsed_s, 3),
            "achieved_qps": round(
                self.issued / self.elapsed_s, 3
            ) if self.elapsed_s > 0 else None,
            "degraded_tiers": dict(sorted(self.degraded_tiers.items())),
        }
        for name in QUERY_CLASSES:
            p95 = self.p95_ms(name)
            row[f"p95_ms.{name}"] = (
                round(p95, 3) if p95 is not None else None
            )
        return row


def _submit_spec(server, query: QuerySpec):
    submit = getattr(server, {
        "find_seeds": "submit_find_seeds",
        "find_tags": "submit_find_tags",
        "joint": "submit_jointly_select",
        "spread": "submit_estimate_spread",
    }[query.op])
    return submit(
        qos_class=query.qos_class, deadline=query.deadline,
        **query.kwargs(),
    )


def _classify(result: RateResult, query: QuerySpec, outcome) -> None:
    """Fold one terminal outcome into the accounting (exactly one bin)."""
    if isinstance(outcome, QueryRejectedError):
        result.rejected[outcome.code] = (
            result.rejected.get(outcome.code, 0) + 1
        )
    elif isinstance(outcome, BaseException):
        result.errors += 1
    elif outcome.tier != "full":
        result.degraded += 1
        result.degraded_tiers[outcome.tier] = (
            result.degraded_tiers.get(outcome.tier, 0) + 1
        )
    else:
        result.done += 1


def run_rate(
    server,
    queries: Sequence[QuerySpec],
    rate: float,
    open_loop: bool = True,
    concurrency: int = 8,
) -> RateResult:
    """Issue ``queries`` against ``server`` at ``rate`` qps; account all.

    Open loop: arrivals follow the fixed schedule ``i / rate``
    regardless of completions (the honest overload measurement — a
    slow server does *not* slow the offered load). Closed loop:
    ``concurrency`` synchronous clients issue back to back as fast as
    responses return (throughput-oriented; offered load adapts).

    Latency is client-observed (submit → future resolution), so it
    includes queue wait — that is what an SLO is about.
    """
    result = RateResult(rate=rate)
    outcomes_lock = threading.Lock()

    def finish(query: QuerySpec, issued_at: float, outcome) -> None:
        elapsed_ms = (time.monotonic() - issued_at) * 1000.0
        with outcomes_lock:
            _classify(result, query, outcome)
            if not isinstance(outcome, BaseException):
                result.latencies_ms.setdefault(
                    query.qos_class, []
                ).append(elapsed_ms)

    start = time.monotonic()
    if open_loop:
        pending = []
        for index, query in enumerate(queries):
            scheduled = start + index / rate
            delay = scheduled - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            issued_at = time.monotonic()
            result.issued += 1
            try:
                future = _submit_spec(server, query)
            except BaseException as exc:
                finish(query, issued_at, exc)
            else:
                pending.append((query, issued_at, future))
        for query, issued_at, future in pending:
            try:
                response = future.result()
            except BaseException as exc:
                finish(query, issued_at, exc)
            else:
                finish(query, issued_at, response)
    else:
        iterator = iter(list(queries))
        iter_lock = threading.Lock()

        def client() -> None:
            while True:
                with iter_lock:
                    query = next(iterator, None)
                    if query is None:
                        return
                    result.issued += 1
                issued_at = time.monotonic()
                try:
                    response = _submit_spec(server, query).result()
                except BaseException as exc:
                    finish(query, issued_at, exc)
                else:
                    finish(query, issued_at, response)

        threads = [
            threading.Thread(target=client, daemon=True)
            for _ in range(max(concurrency, 1))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    result.elapsed_s = time.monotonic() - start
    return result


def capacity_report(
    make_server: Callable[[], Any],
    graph,
    spec: LoadSpec,
    replay_ops: Optional[Sequence[Tuple[str, str]]] = None,
    warm_queries: int = 4,
) -> Dict[str, Any]:
    """Sweep ``spec.rates`` and produce the ``BENCH_load.json`` document.

    Each rate gets a **fresh server** from ``make_server`` (clean
    queues, cache, predictor — sweep points must not contaminate each
    other) plus a short synchronous warm pass (first ``warm_queries``
    distinct queries) so the latency predictor has samples and the
    asset cache isn't pathologically cold — steady-state behavior is
    what capacity means.

    The verdict per rate: interactive p95 within ``slo_p95_ms`` *and*
    at most 5% of interactive queries rejected. ``max_sustainable_qps``
    is the highest swept rate passing both.
    """
    queries = synthesize_queries(
        graph, spec, count=spec.queries_per_rate, ops=replay_ops
    )
    interactive_issued = sum(
        1 for q in queries if q.qos_class == "interactive"
    )
    rows: List[Dict[str, Any]] = []
    max_ok: Optional[float] = None
    for rate in spec.rates:
        server = make_server()
        try:
            for query in queries[:warm_queries]:
                try:
                    _submit_spec(server, query).result()
                except ReproError:
                    pass  # a warm failure is the measured run's problem
            result = run_rate(
                server, queries, rate,
                open_loop=spec.open_loop, concurrency=spec.concurrency,
            )
        finally:
            server.close()
        row = result.as_row()
        interactive_p95 = row["p95_ms.interactive"]
        # Per-code rejection counts don't record class, but interactive
        # *completions* are known exactly — everything else issued in
        # that class was rejected or errored, and both count against it.
        interactive_done = len(result.latencies_ms.get("interactive", ()))
        interactive_rejected = max(interactive_issued - interactive_done, 0)
        reject_frac = (
            interactive_rejected / interactive_issued
            if interactive_issued else 0.0
        )
        slo_ok = (
            (interactive_p95 is None or interactive_p95 <= spec.slo_p95_ms)
            and reject_frac <= 0.05
        )
        row["interactive_rejected"] = interactive_rejected
        row["interactive_reject_frac"] = round(reject_frac, 4)
        row["slo_ok"] = bool(slo_ok)
        rows.append(row)
        if slo_ok:
            max_ok = rate if max_ok is None else max(max_ok, rate)
    return {
        "schema": LOAD_SCHEMA,
        "seed": spec.seed,
        "slo_p95_ms": spec.slo_p95_ms,
        "open_loop": spec.open_loop,
        "queries_per_rate": spec.queries_per_rate,
        "replayed": replay_ops is not None,
        "max_sustainable_qps": max_ok,
        "rows": rows,
    }
