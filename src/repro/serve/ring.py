"""Consistent-hash ring for asset placement (``repro.serve.ring``).

The sharded campaign service routes every query to one worker process,
and sketch reuse only pays off if a repeated query lands on the worker
that already holds its asset. A modulo hash would remap nearly every
key when the worker count changes; the classic consistent-hash ring
(Karger et al.) remaps only the keys that fall inside the arcs owned by
the added/removed member — about ``1/N`` of the population.

Implementation: each member owns ``replicas`` virtual points placed by
``blake2b(member + ":" + replica)`` on a 64-bit circle. A key hashes to
a point on the same circle and is owned by the first member point at or
clockwise-after it (wrapping). Determinism is total: placement depends
only on the member names, the replica count, and the key bytes — two
routers built with the same members agree on every key, which is what
lets a respawned router keep serving a warm worker fleet.

``replicas`` trades balance for memory/lookup cost: with ``V`` virtual
points per member the max/mean load ratio concentrates around
``1 + O(sqrt(log N / V))``; the default 128 keeps worst-case imbalance
within a few percent for small fleets while the ring stays a few KB.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Tuple

from repro.exceptions import ConfigurationError

__all__ = ["HashRing"]

#: Virtual points per member (see module docstring for the trade-off).
DEFAULT_REPLICAS = 128


def _point(data: str) -> int:
    """64-bit position of ``data`` on the hash circle."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Deterministic consistent-hash ring over named members.

    Not thread-safe: the router serializes membership changes and
    lookups under its own lock (lookups are a single ``bisect``).
    """

    def __init__(
        self,
        members: Iterable[str] = (),
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {replicas}"
            )
        self._replicas = int(replicas)
        self._members: set[str] = set()
        #: Sorted (point, member) pairs — the ring itself.
        self._points: List[Tuple[int, str]] = []
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def members(self) -> frozenset[str]:
        return frozenset(self._members)

    @property
    def replicas(self) -> int:
        return self._replicas

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def add(self, member: str) -> None:
        """Add ``member``; a no-op if it is already on the ring."""
        member = str(member)
        if member in self._members:
            return
        self._members.add(member)
        for replica in range(self._replicas):
            point = _point(f"{member}:{replica}")
            bisect.insort(self._points, (point, member))

    def remove(self, member: str) -> None:
        """Remove ``member``; a no-op if it is not on the ring."""
        member = str(member)
        if member not in self._members:
            return
        self._members.discard(member)
        self._points = [
            (point, name) for point, name in self._points if name != member
        ]

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(self, key: str) -> str:
        """Owning member for ``key`` (first point clockwise of its hash).

        Raises :class:`ConfigurationError` on an empty ring.
        """
        if not self._points:
            raise ConfigurationError("cannot place a key on an empty ring")
        point = _point(str(key))
        index = bisect.bisect_right(self._points, (point, "￿"))
        if index == len(self._points):  # wrap past the top of the circle
            index = 0
        return self._points[index][1]

    def preference(self, key: str, count: int = 2) -> Tuple[str, ...]:
        """First ``count`` *distinct* members clockwise of ``key``.

        ``preference(key)[0] == place(key)``; later entries are the
        failover order a router uses when the owner is unavailable.
        """
        if not self._points:
            raise ConfigurationError("cannot place a key on an empty ring")
        point = _point(str(key))
        start = bisect.bisect_right(self._points, (point, "￿"))
        out: List[str] = []
        for offset in range(len(self._points)):
            member = self._points[(start + offset) % len(self._points)][1]
            if member not in out:
                out.append(member)
                if len(out) >= count:
                    break
        return tuple(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashRing(members={sorted(self._members)!r}, "
            f"replicas={self._replicas})"
        )
