"""repro — joint seed & tag selection for targeted influence maximization.

A from-scratch Python reproduction of *"Finding Seeds and Relevant Tags
Jointly: For Targeted Influence Maximization in Social Networks"*
(Xiangyu Ke, Arijit Khan, Gao Cong; SIGMOD 2018).

Quickstart
----------
>>> from repro import datasets, JointQuery, jointly_select
>>> data = datasets.yelp(scale=0.2)
>>> targets = datasets.community_targets(data, "vegas", size=50, rng=0)
>>> result = jointly_select(
...     data.graph, JointQuery(targets, k=5, r=5), rng=0
... )  # doctest: +SKIP
>>> result.seeds, result.tags  # doctest: +SKIP

Package map
-----------
``repro.graphs``
    The tagged uncertain graph substrate.
``repro.diffusion``
    IC cascades, Monte-Carlo and exact spread estimation.
``repro.sketch``
    Targeted reverse sketching (TRS) with the Theorem 5 guarantee.
``repro.index``
    Per-tag possible-world indexing: I-TRS, L-TRS, LL-TRS.
``repro.engine``
    Vectorized frontier-batched sampling substrate with optional
    multi-process fan-out (``SamplingEngine``, ``RRCollection``).
``repro.seeds`` / ``repro.tags``
    Seed finding and tag finding (batch-paths vs individual-paths).
``repro.core``
    The joint iterative framework (Algorithm 2) and the baseline greedy.
``repro.datasets``
    Synthetic analogues of the paper's four evaluation networks.
``repro.serve``
    Concurrent campaign serving: a thread-safe ``CampaignServer``
    answering many queries over one graph with single-flight,
    byte-accounted cross-query asset reuse (RR sketches, warm results,
    frozen indexes) — served answers stay bit-identical to direct
    library calls.
"""

from repro import analysis, datasets
from repro.core.baseline import BaselineConfig, baseline_greedy
from repro.core.joint import JointConfig, jointly_select
from repro.core.problem import HistoryEntry, JointQuery, JointResult
from repro.core.session import CampaignSession
from repro.diffusion.monte_carlo import estimate_spread, estimate_spread_fraction
from repro.engine.parallel import SamplingEngine
from repro.engine.rr_storage import RRCollection
from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineRejectedError,
    EstimationError,
    GraphConstructionError,
    InvalidQueryError,
    QueryRejectedError,
    QueryShedError,
    ReproError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.graphs.builders import TagGraphBuilder, graph_from_quadruples
from repro.graphs.io import load_tag_graph, save_tag_graph
from repro.graphs.tag_graph import TagGraph
from repro.seeds.api import SeedSelection, find_seeds
from repro.serve import CampaignServer, ServeResponse
from repro.sketch.theta import SketchConfig
from repro.tags.api import TagSelection, find_tags
from repro.tags.paths import TagSelectionConfig

__version__ = "1.0.0"

__all__ = [
    "BaselineConfig",
    "CampaignServer",
    "CampaignSession",
    "CircuitOpenError",
    "ConfigurationError",
    "DeadlineRejectedError",
    "EstimationError",
    "GraphConstructionError",
    "HistoryEntry",
    "InvalidQueryError",
    "JointConfig",
    "JointQuery",
    "JointResult",
    "QueryRejectedError",
    "QueryShedError",
    "RRCollection",
    "ReproError",
    "SamplingEngine",
    "SeedSelection",
    "ServeResponse",
    "ServerClosedError",
    "ServerOverloadedError",
    "SketchConfig",
    "TagGraph",
    "TagGraphBuilder",
    "TagSelection",
    "TagSelectionConfig",
    "analysis",
    "baseline_greedy",
    "datasets",
    "estimate_spread",
    "estimate_spread_fraction",
    "find_seeds",
    "find_tags",
    "graph_from_quadruples",
    "jointly_select",
    "load_tag_graph",
    "save_tag_graph",
    "__version__",
]
