"""Exception hierarchy for the ``repro`` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphConstructionError(ReproError):
    """Raised when a :class:`~repro.graphs.TagGraph` cannot be built.

    Typical causes: dangling node ids, probabilities outside ``(0, 1]``,
    duplicate ``(edge, tag)`` assignments, or mismatched array lengths.
    """


class InvalidQueryError(ReproError):
    """Raised when a query (seed/tag/joint) is malformed.

    Examples: empty target set, budget larger than the universe it draws
    from, unknown tag names, seeds outside the node range.
    """


class ConfigurationError(ReproError):
    """Raised when an algorithm configuration value is out of range."""


class EstimationError(ReproError):
    """Raised when a spread/θ estimation cannot be carried out.

    For example, exact possible-world enumeration refuses graphs with too
    many active edges, and the OPT estimator requires a non-empty target
    set reachable by at least one edge.
    """


class IndexError_(ReproError):
    """Raised on misuse of possible-world index structures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class BudgetExceededError(ReproError):
    """Raised when a run exceeds its :class:`~repro.engine.RunBudget`.

    Unlike a crash, the run's work so far is not lost: the ``partial``
    attribute carries whatever partial result the raising layer could
    assemble (a prefix :class:`~repro.engine.RRCollection`, a partial
    ``TRSResult``, …) and ``reason`` names the limit that tripped
    (``"wall_seconds"``, ``"max_samples"`` or ``"max_rr_members"``).
    """

    def __init__(self, reason: str, partial: object = None) -> None:
        super().__init__(f"run budget exceeded: {reason}")
        self.reason = reason
        self.partial = partial


class ShardFailedError(ReproError):
    """Raised when a sampling shard fails permanently.

    Emitted by the fault-tolerant runtime after the
    :class:`~repro.engine.RetryPolicy` is exhausted (or immediately for
    errors classified permanent). Carries the shard index, the number of
    attempts made, and the last underlying exception.
    """

    def __init__(
        self, shard_index: int, attempts: int, last_error: BaseException
    ) -> None:
        super().__init__(
            f"shard {shard_index} failed permanently after {attempts} "
            f"attempt(s): {last_error!r}"
        )
        self.shard_index = shard_index
        self.attempts = attempts
        self.last_error = last_error


class QueryRejectedError(ReproError):
    """Base class for *clean* admission-control rejections.

    Every rejection the serving layer issues — overload, unmeetable
    deadline, load shed, open circuit breaker — derives from this class
    and carries a machine-readable triple the protocol layer serializes
    verbatim:

    ``code``
        Short stable identifier (``"overloaded"``, ``"deadline"``,
        ``"shed"``, ``"breaker_open"``).
    ``retry_after_ms``
        The server's estimate of when a retry could be admitted
        (``None`` when it has no basis for one).
    ``qos_class``
        The QoS class of the rejected query.

    Rejections are side-effect free: nothing was partially executed and
    no shared state was touched, so retrying after ``retry_after_ms``
    is always safe.
    """

    code = "rejected"

    def __init__(
        self,
        message: str,
        retry_after_ms: float | None = None,
        qos_class: str = "interactive",
    ) -> None:
        super().__init__(message)
        self.retry_after_ms = (
            None if retry_after_ms is None else float(retry_after_ms)
        )
        self.qos_class = qos_class


class ServerOverloadedError(QueryRejectedError):
    """Raised when a :class:`~repro.serve.CampaignServer` rejects a query.

    The server's admission control is a bounded queue: when every worker
    is busy and the queue is at capacity, new queries are rejected
    *cleanly* — nothing is partially executed, no shared state is
    touched — so callers can retry with backoff. Carries the queue
    ``capacity`` that was exceeded.
    """

    code = "overloaded"

    def __init__(
        self,
        capacity: int,
        retry_after_ms: float | None = None,
        qos_class: str = "interactive",
    ) -> None:
        super().__init__(
            f"server overloaded: bounded queue at capacity {capacity}",
            retry_after_ms=retry_after_ms,
            qos_class=qos_class,
        )
        self.capacity = capacity


class DeadlineRejectedError(QueryRejectedError):
    """Raised when admission predicts a query cannot meet its deadline.

    The server predicts queue wait plus execution time from its rolling
    per-op p95 latencies; when the predicted completion blows the
    query's deadline the query is rejected *up front* (cheaper for
    everyone than admitting work that is already doomed). Also raised
    at dequeue time when a queued query's deadline expired while it
    waited.
    """

    code = "deadline"

    def __init__(
        self,
        deadline_s: float,
        predicted_ms: float,
        retry_after_ms: float | None = None,
        qos_class: str = "interactive",
        phase: str = "admission",
    ) -> None:
        super().__init__(
            f"deadline {deadline_s * 1000.0:.0f}ms unmeetable at {phase}: "
            f"predicted completion {predicted_ms:.0f}ms",
            retry_after_ms=retry_after_ms,
            qos_class=qos_class,
        )
        self.deadline_s = deadline_s
        self.predicted_ms = predicted_ms
        self.phase = phase


class QueryShedError(QueryRejectedError):
    """Raised when load shedding drops a query under pressure.

    Only issued after the graded degradation ladder is exhausted: the
    query's class was downgrade-eligible, no reduced-θ tier applied and
    no (slightly stale) cached asset could answer it.
    """

    code = "shed"

    def __init__(
        self,
        utilization: float,
        retry_after_ms: float | None = None,
        qos_class: str = "best_effort",
    ) -> None:
        super().__init__(
            f"query shed: server at {utilization:.0%} utilization and no "
            "degraded answer available",
            retry_after_ms=retry_after_ms,
            qos_class=qos_class,
        )
        self.utilization = utilization


class CircuitOpenError(QueryRejectedError):
    """Raised when an asset kind's circuit breaker refuses a build.

    After ``failure_threshold`` consecutive build failures the breaker
    opens and fails fast for ``reset_timeout`` seconds (then half-opens
    to probe). Resident cached assets are still served while a breaker
    is open — only fresh builds are refused.
    """

    code = "breaker_open"

    def __init__(
        self,
        kind: str,
        retry_after_ms: float | None = None,
        qos_class: str = "interactive",
    ) -> None:
        super().__init__(
            f"circuit breaker open for asset kind {kind!r}",
            retry_after_ms=retry_after_ms,
            qos_class=qos_class,
        )
        self.kind = kind


class ServerClosedError(ReproError):
    """Raised when a query is submitted to a closed campaign server."""


class WorkerDiedError(ReproError):
    """Raised when a shard worker process died and could not be replaced.

    The shard router retries queries interrupted by a worker death on
    the respawned worker transparently; this error surfaces only when
    the respawn budget is exhausted (or the service is shutting down),
    so seeing it means the fleet is genuinely degraded, not that one
    process blinked.
    """


class CheckpointError(ReproError):
    """Raised when a checkpoint cannot be written or restored.

    Signature mismatches on load are *not* errors (the stale checkpoint
    is ignored and recomputed); this covers corrupt files and unusable
    checkpoint directories.
    """
