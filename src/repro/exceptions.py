"""Exception hierarchy for the ``repro`` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphConstructionError(ReproError):
    """Raised when a :class:`~repro.graphs.TagGraph` cannot be built.

    Typical causes: dangling node ids, probabilities outside ``(0, 1]``,
    duplicate ``(edge, tag)`` assignments, or mismatched array lengths.
    """


class InvalidQueryError(ReproError):
    """Raised when a query (seed/tag/joint) is malformed.

    Examples: empty target set, budget larger than the universe it draws
    from, unknown tag names, seeds outside the node range.
    """


class ConfigurationError(ReproError):
    """Raised when an algorithm configuration value is out of range."""


class EstimationError(ReproError):
    """Raised when a spread/θ estimation cannot be carried out.

    For example, exact possible-world enumeration refuses graphs with too
    many active edges, and the OPT estimator requires a non-empty target
    set reachable by at least one edge.
    """


class IndexError_(ReproError):
    """Raised on misuse of possible-world index structures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """
