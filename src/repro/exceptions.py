"""Exception hierarchy for the ``repro`` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphConstructionError(ReproError):
    """Raised when a :class:`~repro.graphs.TagGraph` cannot be built.

    Typical causes: dangling node ids, probabilities outside ``(0, 1]``,
    duplicate ``(edge, tag)`` assignments, or mismatched array lengths.
    """


class InvalidQueryError(ReproError):
    """Raised when a query (seed/tag/joint) is malformed.

    Examples: empty target set, budget larger than the universe it draws
    from, unknown tag names, seeds outside the node range.
    """


class ConfigurationError(ReproError):
    """Raised when an algorithm configuration value is out of range."""


class EstimationError(ReproError):
    """Raised when a spread/θ estimation cannot be carried out.

    For example, exact possible-world enumeration refuses graphs with too
    many active edges, and the OPT estimator requires a non-empty target
    set reachable by at least one edge.
    """


class IndexError_(ReproError):
    """Raised on misuse of possible-world index structures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class BudgetExceededError(ReproError):
    """Raised when a run exceeds its :class:`~repro.engine.RunBudget`.

    Unlike a crash, the run's work so far is not lost: the ``partial``
    attribute carries whatever partial result the raising layer could
    assemble (a prefix :class:`~repro.engine.RRCollection`, a partial
    ``TRSResult``, …) and ``reason`` names the limit that tripped
    (``"wall_seconds"``, ``"max_samples"`` or ``"max_rr_members"``).
    """

    def __init__(self, reason: str, partial: object = None) -> None:
        super().__init__(f"run budget exceeded: {reason}")
        self.reason = reason
        self.partial = partial


class ShardFailedError(ReproError):
    """Raised when a sampling shard fails permanently.

    Emitted by the fault-tolerant runtime after the
    :class:`~repro.engine.RetryPolicy` is exhausted (or immediately for
    errors classified permanent). Carries the shard index, the number of
    attempts made, and the last underlying exception.
    """

    def __init__(
        self, shard_index: int, attempts: int, last_error: BaseException
    ) -> None:
        super().__init__(
            f"shard {shard_index} failed permanently after {attempts} "
            f"attempt(s): {last_error!r}"
        )
        self.shard_index = shard_index
        self.attempts = attempts
        self.last_error = last_error


class ServerOverloadedError(ReproError):
    """Raised when a :class:`~repro.serve.CampaignServer` rejects a query.

    The server's admission control is a bounded queue: when every worker
    is busy and the queue is at capacity, new queries are rejected
    *cleanly* — nothing is partially executed, no shared state is
    touched — so callers can retry with backoff. Carries the queue
    ``capacity`` that was exceeded.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(
            f"server overloaded: bounded queue at capacity {capacity}"
        )
        self.capacity = capacity


class ServerClosedError(ReproError):
    """Raised when a query is submitted to a closed campaign server."""


class CheckpointError(ReproError):
    """Raised when a checkpoint cannot be written or restored.

    Signature mismatches on load are *not* errors (the stale checkpoint
    is ignored and recomputed); this covers corrupt files and unusable
    checkpoint directories.
    """
