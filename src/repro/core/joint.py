"""Algorithm 2 — the alternating iterative framework.

Starting from an initial seed/tag pair, each round (i) re-optimizes the
seeds for the current tags and (ii) re-optimizes the tags for the new
seeds, stopping when the targeted spread of two successive rounds is
within tolerance (a fixed point, in the sense of Theorem 7). With exact
sub-solvers the spread is monotonically non-decreasing; the heuristic
sub-solvers can jitter, so the framework also remembers the
best-spread snapshot and returns it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.core.initialization import (
    eliminate_low_frequency_tags,
    frequency_tags,
    ims_seeds,
    random_seeds,
    random_tags,
)
from repro.core.problem import HistoryEntry, JointQuery, JointResult
from repro.diffusion.monte_carlo import estimate_spread
from repro.exceptions import BudgetExceededError, ConfigurationError
from repro.graphs.tag_graph import TagGraph
from repro.index.itrs import make_lltrs_manager, make_ltrs_manager
from repro.seeds.api import ENGINES, find_seeds
from repro.sketch.theta import SketchConfig
from repro.tags.api import METHODS, find_tags
from repro.tags.paths import TagSelectionConfig
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.parallel import SamplingEngine
    from repro.engine.runtime import RunBudget

SEED_INITS = ("random", "ims")
TAG_INITS = ("random", "frequency")


@dataclass(frozen=True)
class JointConfig:
    """Knobs for the iterative framework.

    Attributes
    ----------
    max_rounds:
        Upper bound on full (seed + tag) rounds.
    convergence_tol:
        Relative spread improvement below which the run is converged
        ("similar influence spread in two successive rounds").
    seed_engine:
        Engine for the seed step (see :data:`repro.seeds.api.ENGINES`);
        the paper's full system uses ``"lltrs"``.
    tag_method:
        ``"batch"`` (paper) or ``"individual"`` (baseline).
    seed_init, tag_init:
        Initial-condition choices: RS/IMS and RT/FT respectively. The
        paper's recommended combination is RS + FT — the default here.
    sketch:
        Reverse-sketching knobs shared by seed engines.
    tag_config:
        Path-enumeration / tag-selection knobs.
    eval_samples:
        MC samples for the per-half-iteration history spreads.
    eliminate_fraction:
        When below 1.0, the tag search space is first reduced to this
        fraction by frequency (Section 5.3's elimination); 1.0 disables.
    pad_tags:
        When the tag step returns fewer than ``r`` useful tags, pad the
        set with the highest-frequency unused tags so the budget is
        always spent.
    """

    max_rounds: int = 6
    convergence_tol: float = 0.01
    seed_engine: str = "lltrs"
    tag_method: str = "batch"
    seed_init: str = "random"
    tag_init: str = "frequency"
    sketch: SketchConfig = field(default_factory=SketchConfig)
    tag_config: TagSelectionConfig = field(default_factory=TagSelectionConfig)
    eval_samples: int = 200
    eliminate_fraction: float = 1.0
    pad_tags: bool = True

    def __post_init__(self) -> None:
        if self.max_rounds <= 0:
            raise ConfigurationError("max_rounds must be positive")
        if self.convergence_tol < 0.0:
            raise ConfigurationError("convergence_tol must be >= 0")
        if self.seed_engine not in ENGINES:
            raise ConfigurationError(
                f"unknown seed_engine {self.seed_engine!r}"
            )
        if self.tag_method not in METHODS:
            raise ConfigurationError(f"unknown tag_method {self.tag_method!r}")
        if self.seed_init not in SEED_INITS:
            raise ConfigurationError(f"unknown seed_init {self.seed_init!r}")
        if self.tag_init not in TAG_INITS:
            raise ConfigurationError(f"unknown tag_init {self.tag_init!r}")
        if self.eval_samples <= 0:
            raise ConfigurationError("eval_samples must be positive")
        if not (0.0 < self.eliminate_fraction <= 1.0):
            raise ConfigurationError(
                "eliminate_fraction must lie in (0, 1]"
            )


def _pad_tags(
    tags: tuple[str, ...],
    graph: TagGraph,
    targets: tuple[int, ...],
    r: int,
    universe: tuple[str, ...],
) -> tuple[str, ...]:
    """Top up a short tag set with the best unused frequency-ranked tags."""
    if len(tags) >= r:
        return tuple(sorted(tags[:r]))
    unused = [t for t in universe if t not in tags]
    if not unused:
        return tuple(sorted(tags))
    extra = frequency_tags(
        graph, targets, min(r - len(tags), len(unused)), universe=unused
    )
    return tuple(sorted(set(tags) | set(extra)))


def jointly_select(
    graph: TagGraph,
    query: JointQuery,
    config: JointConfig = JointConfig(),
    rng: np.random.Generator | int | None = None,
    sampler: "SamplingEngine | None" = None,
    budget: "RunBudget | None" = None,
) -> JointResult:
    """Jointly find the top-``k`` seeds and top-``r`` tags (Eq. 6).

    Returns the best-spread snapshot over the run together with the
    full half-iteration history (Table 6's trajectory).

    Parameters
    ----------
    sampler:
        Optional :class:`~repro.engine.SamplingEngine`; the seed steps
        and the per-half-iteration spread measurements then run on the
        fault-tolerant sampling substrate (with whatever retry policy,
        fault plan, and checkpointing the engine was built with).
    budget:
        Optional :class:`~repro.engine.RunBudget` spanning the whole
        run. A tripped limit raises
        :class:`~repro.exceptions.BudgetExceededError` whose ``partial``
        is a :class:`JointResult` with the best snapshot reached so far.
    """
    rng = ensure_rng(rng)
    query.validate(graph)
    targets = query.targets

    universe = graph.tags
    if config.eliminate_fraction < 1.0:
        universe = eliminate_low_frequency_tags(
            graph, targets, keep_fraction=config.eliminate_fraction,
            min_keep=query.r,
        )

    timer = Timer()
    history: list[HistoryEntry] = []
    best: HistoryEntry | None = None
    rounds = 0
    converged = False
    try:
        with timer, obs.span(
            "joint", k=query.k, r=query.r, num_targets=len(targets)
        ) as joint_span:
            # --- initial condition ---------------------------------------
            with obs.span(
                "joint.init",
                seed_init=config.seed_init,
                tag_init=config.tag_init,
            ):
                if config.seed_init == "ims":
                    seeds = ims_seeds(
                        graph, targets, query.k, config.sketch, rng
                    )
                else:
                    seeds = random_seeds(graph, query.k, rng)
                if config.tag_init == "frequency":
                    tags = frequency_tags(
                        graph, targets, query.r, universe=universe
                    )
                else:
                    tags = random_tags(
                        graph, query.r, universe=universe, rng=rng
                    )

            def measure(s: tuple[int, ...], c: tuple[str, ...]) -> float:
                if not c:
                    return 0.0
                return estimate_spread(
                    graph, s, targets, c,
                    num_samples=config.eval_samples, rng=rng,
                    engine=sampler, budget=budget,
                )

            spread = measure(seeds, tags)
            history.append(HistoryEntry(0.0, seeds, tags, spread))
            best = history[0]

            # Index managers persist across rounds — this is where
            # L-TRS's lazy reuse actually saves work.
            manager = None
            if config.seed_engine == "lltrs":
                manager = make_lltrs_manager(graph, targets, config.sketch)
            elif config.seed_engine in ("ltrs", "itrs"):
                manager = make_ltrs_manager(graph)

            prev_round_spread = spread
            for round_no in range(1, config.max_rounds + 1):
                rounds = round_no
                obs.count("joint.rounds")
                with obs.span("joint.round", round=round_no) as round_span:
                    with obs.span(
                        "joint.seed_step", engine=config.seed_engine
                    ):
                        selection = find_seeds(
                            graph, targets, tags, query.k,
                            engine=config.seed_engine, config=config.sketch,
                            manager=manager, rng=rng, sampler=sampler,
                            budget=budget,
                        )
                    seeds = tuple(sorted(selection.seeds))
                    spread = measure(seeds, tags)
                    history.append(
                        HistoryEntry(round_no - 0.5, seeds, tags, spread)
                    )
                    if spread > best.spread:
                        best = history[-1]

                    with obs.span(
                        "joint.tag_step", method=config.tag_method
                    ):
                        tag_sel = find_tags(
                            graph, seeds, targets, query.r,
                            method=config.tag_method,
                            config=config.tag_config,
                            rng=rng,
                        )
                    tags = tag_sel.tags
                    if config.pad_tags:
                        tags = _pad_tags(
                            tags, graph, targets, query.r, universe
                        )
                    spread = measure(seeds, tags)
                    history.append(
                        HistoryEntry(float(round_no), seeds, tags, spread)
                    )
                    if spread > best.spread:
                        best = history[-1]
                    round_span.set(spread=spread)

                improvement = spread - prev_round_spread
                threshold = config.convergence_tol * max(
                    prev_round_spread, 1.0
                )
                if improvement <= threshold:
                    converged = True
                    break
                prev_round_spread = spread
            obs.gauge("joint.best_spread", best.spread)
            joint_span.set(rounds=rounds, converged=converged)
    except BudgetExceededError as exc:
        exc.partial = _partial_joint_result(
            best, history, rounds, timer.elapsed, sampler
        )
        raise

    return JointResult(
        seeds=best.seeds,
        tags=best.tags,
        spread=best.spread,
        history=tuple(history),
        rounds=rounds,
        converged=converged,
        elapsed_seconds=timer.elapsed,
        telemetry=(
            sampler.telemetry.as_dict() if sampler is not None else None
        ),
        report=obs.snapshot_report(),
    )


def _partial_joint_result(
    best: HistoryEntry | None,
    history: list[HistoryEntry],
    rounds: int,
    elapsed: float,
    sampler: "SamplingEngine | None",
) -> JointResult:
    """Best-effort :class:`JointResult` when the budget stops a run."""
    if best is None:
        seeds: tuple[int, ...] = ()
        tags: tuple[str, ...] = ()
        spread = 0.0
    else:
        seeds, tags, spread = best.seeds, best.tags, best.spread
    return JointResult(
        seeds=seeds,
        tags=tags,
        spread=spread,
        history=tuple(history),
        rounds=rounds,
        converged=False,
        elapsed_seconds=elapsed,
        telemetry=(
            sampler.telemetry.as_dict() if sampler is not None else None
        ),
    )
