"""CampaignSession — repeated campaigns over one graph with shared indexes.

The lazy-index story (L-TRS, Lemma 3) pays off when *many* queries hit
the same graph: tags indexed for one campaign are reused by the next.
This session object packages that pattern: it owns one long-lived
index manager per scope (a global one for ``ltrs``/``itrs``, one per
target set for ``lltrs``), a single RNG stream, and the configuration,
so callers just issue queries.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import obs
from repro.core.joint import JointConfig, jointly_select
from repro.core.problem import JointQuery, JointResult
from repro.diffusion.monte_carlo import estimate_spread
from repro.engine.parallel import SamplingEngine
from repro.engine.runtime import RunBudget
from repro.graphs.tag_graph import TagGraph
from repro.index.itrs import make_lltrs_manager, make_ltrs_manager
from repro.index.lazy import IndexManager
from repro.seeds.api import SeedSelection, find_seeds
from repro.tags.api import TagSelection, find_tags
from repro.utils.rng import ensure_rng


class CampaignSession:
    """A stateful façade over the library for one graph.

    Parameters
    ----------
    graph:
        The tagged uncertain graph all queries run against.
    config:
        Shared :class:`JointConfig`; its ``seed_engine`` decides how
        index managers are scoped.
    rng:
        One seed/generator for the whole session — successive queries
        consume one stream, so a session is replayable end to end.
    sampler:
        Optional :class:`~repro.engine.SamplingEngine` shared by every
        query of the session: seed selections sample RR sets and spread
        checks run cascades through it (frontier-batched, and sharded
        across its worker pool when ``workers > 1``). The determinism
        contract carries over — a session with a fixed seed replays
        identically for any worker count. A sampler built with a
        :class:`~repro.engine.RetryPolicy`, :class:`FaultPlan`, or
        :class:`~repro.engine.CheckpointManager` makes every session
        query fault tolerant (and, with checkpoints, resumable).
    """

    def __init__(
        self,
        graph: TagGraph,
        config: JointConfig = JointConfig(),
        rng: np.random.Generator | int | None = None,
        sampler: "SamplingEngine | None" = None,
    ) -> None:
        self._graph = graph
        self._config = config
        self._rng = ensure_rng(rng)
        self._sampler = sampler
        self._shared_manager: IndexManager | None = None
        self._local_managers: dict[tuple[int, ...], IndexManager] = {}
        self._server = None
        self._base_seed = 0
        self._query_index = 0
        self.queries_run = 0

    @classmethod
    def connect(cls, server, seed: int = 0) -> "CampaignSession":
        """A session whose queries run on a :class:`~repro.serve.CampaignServer`.

        The connected session keeps the exact library-facing API (its
        methods still return :class:`SeedSelection` / ``TagSelection`` /
        ``JointResult`` / ``float``) but routes every query through the
        server, so it transparently benefits from the server's worker
        pool, asset cache, and admission control — and transparently
        shares those with every other connected session.

        Determinism: the ``i``-th query of a session connected with
        ``seed`` always runs with the per-query seed derived from
        ``SeedSequence([seed, i])``, independent of what other sessions
        do concurrently. Two sessions connected with the same seed that
        issue the same query sequence get bit-identical answers (and
        the second one's are likely cache hits).
        """
        session = cls(server.graph, config=server.config)
        session._server = server
        session._base_seed = int(seed)
        return session

    def _next_seed(self) -> int:
        """Deterministic per-query seed for the connected stream."""
        seq = np.random.SeedSequence([self._base_seed, self._query_index])
        self._query_index += 1
        return int(seq.generate_state(1)[0])

    @property
    def server(self):
        """The connected :class:`~repro.serve.CampaignServer`, or ``None``."""
        return self._server

    @property
    def graph(self) -> TagGraph:
        """The session's graph."""
        return self._graph

    def _manager_for(self, targets: Sequence[int]) -> IndexManager | None:
        engine = self._config.seed_engine
        if engine in ("ltrs", "itrs"):
            if self._shared_manager is None:
                self._shared_manager = make_ltrs_manager(self._graph)
            return self._shared_manager
        if engine == "lltrs":
            key = tuple(sorted({int(t) for t in targets}))
            manager = self._local_managers.get(key)
            if manager is None:
                manager = make_lltrs_manager(
                    self._graph, key, self._config.sketch
                )
                self._local_managers[key] = manager
            return manager
        return None

    def seeds(
        self,
        targets: Sequence[int],
        tags: Sequence[str],
        k: int,
        budget: RunBudget | None = None,
    ) -> SeedSelection:
        """Top-``k`` seeds for fixed ``tags``, reusing session indexes."""
        self.queries_run += 1
        if self._server is not None:
            return self._server.find_seeds(
                targets, tags, k,
                engine=self._config.seed_engine,
                seed=self._next_seed(),
                deadline=budget.wall_seconds if budget else None,
                max_samples=budget.max_samples if budget else None,
                max_rr_members=budget.max_rr_members if budget else None,
            ).value
        return find_seeds(
            self._graph, targets, tags, k,
            engine=self._config.seed_engine,
            config=self._config.sketch,
            manager=self._manager_for(targets),
            rng=self._rng,
            sampler=self._sampler,
            budget=budget,
        )

    def tags(
        self, seeds: Sequence[int], targets: Sequence[int], r: int
    ) -> TagSelection:
        """Top-``r`` tags for fixed ``seeds``."""
        self.queries_run += 1
        if self._server is not None:
            return self._server.find_tags(
                seeds, targets, r,
                method=self._config.tag_method,
                seed=self._next_seed(),
            ).value
        return find_tags(
            self._graph, seeds, targets, r,
            method=self._config.tag_method,
            config=self._config.tag_config,
            rng=self._rng,
        )

    def joint(
        self,
        targets: Sequence[int],
        k: int,
        r: int,
        budget: RunBudget | None = None,
    ) -> JointResult:
        """Full Algorithm 2 for one target set.

        Runs on the session's sampler when one was given, so a sampler
        built with a checkpoint manager makes the whole joint run
        resumable: replaying the same session (same graph, seed, and
        query sequence) with ``resume=True`` splices the checkpointed
        shard prefixes back in and provably yields the same seeds.
        """
        self.queries_run += 1
        if self._server is not None:
            return self._server.jointly_select(
                targets, k, r,
                seed=self._next_seed(),
                deadline=budget.wall_seconds if budget else None,
                max_samples=budget.max_samples if budget else None,
                max_rr_members=budget.max_rr_members if budget else None,
            ).value
        return jointly_select(
            self._graph,
            JointQuery(targets, k=k, r=r),
            self._config,
            rng=self._rng,
            sampler=self._sampler,
            budget=budget,
        )

    def spread(
        self,
        seeds: Sequence[int],
        targets: Sequence[int],
        tags: Sequence[str],
        num_samples: int | None = None,
        budget: RunBudget | None = None,
    ) -> float:
        """Independent MC estimate of ``σ(S, T, C1)`` for any plan."""
        if self._server is not None:
            return self._server.estimate_spread(
                seeds, targets, tags,
                num_samples=num_samples,
                seed=self._next_seed(),
                deadline=budget.wall_seconds if budget else None,
                max_samples=budget.max_samples if budget else None,
                max_rr_members=budget.max_rr_members if budget else None,
            ).value
        return estimate_spread(
            self._graph, seeds, targets, tags,
            num_samples=num_samples or self._config.eval_samples,
            rng=self._rng,
            engine=self._sampler,
            budget=budget,
        )

    @property
    def indexed_tags(self) -> tuple[str, ...]:
        """Tags currently indexed by the session's shared manager."""
        if self._shared_manager is None:
            return ()
        return self._shared_manager.indexed_tags

    @property
    def telemetry(self) -> dict | None:
        """The sampler's cumulative runtime counters (``None`` scalar)."""
        if self._sampler is None:
            return None
        return self._sampler.telemetry.as_dict()

    @property
    def metrics(self) -> dict | None:
        """Metrics of the enclosing :func:`repro.obs.observe` scope.

        A grouped counters/gauges/histograms snapshot covering every
        query issued so far inside the scope, or ``None`` when
        observability is off. Individual query results additionally
        carry a full per-call ``report``.
        """
        registry = obs.current_registry()
        return registry.as_dict() if registry is not None else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        base = (
            f"CampaignSession(graph={self._graph!r}, "
            f"queries_run={self.queries_run}"
        )
        if self._sampler is not None:
            summary = self._sampler.telemetry.summary()
            if summary:
                return f"{base}, runtime=[{summary}])"
        return base + ")"
