"""Benefit-weighted targeted influence maximization (extension).

The paper's related work (Khan et al. [15], Li et al. [21]) studies the
variant where each target carries a *benefit* (expected revenue, vote
weight, …) and the objective is the expected total benefit of
influenced targets rather than their count:

    σ_w(S, T, C1) = Σ_{t ∈ T} w(t) · P[t activated | S, C1].

Both the Monte-Carlo estimator and targeted reverse sketching extend
directly: for sketching, RR-set roots are drawn proportionally to
benefit instead of uniformly, making the covered *fraction* an unbiased
estimate of σ_w / W where ``W = Σ w(t)`` — the classical weighted-IM
reduction, applied to the targeted setting.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.diffusion.cascade import simulate_cascade
from repro.exceptions import InvalidQueryError
from repro.graphs.tag_graph import TagGraph
from repro.sketch.coverage import greedy_max_coverage
from repro.sketch.rr_sets import reverse_reachable_set
from repro.sketch.theta import SketchConfig, compute_theta
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import check_budget, check_node_ids, check_tags_exist


def _normalize_benefits(
    benefits: Mapping[int, float], num_nodes: int
) -> tuple[np.ndarray, np.ndarray, float]:
    """Validate benefits; return (targets, weights, total_weight)."""
    if not benefits:
        raise InvalidQueryError("benefit map must not be empty")
    targets = np.array(sorted(int(t) for t in benefits), dtype=np.int64)
    check_node_ids(targets, num_nodes, context="weighted targets")
    weights = np.array(
        [float(benefits[int(t)]) for t in targets], dtype=np.float64
    )
    if (weights <= 0.0).any():
        raise InvalidQueryError("benefits must be strictly positive")
    return targets, weights, float(weights.sum())


def estimate_weighted_spread(
    graph: TagGraph,
    seeds: Sequence[int],
    benefits: Mapping[int, float],
    tags: Sequence[str],
    num_samples: int = 200,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Monte-Carlo estimate of the benefit-weighted targeted spread."""
    if num_samples <= 0:
        raise InvalidQueryError("num_samples must be positive")
    rng = ensure_rng(rng)
    seed_list = [int(s) for s in seeds]
    check_node_ids(seed_list, graph.num_nodes, context="weighted spread")
    check_tags_exist(tags, graph.tags)
    targets, weights, _total = _normalize_benefits(
        benefits, graph.num_nodes
    )
    if not seed_list:
        return 0.0

    edge_probs = graph.edge_probabilities(tags)
    total = 0.0
    for _ in range(num_samples):
        active = simulate_cascade(graph, seed_list, edge_probs, rng)
        total += float(weights[active[targets]].sum())
    return total / num_samples


@dataclass(frozen=True)
class WeightedTRSResult:
    """Outcome of weighted targeted reverse sketching.

    ``estimated_benefit`` is the expected total benefit captured inside
    the target set (the weighted analogue of the spread estimate).
    """

    seeds: tuple[int, ...]
    estimated_benefit: float
    theta: int
    elapsed_seconds: float


def weighted_trs_select_seeds(
    graph: TagGraph,
    benefits: Mapping[int, float],
    tags: Sequence[str],
    k: int,
    config: SketchConfig = SketchConfig(),
    rng: np.random.Generator | int | None = None,
) -> WeightedTRSResult:
    """Top-``k`` seeds maximizing the expected total benefit in ``T``.

    Identical to :func:`~repro.sketch.trs_select_seeds` except RR-set
    roots are drawn with probability proportional to each target's
    benefit, so greedy coverage maximizes benefit rather than count.
    """
    rng = ensure_rng(rng)
    check_budget(k, graph.num_nodes, what="seeds")
    check_tags_exist(tags, graph.tags)
    targets, weights, total_weight = _normalize_benefits(
        benefits, graph.num_nodes
    )

    timer = Timer()
    with timer:
        edge_probs = graph.edge_probabilities(tags)
        root_probs = weights / total_weight

        # Pilot batch → benefit lower bound → θ (Theorem 5 with the
        # weighted universe: |T| is replaced by the total benefit and
        # OPT_T by the optimal benefit; their ratio is what θ needs).
        pilot_roots = rng.choice(
            targets, size=config.pilot_samples, p=root_probs
        )
        pilot = [
            reverse_reachable_set(graph, int(root), edge_probs, rng)
            for root in pilot_roots
        ]
        pilot_cov = greedy_max_coverage(pilot, k, graph.num_nodes)
        opt_benefit = max(
            pilot_cov.fraction * total_weight, float(weights.min())
        )
        theta = compute_theta(
            graph.num_nodes,
            k,
            num_targets=max(int(round(total_weight)), 1),
            opt_t=opt_benefit,
            config=config,
        )

        roots = rng.choice(targets, size=theta, p=root_probs)
        rr_sets = [
            reverse_reachable_set(graph, int(root), edge_probs, rng)
            for root in roots
        ]
        coverage = greedy_max_coverage(rr_sets, k, graph.num_nodes)

    return WeightedTRSResult(
        seeds=coverage.seeds,
        estimated_benefit=coverage.fraction * total_weight,
        theta=theta,
        elapsed_seconds=timer.elapsed,
    )
