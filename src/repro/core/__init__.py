"""The paper's primary contribution: joint top-k seed / top-r tag selection.

:func:`jointly_select` is Algorithm 2 — alternate between the seed
finder (Section 3) and the tag finder (Section 4) from a configurable
initial condition until the targeted spread converges (Theorem 7
guarantees monotone non-decrease under exact sub-solvers; with the
heuristic sub-solvers the framework additionally tracks and returns the
best round seen). :func:`baseline_greedy` is the Section 5.1 baseline
that interleaves single seed and tag picks without re-optimization.
"""

from repro.core.baseline import BaselineConfig, baseline_greedy
from repro.core.initialization import (
    eliminate_low_frequency_tags,
    frequency_tag_scores,
    frequency_tags,
    ims_seeds,
    random_seeds,
    random_tags,
)
from repro.core.joint import JointConfig, jointly_select
from repro.core.problem import HistoryEntry, JointQuery, JointResult
from repro.core.session import CampaignSession
from repro.core.weighted import (
    WeightedTRSResult,
    estimate_weighted_spread,
    weighted_trs_select_seeds,
)

__all__ = [
    "BaselineConfig",
    "CampaignSession",
    "HistoryEntry",
    "JointConfig",
    "JointQuery",
    "JointResult",
    "WeightedTRSResult",
    "baseline_greedy",
    "estimate_weighted_spread",
    "eliminate_low_frequency_tags",
    "frequency_tag_scores",
    "frequency_tags",
    "ims_seeds",
    "jointly_select",
    "random_seeds",
    "random_tags",
    "weighted_trs_select_seeds",
]
