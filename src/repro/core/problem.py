"""Query and result types for the joint selection problem (Eq. 6)."""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.exceptions import InvalidQueryError
from repro.graphs.tag_graph import TagGraph
from repro.utils.validation import check_budget, check_node_ids


@dataclass(frozen=True)
class JointQuery:
    """A joint top-``k`` seeds / top-``r`` tags query.

    Attributes
    ----------
    targets:
        The campaigner's target customers ``T``.
    k:
        Seed budget.
    r:
        Tag budget.
    """

    targets: tuple[int, ...]
    k: int
    r: int

    def __init__(self, targets: Iterable[int], k: int, r: int) -> None:
        object.__setattr__(
            self, "targets", tuple(sorted({int(t) for t in targets}))
        )
        object.__setattr__(self, "k", int(k))
        object.__setattr__(self, "r", int(r))

    def validate(self, graph: TagGraph) -> None:
        """Check the query against a concrete graph; raise on mismatch."""
        if not self.targets:
            raise InvalidQueryError("target set must not be empty")
        check_node_ids(self.targets, graph.num_nodes, context="JointQuery")
        check_budget(self.k, graph.num_nodes, what="seeds")
        check_budget(self.r, graph.num_tags, what="tags")

    @property
    def num_targets(self) -> int:
        """``|T|``."""
        return len(self.targets)


@dataclass(frozen=True)
class HistoryEntry:
    """Snapshot of the optimizer's state after one half-iteration.

    ``step`` uses the paper's Table 6 convention: ``0`` is the initial
    condition, ``i - 0.5`` is after round ``i``'s seed optimization, and
    ``i`` after its tag optimization.
    """

    step: float
    seeds: tuple[int, ...]
    tags: tuple[str, ...]
    spread: float


@dataclass(frozen=True)
class JointResult:
    """Outcome of a joint selection run.

    Attributes
    ----------
    seeds, tags:
        The returned solution (the best-spread snapshot seen).
    spread:
        Its (Monte-Carlo estimated) targeted spread.
    history:
        Per-half-iteration snapshots, chronological.
    rounds:
        Number of full rounds executed.
    converged:
        Whether the stopping rule fired before ``max_rounds``.
    elapsed_seconds:
        Total wall-clock time.
    telemetry:
        Runtime failure counters (shards retried, pool rebuilds,
        checkpoint writes, ...) when a fault-tolerant sampler ran the
        sub-solvers; ``None`` on the scalar path.
    report:
        Observability report (metrics + trace + phases) when the run
        happened inside an :func:`repro.obs.observe` scope; ``None``
        otherwise.
    """

    seeds: tuple[int, ...]
    tags: tuple[str, ...]
    spread: float
    history: tuple[HistoryEntry, ...]
    rounds: int
    converged: bool
    elapsed_seconds: float
    telemetry: dict | None = None
    report: dict | None = None

    def spread_fraction(self, num_targets: int) -> float:
        """Spread as a fraction of the target-set size."""
        if num_targets <= 0:
            return 0.0
        return self.spread / num_targets
