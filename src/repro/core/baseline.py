"""Baseline interleaved greedy (paper Section 5.1).

Pick the best seed assuming all tags; then the best single tag for the
current seeds; then the next-best seed given that tag, and so on until
``k`` seeds and ``r`` tags are chosen. Seeds and tags are never
re-optimized against each other — which is exactly why the iterative
framework beats it (Figures 13–14).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.initialization import frequency_tag_scores
from repro.core.problem import HistoryEntry, JointQuery, JointResult
from repro.diffusion.monte_carlo import estimate_spread
from repro.exceptions import ConfigurationError
from repro.graphs.tag_graph import TagGraph
from repro.sketch.coverage import greedy_max_coverage
from repro.sketch.rr_sets import sample_rr_sets
from repro.sketch.theta import SketchConfig
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer


@dataclass(frozen=True)
class BaselineConfig:
    """Knobs for the baseline greedy.

    Attributes
    ----------
    rr_samples:
        RR sets per incremental seed pick.
    tag_candidates:
        The tag step scores only this many frequency-ranked candidates
        (evaluating every vocabulary tag by Monte-Carlo each step would
        dwarf the iterative algorithm's cost).
    eval_samples:
        MC samples per tag-candidate evaluation and for the final spread.
    """

    rr_samples: int = 500
    tag_candidates: int = 12
    eval_samples: int = 100
    sketch: SketchConfig = field(default_factory=SketchConfig)

    def __post_init__(self) -> None:
        if self.rr_samples <= 0 or self.eval_samples <= 0:
            raise ConfigurationError("sample counts must be positive")
        if self.tag_candidates <= 0:
            raise ConfigurationError("tag_candidates must be positive")


def _next_seed(
    graph: TagGraph,
    targets: tuple[int, ...],
    tags: tuple[str, ...],
    current_seeds: list[int],
    config: BaselineConfig,
    rng: np.random.Generator,
) -> int:
    """Best marginal seed by RR-set coverage given the current tag set."""
    edge_probs = graph.edge_probabilities(tags)
    rr_sets = sample_rr_sets(
        graph, targets, edge_probs, config.rr_samples, rng
    )
    # Only RR sets not already covered by the current seeds matter.
    seed_set = set(current_seeds)
    residual = [
        rr for rr in rr_sets if not seed_set.intersection(rr.tolist())
    ]
    candidates = np.array(
        [v for v in range(graph.num_nodes) if v not in seed_set],
        dtype=np.int64,
    )
    if not residual:
        return int(candidates[0])
    result = greedy_max_coverage(
        residual, 1, graph.num_nodes, candidate_nodes=candidates
    )
    return int(result.seeds[0])


def _next_tag(
    graph: TagGraph,
    targets: tuple[int, ...],
    seeds: list[int],
    current_tags: list[str],
    candidate_pool: list[str],
    config: BaselineConfig,
    rng: np.random.Generator,
) -> str:
    """Best marginal tag among the frequency-ranked candidates, by MC."""
    best_tag = candidate_pool[0]
    best_spread = -1.0
    for tag in candidate_pool:
        spread = estimate_spread(
            graph, seeds, targets, current_tags + [tag],
            num_samples=config.eval_samples, rng=rng,
        )
        if spread > best_spread:
            best_tag, best_spread = tag, spread
    return best_tag


def baseline_greedy(
    graph: TagGraph,
    query: JointQuery,
    config: BaselineConfig = BaselineConfig(),
    rng: np.random.Generator | int | None = None,
) -> JointResult:
    """Interleaved one-seed / one-tag greedy — the Section 5.1 baseline."""
    rng = ensure_rng(rng)
    query.validate(graph)
    targets = query.targets

    timer = Timer()
    with timer:
        scores = frequency_tag_scores(graph, targets)
        ranked_tags = sorted(scores, key=lambda t: (-scores[t], t))
        pool_size = min(
            max(config.tag_candidates, query.r), len(ranked_tags)
        )
        pool = ranked_tags[:pool_size]

        seeds: list[int] = []
        tags: list[str] = []
        history: list[HistoryEntry] = []
        step = 0.0
        for _ in range(max(query.k, query.r)):
            if len(seeds) < query.k:
                seed_tags = tuple(tags) if tags else graph.tags
                seeds.append(
                    _next_seed(graph, targets, seed_tags, seeds, config, rng)
                )
            if len(tags) < query.r:
                remaining = [t for t in pool if t not in tags]
                if remaining:
                    tags.append(
                        _next_tag(
                            graph, targets, seeds, tags, remaining,
                            config, rng,
                        )
                    )
            step += 1.0
            if len(seeds) >= query.k and len(tags) >= query.r:
                break

        spread = estimate_spread(
            graph, seeds, targets, tags,
            num_samples=config.eval_samples, rng=rng,
        )
        history.append(
            HistoryEntry(step, tuple(sorted(seeds)), tuple(sorted(tags)), spread)
        )

    return JointResult(
        seeds=tuple(sorted(seeds)),
        tags=tuple(sorted(tags)),
        spread=spread,
        history=tuple(history),
        rounds=1,
        converged=True,
        elapsed_seconds=timer.elapsed,
    )
