"""Initial conditions for the iterative algorithm (paper Section 5.3).

Four initializers — RS (random seeds), RT (random tags), IMS (influence
maximization-based seeds), FT (frequency-based tags) — plus the
frequency-based tag search-space elimination. The paper's finding
(Table 5/6): RS + FT converges as fast as IMS-based starts at a
fraction of the cost, and is this library's default too.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.tag_graph import TagGraph
from repro.sketch.theta import SketchConfig
from repro.sketch.trs import trs_select_seeds
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_budget, check_node_ids


def random_seeds(
    graph: TagGraph,
    k: int,
    rng: np.random.Generator | int | None = None,
) -> tuple[int, ...]:
    """RS — ``k`` seeds uniform at random over all nodes."""
    check_budget(k, graph.num_nodes, what="seeds")
    rng = ensure_rng(rng)
    chosen = rng.choice(graph.num_nodes, size=k, replace=False)
    return tuple(int(v) for v in sorted(chosen))


def random_tags(
    graph: TagGraph,
    r: int,
    universe: Sequence[str] | None = None,
    rng: np.random.Generator | int | None = None,
) -> tuple[str, ...]:
    """RT — ``r`` tags uniform at random over the (possibly reduced) vocabulary."""
    vocab = tuple(universe) if universe is not None else graph.tags
    check_budget(r, len(vocab), what="tags")
    rng = ensure_rng(rng)
    chosen = rng.choice(len(vocab), size=r, replace=False)
    return tuple(sorted(vocab[int(i)] for i in chosen))


def frequency_tag_scores(
    graph: TagGraph, targets: Iterable[int]
) -> dict[str, float]:
    """Aggregate per-tag probability mass over the targets' incident edges.

    For every tag, sums ``P(e | c)`` over edges *entering* a target —
    the edges that can actually deliver influence to the target set.
    """
    target_list = sorted({int(t) for t in targets})
    check_node_ids(target_list, graph.num_nodes, context="frequency scores")
    is_target = np.zeros(graph.num_nodes, dtype=bool)
    is_target[target_list] = True

    scores: dict[str, float] = {}
    dst = graph.dst
    for tag in graph.tags:
        ids, probs = graph.tag_edges(tag)
        incident = is_target[dst[ids]]
        scores[tag] = float(probs[incident].sum())
    return scores


def frequency_tags(
    graph: TagGraph,
    targets: Iterable[int],
    r: int,
    universe: Sequence[str] | None = None,
) -> tuple[str, ...]:
    """FT — the ``r`` tags with the highest accumulated target-incident mass."""
    vocab = set(universe) if universe is not None else set(graph.tags)
    check_budget(r, len(vocab), what="tags")
    scores = frequency_tag_scores(graph, targets)
    ranked = sorted(
        (tag for tag in scores if tag in vocab),
        key=lambda tag: (-scores[tag], tag),
    )
    return tuple(sorted(ranked[:r]))


def ims_seeds(
    graph: TagGraph,
    targets: Sequence[int],
    k: int,
    config: SketchConfig = SketchConfig(),
    rng: np.random.Generator | int | None = None,
) -> tuple[int, ...]:
    """IMS — classical targeted influence maximization assuming *all* tags.

    Runs TRS over the full-vocabulary aggregated graph; a good-quality
    but expensive start (the paper's Table 5 trade-off).
    """
    result = trs_select_seeds(graph, targets, graph.tags, k, config, rng)
    return tuple(sorted(result.seeds))


def eliminate_low_frequency_tags(
    graph: TagGraph,
    targets: Iterable[int],
    keep_fraction: float = 0.5,
    min_keep: int = 1,
) -> tuple[str, ...]:
    """Frequency-based search-space elimination (paper Section 5.3).

    Keeps the top ``keep_fraction`` of tags by accumulated probability
    mass on target-incident edges; tags appearing on few edges or with
    low probabilities contribute little to diffusion and are removed
    from the candidate space up front.
    """
    if not (0.0 < keep_fraction <= 1.0):
        raise ConfigurationError(
            f"keep_fraction must lie in (0, 1], got {keep_fraction}"
        )
    scores = frequency_tag_scores(graph, targets)
    keep = max(min_keep, int(round(keep_fraction * graph.num_tags)))
    ranked = sorted(scores, key=lambda tag: (-scores[tag], tag))
    return tuple(sorted(ranked[:keep]))
