"""Small numeric helpers used across the library."""

from __future__ import annotations

import math
from collections.abc import Iterable


def log_binomial(n: int, k: int) -> float:
    """Return ``ln C(n, k)`` computed stably through ``lgamma``.

    Used by Theorem 5's θ formula, where ``C(n, k)`` itself would
    overflow for any realistic graph.

    Examples
    --------
    >>> round(log_binomial(5, 2), 6) == round(math.log(10), 6)
    True
    """
    if k < 0 or k > n:
        raise ValueError(f"require 0 <= k <= n, got n={n}, k={k}")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def mean_std(values: Iterable[float]) -> tuple[float, float]:
    """Return ``(mean, population standard deviation)`` of ``values``.

    An empty iterable yields ``(0.0, 0.0)`` — convenient for summarizing
    possibly-empty probability collections in dataset reports.
    """
    data = list(values)
    if not data:
        return 0.0, 0.0
    mean = sum(data) / len(data)
    var = sum((x - mean) ** 2 for x in data) / len(data)
    return mean, math.sqrt(var)


def quartiles(values: Iterable[float]) -> tuple[float, float, float]:
    """Return the (Q1, median, Q3) of ``values`` by linear interpolation.

    Matches the dataset-characteristics columns of Table 4 in the paper.
    Raises ``ValueError`` on an empty input because quartiles of nothing
    are meaningless.
    """
    data = sorted(values)
    if not data:
        raise ValueError("quartiles of an empty sequence are undefined")

    def _at(q: float) -> float:
        pos = q * (len(data) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return data[lo]
        frac = pos - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    return _at(0.25), _at(0.5), _at(0.75)
