"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts either an integer
seed, an existing :class:`numpy.random.Generator`, or ``None``; this
module normalizes those into a ``Generator`` so deterministic replays
are a one-argument affair.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a reproducible stream, or
        an existing ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    rng: np.random.Generator, count: int
) -> list[np.random.Generator]:
    """Spawn ``count`` child generators via the SeedSequence spawn tree.

    Unlike :func:`spawn_rngs` (which draws child seeds from the parent's
    *stream*), this uses ``SeedSequence`` spawning: children depend only
    on the parent's seed material and its spawn counter, not on how much
    of the parent stream has been consumed. The parallel sampling driver
    relies on this for its determinism contract — shard streams are
    identical no matter which process consumes them.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return []
    try:
        return rng.spawn(count)
    except AttributeError:  # numpy < 1.25
        children = rng.bit_generator.seed_seq.spawn(count)
        return [np.random.default_rng(child) for child in children]


def spawn_seed_sequences(
    rng: np.random.Generator, count: int
) -> list[np.random.SeedSequence]:
    """Spawn ``count`` child :class:`~numpy.random.SeedSequence` objects.

    Consumes the parent's spawn counter exactly like
    :func:`spawn_generators`, and ``np.random.default_rng(child)`` yields
    the very same stream ``Generator.spawn`` would have produced — but a
    ``SeedSequence`` can be *re-instantiated* any number of times. The
    fault-tolerant runtime keys each shard to its seed sequence so a
    retried shard replays its samples bit-identically, and a checkpoint
    only needs the spawn cursor, not generator state.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return []
    return rng.bit_generator.seed_seq.spawn(count)


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Children are derived through ``SeedSequence`` spawning, so each child
    stream is statistically independent of its siblings and of the parent
    stream's future output.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
