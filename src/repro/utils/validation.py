"""Input validation helpers shared by the public API surface.

These raise :class:`~repro.exceptions.InvalidQueryError` (for caller
mistakes about nodes/tags/budgets) or
:class:`~repro.exceptions.GraphConstructionError` (for malformed graph
inputs) with actionable messages.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable

from repro.exceptions import GraphConstructionError, InvalidQueryError


def check_probability(value: float, *, context: str) -> None:
    """Ensure ``value`` is a valid edge probability in ``(0, 1]``.

    The paper's ``P : E × C → (0, 1]`` excludes exact zero: a zero-probability
    (edge, tag) pair is simply absent.
    """
    if not (0.0 < value <= 1.0):
        raise GraphConstructionError(
            f"{context}: probability must lie in (0, 1], got {value!r}"
        )


def check_node_ids(nodes: Iterable[int], n: int, *, context: str) -> None:
    """Ensure every id in ``nodes`` addresses a node of an ``n``-node graph."""
    for node in nodes:
        if not (0 <= int(node) < n):
            raise InvalidQueryError(
                f"{context}: node id {node} outside valid range [0, {n})"
            )


def check_budget(budget: int, universe_size: int, *, what: str) -> None:
    """Ensure a top-``budget`` request can be satisfied from the universe."""
    if budget <= 0:
        raise InvalidQueryError(f"budget on {what} must be positive, got {budget}")
    if budget > universe_size:
        raise InvalidQueryError(
            f"budget on {what} is {budget} but only {universe_size} are available"
        )


def check_tags_exist(tags: Iterable[str], known: Collection[str]) -> None:
    """Ensure every tag in ``tags`` is present in the graph's vocabulary."""
    unknown = [t for t in tags if t not in known]
    if unknown:
        raise InvalidQueryError(
            f"unknown tags: {sorted(unknown)!r}; graph knows {len(known)} tags"
        )
