"""Input validation helpers shared by the public API surface.

These raise :class:`~repro.exceptions.InvalidQueryError` (for caller
mistakes about nodes/tags/budgets) or
:class:`~repro.exceptions.GraphConstructionError` (for malformed graph
inputs) with actionable messages.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable

import numpy as np

from repro.exceptions import GraphConstructionError, InvalidQueryError


def check_probability(value: float, *, context: str) -> None:
    """Ensure ``value`` is a valid edge probability in ``(0, 1]``.

    The paper's ``P : E × C → (0, 1]`` excludes exact zero: a zero-probability
    (edge, tag) pair is simply absent.
    """
    if not (0.0 < value <= 1.0):
        raise GraphConstructionError(
            f"{context}: probability must lie in (0, 1], got {value!r}"
        )


def check_node_ids(nodes: Iterable[int], n: int, *, context: str) -> None:
    """Ensure every id in ``nodes`` addresses a node of an ``n``-node graph."""
    for node in nodes:
        if not (0 <= int(node) < n):
            raise InvalidQueryError(
                f"{context}: node id {node} outside valid range [0, {n})"
            )


def as_target_array(
    targets: Iterable[int], n: int, *, context: str
) -> np.ndarray:
    """Validate once; return targets as a sorted-unique int64 array.

    This is the single validation point for target sets: hot paths
    (:func:`repro.sketch.rr_sets.sample_rr_sets_validated`, the TRS/IMM
    iterations, the sampling engine) accept the returned array as-is and
    skip re-validating and re-sorting per call.
    """
    if isinstance(targets, np.ndarray):
        arr = np.unique(targets.astype(np.int64, copy=False))
    else:
        arr = np.unique(np.asarray(list(targets), dtype=np.int64))
    if arr.size == 0:
        raise InvalidQueryError(f"{context}: target set must not be empty")
    if arr[0] < 0 or arr[-1] >= n:
        bad = int(arr[0]) if arr[0] < 0 else int(arr[-1])
        raise InvalidQueryError(
            f"{context}: node id {bad} outside valid range [0, {n})"
        )
    return arr


def check_node_array(nodes: np.ndarray, n: int, *, context: str) -> None:
    """Vectorized :func:`check_node_ids` for (possibly large) id arrays."""
    if nodes.size and (int(nodes.min()) < 0 or int(nodes.max()) >= n):
        bad = int(nodes.min()) if int(nodes.min()) < 0 else int(nodes.max())
        raise InvalidQueryError(
            f"{context}: node id {bad} outside valid range [0, {n})"
        )


def node_mask(node_arr: np.ndarray, n: int) -> np.ndarray:
    """Boolean membership mask (length ``n``) for a validated id array."""
    mask = np.zeros(n, dtype=bool)
    mask[node_arr] = True
    return mask


def check_budget(budget: int, universe_size: int, *, what: str) -> None:
    """Ensure a top-``budget`` request can be satisfied from the universe."""
    if budget <= 0:
        raise InvalidQueryError(f"budget on {what} must be positive, got {budget}")
    if budget > universe_size:
        raise InvalidQueryError(
            f"budget on {what} is {budget} but only {universe_size} are available"
        )


def check_tags_exist(tags: Iterable[str], known: Collection[str]) -> None:
    """Ensure every tag in ``tags`` is present in the graph's vocabulary."""
    unknown = [t for t in tags if t not in known]
    if unknown:
        raise InvalidQueryError(
            f"unknown tags: {sorted(unknown)!r}; graph knows {len(known)} tags"
        )
