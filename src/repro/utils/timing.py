"""Lightweight wall-clock timing for benchmarks and instrumentation."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    A single ``Timer`` may be entered multiple times; ``elapsed`` is the
    running total across all completed (and the current, if any) spans.

    Examples
    --------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._total = 0.0
        self._started_at: float | None = None

    def __enter__(self) -> "Timer":
        self._started_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._started_at is not None:
            self._total += time.perf_counter() - self._started_at
            self._started_at = None

    @property
    def elapsed(self) -> float:
        """Total seconds measured so far, including a still-open span."""
        running = 0.0
        if self._started_at is not None:
            running = time.perf_counter() - self._started_at
        return self._total + running

    def reset(self) -> None:
        """Zero the accumulated time and close any open span."""
        self._total = 0.0
        self._started_at = None
