"""Lightweight wall-clock timing for benchmarks and instrumentation."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    A single ``Timer`` may be entered multiple times; ``elapsed`` is the
    running total across all completed (and the current, if any) spans.

    Parameters
    ----------
    metric:
        Optional metric name. When set and an :func:`repro.obs.observe`
        scope is active, every completed span is recorded into the
        histogram ``<metric>.seconds`` of the active registry — this is
        the bridge that unifies ad-hoc ``Timer`` instrumentation with
        the observability layer.

    Examples
    --------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self, metric: str | None = None) -> None:
        self._total = 0.0
        self._started_at: float | None = None
        self.metric = metric

    def __enter__(self) -> "Timer":
        self._started_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._started_at is not None:
            span = time.perf_counter() - self._started_at
            self._total += span
            self._started_at = None
            if self.metric is not None:
                from repro import obs  # local import: avoid cycles

                obs.record(f"{self.metric}.seconds", span)

    @property
    def elapsed(self) -> float:
        """Total seconds measured so far, including a still-open span."""
        running = 0.0
        if self._started_at is not None:
            running = time.perf_counter() - self._started_at
        return self._total + running

    def reset(self) -> None:
        """Zero the accumulated time and close any open span."""
        self._total = 0.0
        self._started_at = None
