"""Shared utilities: RNG plumbing, timing, math helpers, validation."""

from repro.utils.mathx import log_binomial, mean_std, quartiles
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_budget,
    check_node_ids,
    check_probability,
    check_tags_exist,
)

__all__ = [
    "Timer",
    "check_budget",
    "check_node_ids",
    "check_probability",
    "check_tags_exist",
    "ensure_rng",
    "log_binomial",
    "mean_std",
    "quartiles",
    "spawn_rngs",
]
