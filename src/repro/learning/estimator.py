"""Temporal-credit estimation of tag-conditional edge probabilities.

The paper's Yelp preprocessing, generalized: for every friend pair
``{u, v}`` and tag ``c``, count the episodes in which one endpoint
adopted ``c`` shortly *after* the other (within a credit window) —
giving both the influence direction and a co-occurrence frequency
``t`` — then map frequency to probability with the Potamias transform
``p = 1 − exp(−t / a)`` (the same recipe ``repro.datasets`` uses for
synthetic ground truth, so learned graphs live on the same scale).
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.graphs.builders import TagGraphBuilder
from repro.graphs.tag_graph import TagGraph
from repro.learning.log import InteractionLog


#: Supported probability models for :func:`learn_tag_graph`.
METHODS = ("frequency", "bernoulli")


@dataclass(frozen=True)
class LearningConfig:
    """Knobs for the temporal-credit estimator.

    Attributes
    ----------
    window:
        Maximum time gap for which a later adoption is credited to the
        earlier friend. Must comfortably exceed typical propagation
        delays but stay below the episode spacing.
    a:
        Frequency → probability scale of ``p = 1 − exp(−t / a)``
        (``method="frequency"`` only).
    min_frequency:
        Pairs with fewer credited events than this produce no edge —
        noise suppression (paper-style "frequent enough" cut).
    method:
        ``"frequency"`` — the paper's recipe, ``p = 1 − e^{−t/a}``;
        ``"bernoulli"`` — Goyal-et-al.-style maximum likelihood,
        ``p = credits / opportunities`` where an *opportunity* is a
        source adoption that the destination could have followed.
    """

    window: float = 50.0
    a: float = 5.0
    min_frequency: int = 1
    method: str = "frequency"

    def __post_init__(self) -> None:
        if self.window <= 0.0:
            raise ConfigurationError("window must be positive")
        if self.a <= 0.0:
            raise ConfigurationError("a must be positive")
        if self.min_frequency < 1:
            raise ConfigurationError("min_frequency must be >= 1")
        if self.method not in METHODS:
            raise ConfigurationError(
                f"unknown method {self.method!r}; expected one of {METHODS}"
            )


def _credit_count(
    src_times: list[float], dst_times: list[float], window: float
) -> int:
    """Count dst adoptions that follow a src adoption within ``window``.

    Each dst adoption is credited at most once (to *some* earlier src
    adoption inside the window) — the standard one-credit-per-activation
    rule of credit-distribution learning.
    """
    credit = 0
    position = 0
    src_sorted = sorted(src_times)
    for t_dst in sorted(dst_times):
        # Advance to the latest src adoption strictly before t_dst.
        while (
            position < len(src_sorted) and src_sorted[position] < t_dst
        ):
            position += 1
        latest_before = src_sorted[position - 1] if position > 0 else None
        if latest_before is not None and t_dst <= latest_before + window:
            credit += 1
    return credit


def learn_tag_graph(
    log: InteractionLog,
    friendships: Iterable[tuple[int, int]],
    num_nodes: int,
    config: LearningConfig = LearningConfig(),
) -> TagGraph:
    """Estimate a :class:`TagGraph` from a log and a friendship list.

    Parameters
    ----------
    log:
        The adoption events.
    friendships:
        Undirected friend pairs ``(u, v)``; only these pairs may carry
        influence (matching the paper's setting where the social graph
        is observed and the probabilities are not).
    num_nodes:
        Node-id universe of the output graph.

    Returns
    -------
    TagGraph
        Directed edges ``u → v`` with ``P((u, v) | c) = 1 − e^{−t/a}``
        where ``t`` counts the episodes in which ``v`` first adopted
        ``c`` within ``window`` after ``u`` did.
    """
    pairs = {
        (int(u), int(v))
        for u, v in friendships
        if int(u) != int(v)
    }
    # Normalize to unordered with both orientations testable.
    unordered = {tuple(sorted(p)) for p in pairs}

    frequencies: dict[tuple[int, int, str], int] = {}
    opportunities: dict[tuple[int, int, str], int] = {}
    for tag in log.tags:
        adoption = log.adoptions(tag)
        for u, v in unordered:
            times_u, times_v = adoption.get(u), adoption.get(v)
            if not times_u and not times_v:
                continue
            for src, src_times, dst, dst_times in (
                (u, times_u or [], v, times_v or []),
                (v, times_v or [], u, times_u or []),
            ):
                if not src_times:
                    continue
                key = (src, dst, tag)
                opportunities[key] = (
                    opportunities.get(key, 0) + len(src_times)
                )
                if dst_times:
                    credit = _credit_count(
                        src_times, dst_times, config.window
                    )
                    if credit:
                        frequencies[key] = (
                            frequencies.get(key, 0) + credit
                        )

    builder = TagGraphBuilder(num_nodes)
    for (u, v, tag), freq in sorted(frequencies.items()):
        if freq < config.min_frequency:
            continue
        if config.method == "frequency":
            prob = 1.0 - math.exp(-freq / config.a)
        else:  # bernoulli MLE, capped below 1 to stay in (0, 1]
            trials = max(opportunities.get((u, v, tag), freq), freq)
            prob = min(freq / trials, 1.0)
        if prob > 0.0:
            builder.add(u, v, tag, prob)
    return builder.build()
