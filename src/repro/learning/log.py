"""Interaction logs: time-stamped tag adoptions, real or simulated.

An *interaction* is one user adopting (reviewing, tweeting about,
listening to) one tag at one time. A log is the raw material the
probability estimator consumes; for testing and experimentation,
:func:`simulate_interaction_log` produces logs whose ground truth is a
known :class:`~repro.graphs.TagGraph`, by running tag-conditional IC
episodes with exponential propagation delays.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidQueryError
from repro.graphs.tag_graph import TagGraph
from repro.utils.rng import ensure_rng


@dataclass(frozen=True, order=True)
class Interaction:
    """One adoption event: ``user`` engaged with ``tag`` at ``timestamp``.

    Ordered by timestamp (then user, then tag) so logs sort
    chronologically.
    """

    timestamp: float
    user: int
    tag: str


class InteractionLog:
    """A chronologically sorted collection of interactions.

    Duplicate (same user, tag, timestamp) events are allowed — real
    logs have them — but only a user's *first* adoption of a tag
    matters to the estimator, matching the IC "activate once" rule.
    """

    def __init__(self, interactions: Iterable[Interaction] = ()) -> None:
        self._events = sorted(interactions)

    def add(self, user: int, tag: str, timestamp: float) -> None:
        """Append an event (kept sorted lazily on next read)."""
        self._events.append(Interaction(timestamp, int(user), tag))
        self._events.sort()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Interaction]:
        return iter(self._events)

    @property
    def tags(self) -> tuple[str, ...]:
        """Distinct tags appearing in the log, sorted."""
        return tuple(sorted({e.tag for e in self._events}))

    @property
    def users(self) -> tuple[int, ...]:
        """Distinct users appearing in the log, sorted."""
        return tuple(sorted({e.user for e in self._events}))

    def first_adoptions(self, tag: str) -> dict[int, float]:
        """Each user's earliest adoption time of ``tag``."""
        first: dict[int, float] = {}
        for event in self._events:
            if event.tag == tag and event.user not in first:
                first[event.user] = event.timestamp
        return first

    def adoptions(self, tag: str) -> dict[int, list[float]]:
        """Every user's sorted adoption times of ``tag`` (all episodes)."""
        times: dict[int, list[float]] = {}
        for event in self._events:
            if event.tag == tag:
                times.setdefault(event.user, []).append(event.timestamp)
        return times

    def save(self, path: "str | Path") -> None:
        """Write the log as CSV: ``timestamp,user,tag`` with a header."""
        from pathlib import Path

        with Path(path).open("w", encoding="utf-8") as handle:
            handle.write("timestamp,user,tag\n")
            for event in self._events:
                handle.write(
                    f"{event.timestamp:.17g},{event.user},{event.tag}\n"
                )

    @classmethod
    def load(cls, path: "str | Path") -> "InteractionLog":
        """Read a CSV written by :meth:`save` (or any matching file).

        Raises :class:`InvalidQueryError` on malformed rows, with the
        offending line number.
        """
        from pathlib import Path

        events: list[Interaction] = []
        with Path(path).open("r", encoding="utf-8") as handle:
            header = handle.readline().strip()
            if header != "timestamp,user,tag":
                raise InvalidQueryError(
                    f"{path}: expected 'timestamp,user,tag' header, "
                    f"got {header!r}"
                )
            for lineno, line in enumerate(handle, start=2):
                line = line.strip()
                if not line:
                    continue
                parts = line.split(",", 2)
                if len(parts) != 3:
                    raise InvalidQueryError(
                        f"{path}:{lineno}: expected 3 comma-separated "
                        f"fields, got {len(parts)}"
                    )
                try:
                    events.append(
                        Interaction(float(parts[0]), int(parts[1]), parts[2])
                    )
                except ValueError as exc:
                    raise InvalidQueryError(
                        f"{path}:{lineno}: unparsable row {line!r}"
                    ) from exc
        return cls(events)


def simulate_interaction_log(
    graph: TagGraph,
    num_episodes: int,
    episode_spacing: float = 1_000.0,
    delay_scale: float = 1.0,
    spontaneous_rate: float = 0.0,
    rng: np.random.Generator | int | None = None,
) -> InteractionLog:
    """Generate a log by running tag-conditional IC episodes on ``graph``.

    Each episode picks one tag (uniformly), one random source user, and
    propagates along edges with probability ``P(e | tag)``; successful
    activations occur after exponential delays, giving the temporal
    order the estimator relies on. Episodes are spaced far apart so
    cascades never interleave.

    Parameters
    ----------
    num_episodes:
        Number of cascades to simulate.
    episode_spacing:
        Time gap between episode start times (keep it much larger than
        typical cascade depth × ``delay_scale``).
    delay_scale:
        Mean of the per-hop exponential propagation delay.
    spontaneous_rate:
        Probability that each episode additionally contains one
        independent spontaneous adoption of the same tag by a random
        user — noise for robustness testing.
    """
    if num_episodes <= 0:
        raise InvalidQueryError("num_episodes must be positive")
    if graph.num_tags == 0 or graph.num_nodes == 0:
        raise InvalidQueryError("graph must have nodes and tags")
    rng = ensure_rng(rng)

    events: list[Interaction] = []
    tags = graph.tags
    fwd_indptr, fwd_edges = graph.forward_csr()
    dst = graph.dst

    for episode in range(num_episodes):
        tag = tags[int(rng.integers(0, len(tags)))]
        probs = graph.edge_probabilities([tag])
        source = int(rng.integers(0, graph.num_nodes))
        start = episode * episode_spacing

        activation_time = {source: start}
        heap: list[tuple[float, int]] = [(start, source)]
        while heap:
            time_now, node = heapq.heappop(heap)
            if activation_time.get(node, np.inf) < time_now:
                continue
            edge_ids = fwd_edges[fwd_indptr[node]:fwd_indptr[node + 1]]
            for eid in edge_ids.tolist():
                if rng.random() < probs[eid]:
                    child = int(dst[eid])
                    arrival = time_now + float(
                        rng.exponential(delay_scale)
                    )
                    if arrival < activation_time.get(child, np.inf):
                        activation_time[child] = arrival
                        heapq.heappush(heap, (arrival, child))

        for user, when in activation_time.items():
            events.append(Interaction(when, user, tag))

        if spontaneous_rate > 0.0 and rng.random() < spontaneous_rate:
            stray = int(rng.integers(0, graph.num_nodes))
            when = start + float(rng.exponential(delay_scale))
            events.append(Interaction(when, stray, tag))

    return InteractionLog(events)
