"""IMM — martingale-based sample sizing (Tang, Shi, Xiao; SIGMOD 2015).

The paper's TRS sizes θ with Theorem 5, which needs an OPT_T estimate
from a fixed pilot batch. IMM (cited by the paper as the state of the
art it builds on) replaces the pilot with a *geometric search*: try
progressively smaller guesses ``x`` of OPT, each validated by a batch
of RR sets large enough that greedy coverage exceeding ``(1 + ε')·x``
certifies — via martingale concentration — that ``OPT ≥ x`` with high
probability. The first certified guess yields a lower bound LB, and the
final θ = λ* / LB is typically much smaller than a worst-case pilot
bound.

This is the targeted adaptation: RR roots are drawn uniformly from the
target set ``T``, coverage fractions estimate spread within ``T``, and
``|T|`` replaces ``n`` as the spread scale (the ``ln C(n, k)`` seed-
choice term keeps the full node universe).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.exceptions import BudgetExceededError
from repro.graphs.tag_graph import TagGraph
from repro.sketch.coverage import greedy_max_coverage
from repro.sketch.rr_sets import sample_rr_sets_validated
from repro.sketch.theta import SketchConfig
from repro.utils.mathx import log_binomial
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import (
    as_target_array,
    check_budget,
    check_tags_exist,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.parallel import SamplingEngine
    from repro.engine.runtime import RunBudget


@dataclass(frozen=True)
class IMMResult:
    """Outcome of IMM seed selection.

    Attributes
    ----------
    seeds:
        Selected seed nodes.
    estimated_spread:
        ``F_R(S) · |T|`` over the final RR collection.
    theta:
        Final RR-set count (phase-2 size).
    lower_bound:
        The certified OPT_T lower bound from phase 1.
    sampling_rounds:
        How many geometric guesses phase 1 examined.
    elapsed_seconds:
        Total selection time.
    telemetry:
        Runtime failure counters when an engine ran the sampling;
        ``None`` on the scalar path.
    report:
        Observability report (metrics + trace + phases) when the call
        ran inside an :func:`repro.obs.observe` scope; ``None``
        otherwise.
    """

    seeds: tuple[int, ...]
    estimated_spread: float
    theta: int
    lower_bound: float
    sampling_rounds: int
    elapsed_seconds: float
    telemetry: dict | None = None
    report: dict | None = None


def imm_select_seeds(
    graph: TagGraph,
    targets: Sequence[int],
    tags: Sequence[str],
    k: int,
    config: SketchConfig = SketchConfig(),
    ell: float = 1.0,
    rng: np.random.Generator | int | None = None,
    engine: "SamplingEngine | None" = None,
    budget: "RunBudget | None" = None,
) -> IMMResult:
    """Targeted IMM: top-``k`` seeds with martingale-sized sampling.

    Parameters
    ----------
    config:
        Shares ε and the θ clamps with TRS so the two are directly
        comparable (``config.epsilon`` plays IMM's ε).
    ell:
        Failure-probability exponent: guarantees hold with probability
        at least ``1 − |T|^(−ell)`` (IMM's ℓ parameter).
    engine:
        Optional :class:`~repro.engine.SamplingEngine`; the geometric
        rounds then accumulate flat
        :class:`~repro.engine.RRCollection` batches instead of lists.
    budget:
        Optional :class:`~repro.engine.RunBudget`; a tripped limit
        raises :class:`~repro.exceptions.BudgetExceededError` whose
        ``partial`` is a best-effort :class:`IMMResult` covering the RR
        sets accumulated across all completed rounds.

    Targets are validated once at this boundary; every sampling round
    reuses the pre-validated array.
    """
    rng = ensure_rng(rng)
    check_budget(k, graph.num_nodes, what="seeds")
    check_tags_exist(tags, graph.tags)
    target_arr = as_target_array(
        targets, graph.num_nodes, context="imm_select_seeds"
    )
    t_size = int(target_arr.size)

    timer = Timer()
    try:
        return _imm_core(
            graph, target_arr, tags, k, config, ell, rng, engine, budget,
            timer,
        )
    except BudgetExceededError as exc:
        exc.partial = _partial_imm_result(
            exc.partial, k, graph.num_nodes, t_size, timer.elapsed, engine
        )
        raise


def _imm_core(
    graph: TagGraph,
    target_arr: np.ndarray,
    tags: Sequence[str],
    k: int,
    config: SketchConfig,
    ell: float,
    rng: np.random.Generator,
    engine: "SamplingEngine | None",
    budget: "RunBudget | None",
    timer: Timer,
) -> IMMResult:
    t_size = int(target_arr.size)
    n = graph.num_nodes
    eps = config.epsilon

    with timer, obs.span("imm", k=k, num_targets=t_size):
        edge_probs = graph.edge_probabilities(tags)

        # Phase 1 — geometric search for a lower bound on OPT_T.
        eps_prime = math.sqrt(2.0) * eps
        log_choose = log_binomial(n, k)
        log_t = max(math.log(max(t_size, 2)), 1.0)
        lam_prime = (
            (2.0 + 2.0 / 3.0 * eps_prime)
            * (log_choose + ell * log_t + math.log(max(math.log2(max(t_size, 2)), 1.0)))
            * t_size
            / (eps_prime * eps_prime)
        )

        if engine is None:
            rr_sets: "list[np.ndarray] | RRCollection" = []
        else:
            from repro.engine.rr_storage import RRCollection

            rr_sets = RRCollection(
                np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64), n
            )

        def extended(current, count: int):
            try:
                extra = sample_rr_sets_validated(
                    graph, target_arr, edge_probs, count, rng,
                    engine=engine, budget=budget,
                )
            except BudgetExceededError as exc:
                # Fold the failing batch's partial into what earlier
                # rounds accumulated so the caller sees everything.
                if engine is None:
                    current.extend(exc.partial or [])
                    exc.partial = current
                else:
                    exc.partial = type(current).concat(
                        (current, exc.partial)
                    ) if exc.partial is not None else current
                raise
            if engine is None:
                current.extend(extra)
                return current
            return type(current).concat((current, extra))

        lower_bound = 1.0
        rounds = 0
        max_rounds = max(int(math.log2(max(t_size, 2))), 1)
        with obs.span("imm.search", max_rounds=max_rounds):
            for i in range(1, max_rounds + 1):
                rounds = i
                obs.count("imm.rounds")
                x = t_size / (2.0 ** i)
                theta_i = min(
                    int(math.ceil(lam_prime / max(x, 1e-9))),
                    config.theta_max,
                )
                if len(rr_sets) < theta_i:
                    rr_sets = extended(rr_sets, theta_i - len(rr_sets))
                coverage = greedy_max_coverage(rr_sets, k, n)
                estimate = coverage.fraction * t_size
                if estimate >= (1.0 + eps_prime) * x:
                    lower_bound = max(estimate / (1.0 + eps_prime), 1.0)
                    break
                if theta_i >= config.theta_max:
                    lower_bound = max(estimate, 1.0)
                    break

        # Phase 2 — final θ from the certified lower bound.
        alpha = math.sqrt(ell * log_t + math.log(2.0))
        beta = math.sqrt(
            (1.0 - 1.0 / math.e) * (log_choose + ell * log_t + math.log(2.0))
        )
        lam_star = (
            2.0
            * t_size
            * ((1.0 - 1.0 / math.e) * alpha + beta) ** 2
            / (eps * eps)
        )
        theta = int(
            min(
                max(math.ceil(lam_star / lower_bound), config.theta_min),
                config.theta_max,
            )
        )
        obs.gauge("imm.theta", theta)
        with obs.span("imm.select", theta=theta):
            if len(rr_sets) < theta:
                rr_sets = extended(rr_sets, theta - len(rr_sets))
            else:
                rr_sets = rr_sets[:theta]
            final = greedy_max_coverage(rr_sets, k, n)

    return IMMResult(
        seeds=final.seeds,
        estimated_spread=final.fraction * t_size,
        theta=theta,
        lower_bound=lower_bound,
        sampling_rounds=rounds,
        elapsed_seconds=timer.elapsed,
        telemetry=engine.telemetry.as_dict() if engine is not None else None,
        report=obs.snapshot_report(),
    )


def _partial_imm_result(
    partial_sets,
    k: int,
    num_nodes: int,
    t_size: int,
    elapsed: float,
    engine: "SamplingEngine | None",
) -> IMMResult:
    """Best-effort :class:`IMMResult` from whatever a budget stop left."""
    sets = partial_sets if partial_sets is not None else []
    collected = len(sets)
    if collected > 0:
        coverage = greedy_max_coverage(sets, min(k, collected), num_nodes)
        seeds = coverage.seeds
        spread = coverage.fraction * t_size
    else:
        seeds, spread = (), 0.0
    return IMMResult(
        seeds=seeds,
        estimated_spread=spread,
        theta=collected,
        lower_bound=1.0,
        sampling_rounds=0,
        elapsed_seconds=elapsed,
        telemetry=engine.telemetry.as_dict() if engine is not None else None,
    )
