"""Targeted reverse sketching (TRS) — Section 3.1 of the paper.

Reverse-reachable (RR) sets are sampled with roots drawn uniformly from
the *target set* rather than from all nodes — the paper's key refinement
of Borgs et al. / Tang et al. reverse sketching to the targeted setting,
preserving the ``(1 - 1/e - ε)`` guarantee (Theorem 5).
"""

from repro.sketch.coverage import CoverageResult, greedy_max_coverage
from repro.sketch.imm import IMMResult, imm_select_seeds
from repro.sketch.incremental import (
    REPAIR_MODES,
    RepairableSketch,
    SketchCapacityError,
    build_repairable_sketch,
    trs_build_repairable_sketch,
)
from repro.sketch.rr_sets import (
    rr_set_from_edge_mask,
    reverse_reachable_set,
    sample_rr_sets,
    sample_rr_sets_validated,
)
from repro.sketch.theta import SketchConfig, compute_theta, estimate_opt_t
from repro.sketch.trs import (
    TRSResult,
    TRSSketch,
    trs_build_sketch,
    trs_select_from_sketch,
    trs_select_seeds,
)

__all__ = [
    "CoverageResult",
    "IMMResult",
    "REPAIR_MODES",
    "RepairableSketch",
    "SketchCapacityError",
    "SketchConfig",
    "TRSResult",
    "TRSSketch",
    "build_repairable_sketch",
    "compute_theta",
    "estimate_opt_t",
    "greedy_max_coverage",
    "imm_select_seeds",
    "reverse_reachable_set",
    "rr_set_from_edge_mask",
    "sample_rr_sets",
    "sample_rr_sets_validated",
    "trs_build_repairable_sketch",
    "trs_build_sketch",
    "trs_select_from_sketch",
    "trs_select_seeds",
]
