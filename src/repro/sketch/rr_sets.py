"""Reverse-reachable (RR) set sampling.

An RR set for root ``v`` is the set of nodes that can reach ``v`` in a
random possible world. Sampling uses the deferred-decision principle:
a reverse BFS from the root that flips each incoming edge's coin the
first time it is examined, which is distributionally identical to
materializing the whole world first (Borgs et al., SODA 2014).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.exceptions import InvalidQueryError
from repro.graphs.tag_graph import TagGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import as_target_array, check_node_ids

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.parallel import SamplingEngine
    from repro.engine.rr_storage import RRCollection
    from repro.engine.runtime import RunBudget


def reverse_reachable_set(
    graph: TagGraph,
    root: int,
    edge_probs: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Sample one RR set for ``root`` with lazy coin flips.

    Returns the member node ids as an array (always includes ``root``).
    """
    rng = ensure_rng(rng)
    check_node_ids([root], graph.num_nodes, context="reverse_reachable_set")
    visited = np.zeros(graph.num_nodes, dtype=bool)
    return _reverse_reachable_set_into(graph, root, edge_probs, rng, visited)


def _reverse_reachable_set_into(
    graph: TagGraph,
    root: int,
    edge_probs: np.ndarray,
    rng: np.random.Generator,
    visited: np.ndarray,
) -> np.ndarray:
    """Scalar reverse BFS core; ``visited`` is a reusable scratch buffer.

    The buffer must arrive all-``False`` and is restored before
    returning, so batch callers avoid a length-``n`` allocation per
    sample. RNG consumption is identical to the original loop, keeping
    the scalar path bit-compatible for fixed seeds.
    """
    visited[root] = True
    members = [int(root)]
    queue: deque[int] = deque([int(root)])

    rev_indptr, rev_edges = graph.reverse_csr()
    src = graph.src
    while queue:
        node = queue.popleft()
        edge_ids = rev_edges[rev_indptr[node]:rev_indptr[node + 1]]
        if edge_ids.size == 0:
            continue
        coins = rng.random(edge_ids.size) < edge_probs[edge_ids]
        for eid in edge_ids[coins]:
            parent = int(src[eid])
            if not visited[parent]:
                visited[parent] = True
                members.append(parent)
                queue.append(parent)
    result = np.array(members, dtype=np.int64)
    visited[result] = False
    return result


def rr_set_from_edge_mask(
    graph: TagGraph, root: int, edge_mask: np.ndarray
) -> np.ndarray:
    """RR set for ``root`` in a *fixed* world given by ``edge_mask``.

    Used by the index-based schemes (I-TRS and friends), where the world
    is the union of pre-sampled per-tag possible-world indexes and no
    further coins are flipped.
    """
    check_node_ids([root], graph.num_nodes, context="rr_set_from_edge_mask")
    if edge_mask.shape != (graph.num_edges,):
        raise InvalidQueryError(
            f"edge_mask must have length m={graph.num_edges}, "
            f"got shape {edge_mask.shape}"
        )

    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[root] = True
    members = [int(root)]
    queue: deque[int] = deque([int(root)])

    rev_indptr, rev_edges = graph.reverse_csr()
    src = graph.src
    while queue:
        node = queue.popleft()
        for eid in rev_edges[rev_indptr[node]:rev_indptr[node + 1]]:
            if edge_mask[eid]:
                parent = int(src[eid])
                if not visited[parent]:
                    visited[parent] = True
                    members.append(parent)
                    queue.append(parent)
    return np.array(members, dtype=np.int64)


def sample_rr_sets(
    graph: TagGraph,
    targets: Sequence[int],
    edge_probs: np.ndarray,
    theta: int,
    rng: np.random.Generator | int | None = None,
    engine: "SamplingEngine | None" = None,
) -> "list[np.ndarray] | RRCollection":
    """Sample ``theta`` targeted RR sets (roots uniform over ``targets``).

    This is the *targeted* refinement: in classical reverse sketching the
    root is uniform over all of ``V``; here it is uniform over ``T``
    only, so coverage fractions estimate spread *within the target set*.

    This is the validating API boundary: ``targets`` are deduplicated,
    sorted, and range-checked exactly once here. Hot call paths that
    already hold a validated array (TRS/IMM iterations) should call
    :func:`sample_rr_sets_validated` directly.

    With ``engine`` set, sampling is delegated to the frontier-batched
    (and optionally multi-process) :class:`~repro.engine.SamplingEngine`
    and the result is a flat :class:`~repro.engine.RRCollection` — a
    drop-in sequence of member arrays. Without it, the scalar path
    returns a ``list`` and stays bit-compatible with earlier releases.
    """
    target_arr = as_target_array(
        targets, graph.num_nodes, context="sample_rr_sets"
    )
    return sample_rr_sets_validated(
        graph, target_arr, edge_probs, theta, rng, engine=engine
    )


def sample_rr_sets_validated(
    graph: TagGraph,
    target_arr: np.ndarray,
    edge_probs: np.ndarray,
    theta: int,
    rng: np.random.Generator | int | None = None,
    engine: "SamplingEngine | None" = None,
    budget: "RunBudget | None" = None,
) -> "list[np.ndarray] | RRCollection":
    """:func:`sample_rr_sets` minus validation: the hot-path entry.

    ``target_arr`` must be the sorted-unique int64 array produced by
    :func:`repro.utils.validation.as_target_array`; no per-call
    re-validation or re-sorting happens here. With a ``budget``, both
    the engine and the scalar path raise
    :class:`~repro.exceptions.BudgetExceededError` carrying the RR sets
    collected so far once a limit trips.
    """
    if theta <= 0:
        raise InvalidQueryError(f"theta must be positive, got {theta}")
    rng = ensure_rng(rng)
    if engine is not None:
        return engine.sample_rr_sets(
            graph, target_arr, edge_probs, theta, rng, budget=budget
        )

    roots = rng.choice(target_arr, size=theta)
    visited = np.zeros(graph.num_nodes, dtype=bool)
    if budget is None:
        sets = [
            _reverse_reachable_set_into(
                graph, int(root), edge_probs, rng, visited
            )
            for root in roots
        ]
        # Same counter names as the engine driver: the scalar oracle
        # and the vectorized paths must report identical logical work.
        obs.count("rr.samples_drawn", len(sets))
        obs.count("rr.members", sum(s.size for s in sets))
        return sets
    from repro.exceptions import BudgetExceededError

    budget.charge_samples(theta, partial=[])
    sets: list[np.ndarray] = []
    for root in roots:
        sets.append(
            _reverse_reachable_set_into(
                graph, int(root), edge_probs, rng, visited
            )
        )
        try:
            budget.charge_rr_members(sets[-1].size)
        except BudgetExceededError as exc:
            exc.partial = sets
            raise
    obs.count("rr.samples_drawn", len(sets))
    obs.count("rr.members", sum(s.size for s in sets))
    return sets
