"""Reverse-reachable (RR) set sampling.

An RR set for root ``v`` is the set of nodes that can reach ``v`` in a
random possible world. Sampling uses the deferred-decision principle:
a reverse BFS from the root that flips each incoming edge's coin the
first time it is examined, which is distributionally identical to
materializing the whole world first (Borgs et al., SODA 2014).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

import numpy as np

from repro.exceptions import InvalidQueryError
from repro.graphs.tag_graph import TagGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_node_ids


def reverse_reachable_set(
    graph: TagGraph,
    root: int,
    edge_probs: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Sample one RR set for ``root`` with lazy coin flips.

    Returns the member node ids as an array (always includes ``root``).
    """
    rng = ensure_rng(rng)
    check_node_ids([root], graph.num_nodes, context="reverse_reachable_set")

    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[root] = True
    members = [int(root)]
    queue: deque[int] = deque([int(root)])

    rev_indptr, rev_edges = graph.reverse_csr()
    src = graph.src
    while queue:
        node = queue.popleft()
        edge_ids = rev_edges[rev_indptr[node]:rev_indptr[node + 1]]
        if edge_ids.size == 0:
            continue
        coins = rng.random(edge_ids.size) < edge_probs[edge_ids]
        for eid in edge_ids[coins]:
            parent = int(src[eid])
            if not visited[parent]:
                visited[parent] = True
                members.append(parent)
                queue.append(parent)
    return np.array(members, dtype=np.int64)


def rr_set_from_edge_mask(
    graph: TagGraph, root: int, edge_mask: np.ndarray
) -> np.ndarray:
    """RR set for ``root`` in a *fixed* world given by ``edge_mask``.

    Used by the index-based schemes (I-TRS and friends), where the world
    is the union of pre-sampled per-tag possible-world indexes and no
    further coins are flipped.
    """
    check_node_ids([root], graph.num_nodes, context="rr_set_from_edge_mask")
    if edge_mask.shape != (graph.num_edges,):
        raise InvalidQueryError(
            f"edge_mask must have length m={graph.num_edges}, "
            f"got shape {edge_mask.shape}"
        )

    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[root] = True
    members = [int(root)]
    queue: deque[int] = deque([int(root)])

    rev_indptr, rev_edges = graph.reverse_csr()
    src = graph.src
    while queue:
        node = queue.popleft()
        for eid in rev_edges[rev_indptr[node]:rev_indptr[node + 1]]:
            if edge_mask[eid]:
                parent = int(src[eid])
                if not visited[parent]:
                    visited[parent] = True
                    members.append(parent)
                    queue.append(parent)
    return np.array(members, dtype=np.int64)


def sample_rr_sets(
    graph: TagGraph,
    targets: Sequence[int],
    edge_probs: np.ndarray,
    theta: int,
    rng: np.random.Generator | int | None = None,
) -> list[np.ndarray]:
    """Sample ``theta`` targeted RR sets (roots uniform over ``targets``).

    This is the *targeted* refinement: in classical reverse sketching the
    root is uniform over all of ``V``; here it is uniform over ``T``
    only, so coverage fractions estimate spread *within the target set*.
    """
    if theta <= 0:
        raise InvalidQueryError(f"theta must be positive, got {theta}")
    target_list = sorted({int(t) for t in targets})
    if not target_list:
        raise InvalidQueryError("target set must not be empty")
    check_node_ids(target_list, graph.num_nodes, context="sample_rr_sets")
    rng = ensure_rng(rng)

    roots = rng.choice(np.array(target_list, dtype=np.int64), size=theta)
    return [
        reverse_reachable_set(graph, int(root), edge_probs, rng)
        for root in roots
    ]
