"""Greedy maximum coverage over a collection of RR sets.

The second stage of reverse sketching: repeatedly pick the node present
in the most still-uncovered RR sets, remove the sets it covers, repeat
until ``k`` seeds are chosen. This is the classical ``(1 - 1/e)``
greedy for max coverage (Nemhauser et al.).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.exceptions import InvalidQueryError


@dataclass(frozen=True)
class CoverageResult:
    """Outcome of greedy max coverage.

    Attributes
    ----------
    seeds:
        Chosen node ids, in selection order.
    covered:
        Number of RR sets covered by the seeds.
    total:
        Total number of RR sets.
    marginal_covered:
        ``marginal_covered[i]`` is how many *new* RR sets seed ``i``
        covered when it was picked; useful for diagnostics and CELF-style
        analyses.
    """

    seeds: tuple[int, ...]
    covered: int
    total: int
    marginal_covered: tuple[int, ...]

    @property
    def fraction(self) -> float:
        """Covered fraction of RR sets — the spread estimate ``F_R(S)``."""
        if self.total == 0:
            return 0.0
        return self.covered / self.total

    def spread_estimate(self, num_targets: int) -> float:
        """``F_R(S) · |T|`` — the TRS estimate of ``σ(S, T, C1)``."""
        return self.fraction * num_targets


def greedy_max_coverage(
    rr_sets: Sequence[np.ndarray],
    k: int,
    num_nodes: int,
    candidate_nodes: np.ndarray | None = None,
) -> CoverageResult:
    """Select up to ``k`` seeds covering the most RR sets.

    Parameters
    ----------
    rr_sets:
        RR sets as integer arrays of node ids.
    k:
        Seed budget.
    num_nodes:
        Size of the node universe.
    candidate_nodes:
        Optional restriction of the seed universe (e.g. to exclude
        already-chosen seeds); defaults to all nodes.

    Notes
    -----
    When fewer than ``k`` nodes have positive residual coverage, the
    remaining seats are filled with the lowest-id unused candidates so
    the result always has exactly ``min(k, |candidates|)`` seeds — a seed
    with zero marginal coverage still satisfies the budget the caller
    asked for.
    """
    if k <= 0:
        raise InvalidQueryError(f"seed budget k must be positive, got {k}")
    if num_nodes <= 0:
        raise InvalidQueryError("num_nodes must be positive")

    # Flat collections (repro.engine.RRCollection) take the bincount
    # path: same greedy, same tie-breaking, O(total membership) updates.
    if hasattr(rr_sets, "members") and hasattr(rr_sets, "inverted"):
        return _greedy_max_coverage_flat(rr_sets, k, num_nodes, candidate_nodes)

    allowed = np.zeros(num_nodes, dtype=bool)
    if candidate_nodes is None:
        allowed[:] = True
    else:
        allowed[np.asarray(candidate_nodes, dtype=np.int64)] = True

    # node -> list of RR-set indices containing it (restricted to allowed)
    membership: list[list[int]] = [[] for _ in range(num_nodes)]
    counts = np.zeros(num_nodes, dtype=np.int64)
    for idx, rr in enumerate(rr_sets):
        for node in rr.tolist():
            if allowed[node]:
                membership[node].append(idx)
                counts[node] += 1

    covered_sets = np.zeros(len(rr_sets), dtype=bool)
    seeds: list[int] = []
    marginals: list[int] = []
    used = np.zeros(num_nodes, dtype=bool)

    budget = min(k, int(allowed.sum()))
    for _ in range(budget):
        # Each greedy round is one full residual-gain scan (argmax).
        obs.count("coverage.gain_evaluations")
        masked = np.where(allowed & ~used, counts, -1)
        best = int(masked.argmax())
        gain = int(masked[best])
        if gain <= 0:
            break
        seeds.append(best)
        marginals.append(gain)
        used[best] = True
        for rr_idx in membership[best]:
            if not covered_sets[rr_idx]:
                covered_sets[rr_idx] = True
                for node in rr_sets[rr_idx].tolist():
                    if allowed[node]:
                        counts[node] -= 1

    # Fill remaining seats with arbitrary unused candidates.
    if len(seeds) < budget:
        fillers = np.flatnonzero(allowed & ~used)
        for node in fillers[: budget - len(seeds)].tolist():
            seeds.append(int(node))
            marginals.append(0)

    return CoverageResult(
        seeds=tuple(seeds),
        covered=int(covered_sets.sum()),
        total=len(rr_sets),
        marginal_covered=tuple(marginals),
    )


def _greedy_max_coverage_flat(
    rr, k: int, num_nodes: int, candidate_nodes: np.ndarray | None
) -> CoverageResult:
    """Greedy max coverage over a flat :class:`~repro.engine.RRCollection`.

    Identical selection semantics to the list path (same argmax
    tie-breaking, same filler rule), but membership is never rescanned:
    residual per-node counts start as one ``np.bincount`` over the flat
    member array and are decremented with one bincount per pick,
    restricted to the members of the *newly* covered sets — an
    O(total membership) pass overall.
    """
    num_sets = rr.num_sets
    members = rr.members
    set_indptr = rr.indptr
    inv_indptr, inv_sets = rr.inverted()

    allowed = np.zeros(num_nodes, dtype=bool)
    if candidate_nodes is None:
        allowed[:] = True
    else:
        allowed[np.asarray(candidate_nodes, dtype=np.int64)] = True

    allowed_members = allowed[members]
    counts = np.bincount(members[allowed_members], minlength=num_nodes)

    covered_sets = np.zeros(num_sets, dtype=bool)
    seeds: list[int] = []
    marginals: list[int] = []
    used = np.zeros(num_nodes, dtype=bool)

    budget = min(k, int(allowed.sum()))
    for _ in range(budget):
        obs.count("coverage.gain_evaluations")
        masked = np.where(allowed & ~used, counts, -1)
        best = int(masked.argmax())
        gain = int(masked[best])
        if gain <= 0:
            break
        seeds.append(best)
        marginals.append(gain)
        used[best] = True
        newly = inv_sets[inv_indptr[best]:inv_indptr[best + 1]]
        newly = newly[~covered_sets[newly]]
        covered_sets[newly] = True
        # Gather the members of every newly covered set in one pass.
        starts = set_indptr[newly]
        lengths = set_indptr[newly + 1] - starts
        total = int(lengths.sum())
        if total:
            cumulative = np.cumsum(lengths)
            positions = np.arange(total, dtype=np.int64) + np.repeat(
                starts - (cumulative - lengths), lengths
            )
            touched = members[positions]
            touched = touched[allowed[touched]]
            counts -= np.bincount(touched, minlength=num_nodes)

    if len(seeds) < budget:
        fillers = np.flatnonzero(allowed & ~used)
        for node in fillers[: budget - len(seeds)].tolist():
            seeds.append(int(node))
            marginals.append(0)

    return CoverageResult(
        seeds=tuple(seeds),
        covered=int(covered_sets.sum()),
        total=num_sets,
        marginal_covered=tuple(marginals),
    )
