"""Incremental RR-sketch repair for mutable graphs.

A :class:`RepairableSketch` is an RR-set sketch built so that after a
graph edit only the *affected* sets need resampling, with the repaired
sketch **bit-identical** to a cold rebuild from the edited graph with
the same seed. Two properties make this possible:

1.  **Touch traces.** An RR sample examines edge ``(u, v)``'s coin only
    while dequeuing member ``v`` (scalar path) or while ``v`` is in the
    reverse frontier of the sample's world (bit-parallel path). Either
    way, an edit to edge ``e`` can change a set's membership only if
    ``dst(e)`` was a member *before* the edit — so the flat member
    storage of :class:`~repro.engine.RRCollection` doubles as the touch
    trace, and :meth:`RRCollection.dirty_set_ids` answers "which sets
    does this edit dirty?" from the inverted index. Note membership in
    the *old* set is also necessary for growth: an edit can only add
    reachability through ``dst(e)``, which requires ``dst(e)`` to have
    been reachable already.

2.  **Per-set random streams.** The pooled engine's scalar shards feed
    one sequential generator through all of a shard's samples, so
    resampling set ``i`` alone would shift every later set's coins. The
    repairable builder instead derives one child ``SeedSequence`` per
    set (spawned from the shard's sequence, *after* drawing the shard's
    roots) and keeps the spawned children on the sketch: a repaired set
    replays exactly its own stream. The bit-parallel path is already
    per-world counter-based — each sample's coins are a pure function
    of ``(edge id, world, key)`` — with one caveat: the coin counter
    strides by the edge count, so the builder freezes an
    ``edge_capacity >= m`` at build time and hashes against *that*
    stride. Edge additions within capacity leave every existing coin
    untouched; growing past capacity forces a cold rebuild
    (:class:`SketchCapacityError`).

Repair is copy-on-write: :meth:`RepairableSketch.repair` returns a new
sketch (sharing shard records and clean storage), so in-flight readers
of the old sketch never observe a splice.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

import numpy as np

from repro.engine.bitworld import (
    bit_rr_members,
    coin_thresholds,
    live_csr,
    rr_world_of_sample,
    world_edge_mask,
)
from repro.engine.parallel import (
    DEFAULT_BITPARALLEL_SHARD_SIZE,
    DEFAULT_SHARD_SIZE,
    _shard_counts,
)
from repro.engine.rr_storage import RRCollection
from repro.exceptions import InvalidQueryError
from repro.graphs.tag_graph import TagGraph
from repro.sketch.rr_sets import _reverse_reachable_set_into
from repro.sketch.theta import SketchConfig, compute_theta, estimate_opt_t
from repro.utils.validation import as_target_array

__all__ = [
    "REPAIR_MODES",
    "RepairableSketch",
    "SketchCapacityError",
    "build_repairable_sketch",
    "trs_build_repairable_sketch",
]

REPAIR_MODES = ("scalar", "bitparallel")

#: Sub-stream tag separating the TRS pilot's RNG from the build streams,
#: so θ estimation never perturbs (or is perturbed by) sampling coins.
_PILOT_STREAM = 0x70696C
_KEY_MAX = np.iinfo(np.int64).max


class SketchCapacityError(InvalidQueryError):
    """Edits grew the graph past the sketch's frozen edge capacity.

    The bit-parallel coin counter strides by ``edge_capacity``; once the
    edited graph has more edges than that, existing coins can no longer
    be reproduced and the sketch must be rebuilt cold.
    """


@dataclass(frozen=True)
class _Shard:
    """One build shard: its sample range and replay material."""

    start: int  # global id of the shard's first sample
    count: int
    roots: np.ndarray  # per-sample RR roots, shard order
    child_seeds: tuple[np.random.SeedSequence, ...] | None = None  # scalar
    key: int | None = None  # bit-parallel world key


@dataclass(frozen=True)
class RepairableSketch:
    """RR sketch that can be patched in place of resampled wholesale.

    Duck-compatible with :class:`~repro.sketch.TRSSketch` (``rr_sets``,
    ``theta``, ``opt_t_estimate``, ``num_targets``, ``nbytes``), so
    :func:`~repro.sketch.trs_select_from_sketch` consumes one unchanged.
    """

    rr: RRCollection
    theta: int
    mode: str
    seed: int
    shard_size: int
    edge_capacity: int  # bit-parallel coin stride; 0 on the scalar path
    target_arr: np.ndarray
    shards: tuple[_Shard, ...]
    num_targets: int
    opt_t_estimate: float | None = None

    # -- TRSSketch-compatible surface --------------------------------
    @property
    def rr_sets(self) -> RRCollection:
        return self.rr

    @property
    def nbytes(self) -> int:
        shard_bytes = sum(s.roots.nbytes for s in self.shards)
        return int(
            self.rr.members.nbytes + self.rr.indptr.nbytes + shard_bytes
        )

    # -- repair ------------------------------------------------------
    def dirty_set_ids(self, dirty_nodes: np.ndarray) -> np.ndarray:
        """Sets whose touch trace intersects ``dirty_nodes``."""
        return self.rr.dirty_set_ids(dirty_nodes)

    def repair(
        self,
        graph: TagGraph,
        edge_probs: np.ndarray,
        dirty_edges: np.ndarray,
    ) -> tuple["RepairableSketch", dict[str, int]]:
        """Resample only the sets dirtied by ``dirty_edges``.

        ``graph``/``edge_probs`` are the *post-edit* snapshot and its
        edge probabilities for the sketch's tag set. Returns a new
        sketch plus repair stats; the receiver is unmodified. The result
        is bit-identical to :meth:`cold_rebuild` on the same snapshot.
        """
        if edge_probs.shape != (graph.num_edges,):
            raise InvalidQueryError(
                f"edge_probs must have length m={graph.num_edges}, "
                f"got shape {edge_probs.shape}"
            )
        if self.mode == "bitparallel" and graph.num_edges > self.edge_capacity:
            raise SketchCapacityError(
                f"graph has {graph.num_edges} edges, past the sketch's "
                f"frozen capacity {self.edge_capacity} — rebuild cold"
            )
        dirty_edges = np.unique(np.asarray(dirty_edges, dtype=np.int64))
        stats = {
            "dirty_edges": int(dirty_edges.size),
            "dirty_nodes": 0,
            "dirty_sets": 0,
            "total_sets": int(self.theta),
            "resampled_members": 0,
        }
        if not dirty_edges.size:
            return self, stats
        if dirty_edges[0] < 0 or dirty_edges[-1] >= graph.num_edges:
            raise InvalidQueryError(
                f"dirty edge ids outside [0, {graph.num_edges})"
            )
        dirty_nodes = np.unique(graph.dst[dirty_edges])
        stats["dirty_nodes"] = int(dirty_nodes.size)
        set_ids = self.rr.dirty_set_ids(dirty_nodes)
        stats["dirty_sets"] = int(set_ids.size)
        if not set_ids.size:
            return self, stats

        if self.mode == "scalar":
            new_sets = self._resample_scalar(graph, edge_probs, set_ids)
        else:
            new_sets = self._resample_bitparallel(graph, edge_probs, set_ids)
        stats["resampled_members"] = int(sum(s.size for s in new_sets))
        return replace(self, rr=self.rr.replaced(set_ids, new_sets)), stats

    def _resample_scalar(
        self, graph: TagGraph, edge_probs: np.ndarray, set_ids: np.ndarray
    ) -> list[np.ndarray]:
        starts = np.array([s.start for s in self.shards], dtype=np.int64)
        visited = np.zeros(graph.num_nodes, dtype=bool)
        sets: list[np.ndarray] = []
        for sid in set_ids.tolist():
            shard = self.shards[
                int(np.searchsorted(starts, sid, side="right")) - 1
            ]
            local = sid - shard.start
            rng = np.random.default_rng(shard.child_seeds[local])
            sets.append(
                _reverse_reachable_set_into(
                    graph, int(shard.roots[local]), edge_probs, rng, visited
                )
            )
        return sets

    def _resample_bitparallel(
        self, graph: TagGraph, edge_probs: np.ndarray, set_ids: np.ndarray
    ) -> list[np.ndarray]:
        thr_pad = np.zeros(self.edge_capacity, dtype=np.uint64)
        thr_pad[: graph.num_edges] = coin_thresholds(edge_probs)
        starts = np.array([s.start for s in self.shards], dtype=np.int64)
        owner = np.searchsorted(starts, set_ids, side="right") - 1
        sets: list[np.ndarray] = []
        for shard_idx in np.unique(owner).tolist():
            shard = self.shards[shard_idx]
            for sid in set_ids[owner == shard_idx].tolist():
                local = sid - shard.start
                block, lane = rr_world_of_sample(
                    shard.roots, local, graph.num_nodes
                )
                mask = world_edge_mask(
                    self.edge_capacity, thr_pad, shard.key, block, lane
                )[: graph.num_edges]
                sets.append(
                    _replay_fixed_world(
                        graph, int(shard.roots[local]), mask
                    )
                )
        return sets

    def cold_rebuild(
        self, graph: TagGraph, edge_probs: np.ndarray
    ) -> "RepairableSketch":
        """Rebuild from scratch with the stored seed and geometry.

        θ is *not* re-derived — the repairable contract is that repair
        and rebuild agree bit-for-bit, which requires identical shard
        geometry. Callers wanting a re-sized sketch build a fresh one.
        """
        return build_repairable_sketch(
            graph,
            self.target_arr,
            edge_probs,
            self.theta,
            seed=self.seed,
            mode=self.mode,
            shard_size=self.shard_size,
            edge_capacity=self.edge_capacity or None,
            num_targets=self.num_targets,
            opt_t_estimate=self.opt_t_estimate,
        )


def build_repairable_sketch(
    graph: TagGraph,
    targets: Sequence[int] | np.ndarray,
    edge_probs: np.ndarray,
    theta: int,
    *,
    seed: int,
    mode: str = "scalar",
    shard_size: int | None = None,
    edge_capacity: int | None = None,
    num_targets: int | None = None,
    opt_t_estimate: float | None = None,
) -> RepairableSketch:
    """Sample θ targeted RR sets with per-set repairable randomness.

    ``seed`` must be an integer (not a live generator): the sketch
    stores it so a cold rebuild can replay the exact stream tree.
    ``edge_capacity`` (bit-parallel only) freezes the coin-counter
    stride; it defaults to ``m`` plus 25% headroom (min 64 edges) so
    moderate edge-addition churn repairs in place.
    """
    if mode not in REPAIR_MODES:
        raise InvalidQueryError(
            f"mode must be one of {REPAIR_MODES}, got {mode!r}"
        )
    if theta <= 0:
        raise InvalidQueryError(f"theta must be positive, got {theta}")
    target_arr = as_target_array(
        targets, graph.num_nodes, context="build_repairable_sketch"
    )
    if edge_probs.shape != (graph.num_edges,):
        raise InvalidQueryError(
            f"edge_probs must have length m={graph.num_edges}, "
            f"got shape {edge_probs.shape}"
        )
    if mode == "bitparallel":
        if edge_capacity is None:
            edge_capacity = graph.num_edges + max(64, graph.num_edges // 4)
        if edge_capacity < graph.num_edges:
            raise InvalidQueryError(
                f"edge_capacity {edge_capacity} below current edge count "
                f"{graph.num_edges}"
            )
    else:
        edge_capacity = 0
    if shard_size is None:
        shard_size = (
            DEFAULT_BITPARALLEL_SHARD_SIZE
            if mode == "bitparallel"
            else DEFAULT_SHARD_SIZE
        )

    master = np.random.default_rng(int(seed))
    counts = _shard_counts(int(theta), int(shard_size))
    streams = master.bit_generator.seed_seq.spawn(len(counts))

    shards: list[_Shard] = []
    collections: list[RRCollection] = []
    visited = np.zeros(graph.num_nodes, dtype=bool)
    thr53 = coin_thresholds(edge_probs) if mode == "bitparallel" else None
    if mode == "bitparallel":
        rev_indptr, rev_edges = graph.reverse_csr()
        live_indptr, live_edges = live_csr(rev_indptr, rev_edges, edge_probs)
    start = 0
    for count, stream in zip(counts, streams):
        shard_rng = np.random.default_rng(stream)
        roots = shard_rng.choice(target_arr, size=count)
        if mode == "scalar":
            child_seeds = tuple(stream.spawn(count))
            sets = [
                _reverse_reachable_set_into(
                    graph,
                    int(roots[i]),
                    edge_probs,
                    np.random.default_rng(child_seeds[i]),
                    visited,
                )
                for i in range(count)
            ]
            collections.append(RRCollection.from_sets(sets, graph.num_nodes))
            shards.append(
                _Shard(start, count, roots, child_seeds=child_seeds)
            )
        else:
            key = int(shard_rng.integers(_KEY_MAX, dtype=np.int64))
            members, indptr = bit_rr_members(
                graph.num_nodes,
                edge_capacity,
                live_indptr,
                live_edges,
                graph.src,
                roots,
                thr53,
                key,
            )
            collections.append(
                RRCollection(members, indptr, graph.num_nodes)
            )
            shards.append(_Shard(start, count, roots, key=key))
        start += count

    rr = (
        RRCollection.concat(collections)
        if len(collections) != 1
        else collections[0]
    )
    if not collections:
        rr = RRCollection.from_sets([], graph.num_nodes)
    return RepairableSketch(
        rr=rr,
        theta=int(theta),
        mode=mode,
        seed=int(seed),
        shard_size=int(shard_size),
        edge_capacity=int(edge_capacity),
        target_arr=target_arr,
        shards=tuple(shards),
        num_targets=(
            int(num_targets) if num_targets is not None else target_arr.size
        ),
        opt_t_estimate=opt_t_estimate,
    )


def trs_build_repairable_sketch(
    graph: TagGraph,
    targets: Sequence[int] | np.ndarray,
    tags: Sequence[str],
    k: int,
    *,
    seed: int,
    config: SketchConfig = SketchConfig(),
    mode: str = "scalar",
    shard_size: int | None = None,
    edge_capacity: int | None = None,
    engine=None,
) -> RepairableSketch:
    """TRS pipeline (pilot → θ → sample) on the repairable sampler.

    θ is derived once, at initial build; subsequent repairs keep it (the
    statistical gates tolerate the drift for sparse edits — see
    ``docs/mutability.md``). The pilot runs on a dedicated sub-stream of
    ``seed`` so its RNG consumption cannot shift the build coins.
    """
    edge_probs = graph.edge_probabilities(tags)
    pilot_rng = np.random.default_rng([int(seed), _PILOT_STREAM])
    opt_t = estimate_opt_t(
        graph, targets, edge_probs, k, config, pilot_rng, engine=engine
    )
    target_arr = as_target_array(
        targets, graph.num_nodes, context="trs_build_repairable_sketch"
    )
    theta = compute_theta(
        graph.num_nodes, k, int(target_arr.size), opt_t, config
    )
    return build_repairable_sketch(
        graph,
        target_arr,
        edge_probs,
        theta,
        seed=seed,
        mode=mode,
        shard_size=shard_size,
        edge_capacity=edge_capacity,
        opt_t_estimate=opt_t,
    )


def _replay_fixed_world(
    graph: TagGraph, root: int, edge_mask: np.ndarray
) -> np.ndarray:
    """Level-synchronous reverse BFS over a fixed world, kernel order.

    :func:`bit_rr_members` emits each sample's members root-first, then
    per BFS level the newly-reached nodes in ascending node id (a
    consequence of its packed ``(block, node, lane)`` canonical sort).
    Queue-order BFS (:func:`~repro.sketch.rr_sets.rr_set_from_edge_mask`)
    visits the same members but interleaves levels differently, so the
    repair path replays level-by-level with a sorted frontier to stay
    bit-identical.
    """
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[root] = True
    members = [np.array([root], dtype=np.int64)]
    frontier = members[0]
    rev_indptr, rev_edges = graph.reverse_csr()
    src = graph.src
    while frontier.size:
        edge_start = rev_indptr[frontier]
        degrees = rev_indptr[frontier + 1] - edge_start
        total = int(degrees.sum())
        if total == 0:
            break
        offsets = np.zeros(frontier.size, dtype=np.int64)
        np.cumsum(degrees[:-1], out=offsets[1:])
        positions = np.arange(total, dtype=np.int64)
        positions += np.repeat(edge_start - offsets, degrees)
        eids = rev_edges[positions]
        eids = eids[edge_mask[eids]]
        parents = np.unique(src[eids])  # unique() sorts — kernel order
        parents = parents[~visited[parents]]
        if parents.size == 0:
            break
        visited[parents] = True
        members.append(parents)
        frontier = parents
    return np.concatenate(members)
