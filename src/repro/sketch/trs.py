"""TRS — Targeted Reverse Sketching seed selection (paper Section 3.1).

The workflow (paper, verbatim):

1. generate θ random RR sets whose roots are sampled uniformly from the
   *target set* ``T``;
2. greedily pick the node covering the most RR sets, remove the covered
   sets, repeat until ``k`` seeds are found.

With θ from Theorem 5 this is ``(1 - 1/e - ε)``-approximate with high
probability. TRS is the guarantee-bearing reference engine the indexing
schemes (I-TRS / L-TRS / LL-TRS) are benchmarked against.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.exceptions import BudgetExceededError
from repro.graphs.tag_graph import TagGraph
from repro.sketch.coverage import greedy_max_coverage
from repro.sketch.rr_sets import sample_rr_sets_validated
from repro.sketch.theta import SketchConfig, compute_theta, estimate_opt_t
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import (
    as_target_array,
    check_budget,
    check_tags_exist,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.parallel import SamplingEngine
    from repro.engine.runtime import RunBudget


@dataclass(frozen=True)
class TRSResult:
    """Outcome of a reverse-sketching seed selection.

    Attributes
    ----------
    seeds:
        The selected top-``k`` seed nodes, in selection order.
    estimated_spread:
        ``F_R(S) · |T|`` — expected number of influenced targets.
    theta:
        Number of RR sets used.
    opt_t_estimate:
        The OPT_T lower bound that sized θ (``None`` for engines that
        size θ differently).
    elapsed_seconds:
        Wall-clock time of the whole selection.
    telemetry:
        Runtime failure counters (shards retried, pool rebuilds, ...)
        when an engine with a fault-tolerant runtime ran the sampling;
        ``None`` on the scalar path.
    report:
        Structured observability report (metrics + trace + phases, see
        ``docs/observability.md``) when the call ran inside an
        :func:`repro.obs.observe` scope; ``None`` otherwise.
    """

    seeds: tuple[int, ...]
    estimated_spread: float
    theta: int
    opt_t_estimate: float | None
    elapsed_seconds: float
    telemetry: dict | None = None
    report: dict | None = None

    def spread_fraction(self, num_targets: int) -> float:
        """Estimated spread as a fraction of the target-set size."""
        if num_targets <= 0:
            return 0.0
        return self.estimated_spread / num_targets


def trs_select_seeds(
    graph: TagGraph,
    targets: Sequence[int],
    tags: Sequence[str],
    k: int,
    config: SketchConfig = SketchConfig(),
    rng: np.random.Generator | int | None = None,
    engine: "SamplingEngine | None" = None,
    budget: "RunBudget | None" = None,
) -> TRSResult:
    """Select the top-``k`` seeds for spread within ``targets`` given ``tags``.

    Parameters
    ----------
    graph:
        The tagged uncertain graph.
    targets:
        Target customer node ids (``T``).
    tags:
        The campaign tag set ``C1`` (fixed for this call); edge
        probabilities are its independent aggregation.
    k:
        Seed budget.
    config:
        Sketching knobs (ε, pilot size, θ clamps).
    rng:
        Seed or generator.
    engine:
        Optional :class:`~repro.engine.SamplingEngine` for
        frontier-batched / multi-process RR sampling. ``None`` keeps the
        scalar oracle path (bit-compatible for fixed seeds).
    budget:
        Optional :class:`~repro.engine.RunBudget`. When a limit trips
        mid-sampling, the raised
        :class:`~repro.exceptions.BudgetExceededError` carries a best-
        effort partial :class:`TRSResult` (greedy coverage of the RR
        sets collected so far) in ``exc.partial``.

    Targets are validated once here; the pilot and main sampling passes
    receive the pre-validated array.
    """
    rng = ensure_rng(rng)
    check_budget(k, graph.num_nodes, what="seeds")
    check_tags_exist(tags, graph.tags)
    target_arr = as_target_array(
        targets, graph.num_nodes, context="trs_select_seeds"
    )
    num_targets = int(target_arr.size)

    timer = Timer()
    opt_t: float | None = None
    try:
        with timer, obs.span("trs", k=k, num_targets=num_targets) as trs_span:
            edge_probs = graph.edge_probabilities(tags)
            with obs.span("trs.pilot"):
                opt_t = estimate_opt_t(
                    graph, target_arr, edge_probs, k, config, rng,
                    engine=engine, budget=budget,
                )
            theta = compute_theta(
                graph.num_nodes, k, num_targets, opt_t, config
            )
            obs.gauge("trs.theta", theta)
            trs_span.set(theta=theta)
            with obs.span("trs.sample", theta=theta):
                rr_sets = sample_rr_sets_validated(
                    graph, target_arr, edge_probs, theta, rng,
                    engine=engine, budget=budget,
                )
            with obs.span("trs.cover"):
                coverage = greedy_max_coverage(rr_sets, k, graph.num_nodes)
    except BudgetExceededError as exc:
        exc.partial = _partial_trs_result(
            exc.partial, k, graph.num_nodes, num_targets, opt_t,
            timer.elapsed, engine,
        )
        raise

    return TRSResult(
        seeds=coverage.seeds,
        estimated_spread=coverage.spread_estimate(num_targets),
        theta=theta,
        opt_t_estimate=opt_t,
        elapsed_seconds=timer.elapsed,
        telemetry=engine.telemetry.as_dict() if engine is not None else None,
        report=obs.snapshot_report(),
    )


def _partial_trs_result(
    partial_sets,
    k: int,
    num_nodes: int,
    num_targets: int,
    opt_t: float | None,
    elapsed: float,
    engine: "SamplingEngine | None",
) -> TRSResult:
    """Best-effort :class:`TRSResult` from the RR sets a budget stop left.

    The seeds still greedily cover whatever was sampled; only the
    statistical guarantee (which needs the full θ) is forfeit.
    """
    sets = partial_sets if partial_sets is not None else []
    collected = len(sets)
    if collected > 0:
        coverage = greedy_max_coverage(sets, min(k, collected), num_nodes)
        seeds = coverage.seeds
        spread = coverage.spread_estimate(num_targets)
    else:
        seeds, spread = (), 0.0
    return TRSResult(
        seeds=seeds,
        estimated_spread=spread,
        theta=collected,
        opt_t_estimate=opt_t,
        elapsed_seconds=elapsed,
        telemetry=engine.telemetry.as_dict() if engine is not None else None,
    )
