"""TRS — Targeted Reverse Sketching seed selection (paper Section 3.1).

The workflow (paper, verbatim):

1. generate θ random RR sets whose roots are sampled uniformly from the
   *target set* ``T``;
2. greedily pick the node covering the most RR sets, remove the covered
   sets, repeat until ``k`` seeds are found.

With θ from Theorem 5 this is ``(1 - 1/e - ε)``-approximate with high
probability. TRS is the guarantee-bearing reference engine the indexing
schemes (I-TRS / L-TRS / LL-TRS) are benchmarked against.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.exceptions import BudgetExceededError
from repro.graphs.tag_graph import TagGraph
from repro.sketch.coverage import greedy_max_coverage
from repro.sketch.rr_sets import sample_rr_sets_validated
from repro.sketch.theta import SketchConfig, compute_theta, estimate_opt_t
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import (
    as_target_array,
    check_budget,
    check_tags_exist,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.parallel import SamplingEngine
    from repro.engine.runtime import RunBudget


@dataclass(frozen=True)
class TRSResult:
    """Outcome of a reverse-sketching seed selection.

    Attributes
    ----------
    seeds:
        The selected top-``k`` seed nodes, in selection order.
    estimated_spread:
        ``F_R(S) · |T|`` — expected number of influenced targets.
    theta:
        Number of RR sets used.
    opt_t_estimate:
        The OPT_T lower bound that sized θ (``None`` for engines that
        size θ differently).
    elapsed_seconds:
        Wall-clock time of the whole selection.
    telemetry:
        Runtime failure counters (shards retried, pool rebuilds, ...)
        when an engine with a fault-tolerant runtime ran the sampling;
        ``None`` on the scalar path.
    report:
        Structured observability report (metrics + trace + phases, see
        ``docs/observability.md``) when the call ran inside an
        :func:`repro.obs.observe` scope; ``None`` otherwise.
    """

    seeds: tuple[int, ...]
    estimated_spread: float
    theta: int
    opt_t_estimate: float | None
    elapsed_seconds: float
    telemetry: dict | None = None
    report: dict | None = None

    def spread_fraction(self, num_targets: int) -> float:
        """Estimated spread as a fraction of the target-set size."""
        if num_targets <= 0:
            return 0.0
        return self.estimated_spread / num_targets


@dataclass(frozen=True)
class TRSSketch:
    """A reusable targeted RR sketch: the expensive half of TRS.

    Produced by :func:`trs_build_sketch`; consumed by
    :func:`trs_select_from_sketch`. The sketch captures everything the
    greedy cover needs — the sampled RR sets plus the θ bookkeeping —
    so a serving layer can build it once and answer repeat queries with
    only the (cheap, deterministic) cover pass.

    The RR sets are *logically read-only*: greedy cover never mutates
    them, so one sketch may back many concurrent selections.
    """

    rr_sets: object
    theta: int
    opt_t_estimate: float | None
    num_targets: int

    @property
    def nbytes(self) -> int:
        """Approximate payload size, for byte-accounted caches."""
        sets = self.rr_sets
        members = getattr(sets, "members", None)
        if members is not None:  # RRCollection: CSR arrays
            return int(members.nbytes) + int(sets.indptr.nbytes)
        total = 0
        for arr in sets:
            total += int(getattr(arr, "nbytes", 8 * len(arr)))
        return total


def _build_sketch_phases(
    graph: TagGraph,
    target_arr: np.ndarray,
    tags: Sequence[str],
    k: int,
    config: SketchConfig,
    rng: np.random.Generator,
    engine: "SamplingEngine | None",
    budget: "RunBudget | None",
    trs_span=None,
    state: dict | None = None,
):
    """Shared pilot → θ → sampling pipeline (spans included).

    This is the single code path behind both :func:`trs_select_seeds`
    and :func:`trs_build_sketch`, so the two are bit-identical by
    construction: same RNG consumption order, same spans, same budget
    behavior. ``state`` (when given) receives ``opt_t`` as soon as the
    pilot finishes, so budget-stop handlers can report it even when the
    main sampling pass trips the budget.
    """
    num_targets = int(target_arr.size)
    edge_probs = graph.edge_probabilities(tags)
    with obs.span("trs.pilot"):
        opt_t = estimate_opt_t(
            graph, target_arr, edge_probs, k, config, rng,
            engine=engine, budget=budget,
        )
    if state is not None:
        state["opt_t"] = opt_t
    theta = compute_theta(graph.num_nodes, k, num_targets, opt_t, config)
    obs.gauge("trs.theta", theta)
    if trs_span is not None:
        trs_span.set(theta=theta)
    with obs.span("trs.sample", theta=theta):
        rr_sets = sample_rr_sets_validated(
            graph, target_arr, edge_probs, theta, rng,
            engine=engine, budget=budget,
        )
    return rr_sets, theta, opt_t


def trs_build_sketch(
    graph: TagGraph,
    targets: Sequence[int],
    tags: Sequence[str],
    k: int,
    config: SketchConfig = SketchConfig(),
    rng: np.random.Generator | int | None = None,
    engine: "SamplingEngine | None" = None,
    budget: "RunBudget | None" = None,
) -> TRSSketch:
    """Run TRS's sampling half and return the reusable :class:`TRSSketch`.

    Validates inputs exactly like :func:`trs_select_seeds`, runs the
    pilot, sizes θ, and draws the targeted RR sets — but stops short of
    seed selection. ``trs_select_from_sketch(graph, sketch, k)``
    then yields the same seeds :func:`trs_select_seeds` would have,
    because both share one pipeline (and greedy cover is deterministic).

    Note the sketch depends on ``k`` and the RNG state (the pilot's RNG
    draws vary with ``k``), so cache keys for sketches must include
    both, not just ``(targets, tags)``.
    """
    rng = ensure_rng(rng)
    check_budget(k, graph.num_nodes, what="seeds")
    check_tags_exist(tags, graph.tags)
    target_arr = as_target_array(
        targets, graph.num_nodes, context="trs_build_sketch"
    )
    num_targets = int(target_arr.size)
    state: dict = {}
    timer = Timer()
    try:
        with timer:
            rr_sets, theta, opt_t = _build_sketch_phases(
                graph, target_arr, tags, k, config, rng, engine, budget,
                state=state,
            )
    except BudgetExceededError as exc:
        exc.partial = _partial_trs_result(
            exc.partial, k, graph.num_nodes, num_targets,
            state.get("opt_t"), timer.elapsed, engine,
        )
        raise
    return TRSSketch(
        rr_sets=rr_sets,
        theta=theta,
        opt_t_estimate=opt_t,
        num_targets=num_targets,
    )


def trs_select_from_sketch(
    graph: TagGraph,
    sketch: TRSSketch,
    k: int,
    engine: "SamplingEngine | None" = None,
) -> TRSResult:
    """Greedy-cover ``k`` seeds out of a prebuilt :class:`TRSSketch`.

    Pure deterministic selection — consumes no RNG and never mutates
    the sketch, so any number of callers (threads) may select from one
    shared sketch concurrently.
    """
    check_budget(k, graph.num_nodes, what="seeds")
    timer = Timer()
    with timer, obs.span("trs.cover"):
        coverage = greedy_max_coverage(sketch.rr_sets, k, graph.num_nodes)
    return TRSResult(
        seeds=coverage.seeds,
        estimated_spread=coverage.spread_estimate(sketch.num_targets),
        theta=sketch.theta,
        opt_t_estimate=sketch.opt_t_estimate,
        elapsed_seconds=timer.elapsed,
        telemetry=engine.telemetry.as_dict() if engine is not None else None,
        report=obs.snapshot_report(),
    )


def trs_select_seeds(
    graph: TagGraph,
    targets: Sequence[int],
    tags: Sequence[str],
    k: int,
    config: SketchConfig = SketchConfig(),
    rng: np.random.Generator | int | None = None,
    engine: "SamplingEngine | None" = None,
    budget: "RunBudget | None" = None,
) -> TRSResult:
    """Select the top-``k`` seeds for spread within ``targets`` given ``tags``.

    Parameters
    ----------
    graph:
        The tagged uncertain graph.
    targets:
        Target customer node ids (``T``).
    tags:
        The campaign tag set ``C1`` (fixed for this call); edge
        probabilities are its independent aggregation.
    k:
        Seed budget.
    config:
        Sketching knobs (ε, pilot size, θ clamps).
    rng:
        Seed or generator.
    engine:
        Optional :class:`~repro.engine.SamplingEngine` for
        frontier-batched / multi-process RR sampling. ``None`` keeps the
        scalar oracle path (bit-compatible for fixed seeds).
    budget:
        Optional :class:`~repro.engine.RunBudget`. When a limit trips
        mid-sampling, the raised
        :class:`~repro.exceptions.BudgetExceededError` carries a best-
        effort partial :class:`TRSResult` (greedy coverage of the RR
        sets collected so far) in ``exc.partial``.

    Targets are validated once here; the pilot and main sampling passes
    receive the pre-validated array.
    """
    rng = ensure_rng(rng)
    check_budget(k, graph.num_nodes, what="seeds")
    check_tags_exist(tags, graph.tags)
    target_arr = as_target_array(
        targets, graph.num_nodes, context="trs_select_seeds"
    )
    num_targets = int(target_arr.size)

    timer = Timer()
    state: dict = {}
    try:
        with timer, obs.span("trs", k=k, num_targets=num_targets) as trs_span:
            rr_sets, theta, opt_t = _build_sketch_phases(
                graph, target_arr, tags, k, config, rng, engine, budget,
                trs_span=trs_span, state=state,
            )
            with obs.span("trs.cover"):
                coverage = greedy_max_coverage(rr_sets, k, graph.num_nodes)
    except BudgetExceededError as exc:
        exc.partial = _partial_trs_result(
            exc.partial, k, graph.num_nodes, num_targets,
            state.get("opt_t"), timer.elapsed, engine,
        )
        raise

    return TRSResult(
        seeds=coverage.seeds,
        estimated_spread=coverage.spread_estimate(num_targets),
        theta=theta,
        opt_t_estimate=opt_t,
        elapsed_seconds=timer.elapsed,
        telemetry=engine.telemetry.as_dict() if engine is not None else None,
        report=obs.snapshot_report(),
    )


def _partial_trs_result(
    partial_sets,
    k: int,
    num_nodes: int,
    num_targets: int,
    opt_t: float | None,
    elapsed: float,
    engine: "SamplingEngine | None",
) -> TRSResult:
    """Best-effort :class:`TRSResult` from the RR sets a budget stop left.

    The seeds still greedily cover whatever was sampled; only the
    statistical guarantee (which needs the full θ) is forfeit.
    """
    sets = partial_sets if partial_sets is not None else []
    collected = len(sets)
    if collected > 0:
        coverage = greedy_max_coverage(sets, min(k, collected), num_nodes)
        seeds = coverage.seeds
        spread = coverage.spread_estimate(num_targets)
    else:
        seeds, spread = (), 0.0
    return TRSResult(
        seeds=seeds,
        estimated_spread=spread,
        theta=collected,
        opt_t_estimate=opt_t,
        elapsed_seconds=elapsed,
        telemetry=engine.telemetry.as_dict() if engine is not None else None,
    )
