"""Sample-size (θ) computation for targeted reverse sketching.

Theorem 5 of the paper: TRS returns a ``(1 - 1/e - ε)``-approximate seed
set with probability at least ``1 - n⁻¹ C(n,k)⁻¹`` when

    θ ≥ (8 + 2ε) · |T| · (ln n + ln C(n,k) + ln 2) / (OPT_T · ε²).

``OPT_T`` (the best achievable spread in the target set with ``k``
seeds) is unknown; as in TIM/IMM we estimate a lower bound from a pilot
batch of RR sets — under-estimating OPT_T only *increases* θ, which is
the safe direction for the guarantee. A ``theta_max`` knob keeps pure
Python runs bounded (the paper's C++ ran millions of RR sets; see
DESIGN.md on absolute-number substitutions).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.exceptions import ConfigurationError, EstimationError
from repro.graphs.tag_graph import TagGraph
from repro.sketch.coverage import greedy_max_coverage
from repro.sketch.rr_sets import sample_rr_sets_validated
from repro.utils.mathx import log_binomial
from repro.utils.rng import ensure_rng
from repro.utils.validation import as_target_array

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.parallel import SamplingEngine
    from repro.engine.runtime import RunBudget


@dataclass(frozen=True)
class SketchConfig:
    """Knobs for reverse-sketching-based seed selection.

    Attributes
    ----------
    epsilon:
        Approximation slack ε of Theorem 5 (paper default 0.1).
    pilot_samples:
        RR sets drawn to estimate ``OPT_T`` before computing θ.
    theta_min, theta_max:
        Clamp on the final θ — ``theta_max`` trades guarantee for
        tractability on a pure-Python substrate (documented substitution).
    delta:
        Probabilistic bound parameter of Theorem 6 (index correlation),
        paper default 0.01.
    alpha:
        Upper bound on the average number of pairwise common indexes
        (Theorem 6), paper default 1.0.
    h:
        Hop threshold of the local region for LL-TRS, paper default 3.
    """

    epsilon: float = 0.1
    pilot_samples: int = 300
    theta_min: int = 200
    theta_max: int = 20_000
    delta: float = 0.01
    alpha: float = 1.0
    h: int = 3

    def __post_init__(self) -> None:
        if not (0.0 < self.epsilon < 1.0):
            raise ConfigurationError(
                f"epsilon must lie in (0, 1), got {self.epsilon}"
            )
        if self.pilot_samples <= 0:
            raise ConfigurationError("pilot_samples must be positive")
        if not (0 < self.theta_min <= self.theta_max):
            raise ConfigurationError(
                "require 0 < theta_min <= theta_max, got "
                f"{self.theta_min}, {self.theta_max}"
            )
        if not (0.0 < self.delta < 1.0):
            raise ConfigurationError(
                f"delta must lie in (0, 1), got {self.delta}"
            )
        if self.alpha <= 0.0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")
        if self.h < 0:
            raise ConfigurationError(f"h must be >= 0, got {self.h}")

    def with_epsilon(self, epsilon: float) -> "SketchConfig":
        """Copy of this config with a different ε (for sensitivity sweeps)."""
        return replace(self, epsilon=epsilon)


def compute_theta(
    num_nodes: int,
    k: int,
    num_targets: int,
    opt_t: float,
    config: SketchConfig = SketchConfig(),
) -> int:
    """θ of Theorem 5, clamped to ``[theta_min, theta_max]``.

    Parameters
    ----------
    num_nodes:
        ``n`` — graph size (enters through ``ln n + ln C(n,k)``).
    k:
        Seed budget.
    num_targets:
        ``|T|``.
    opt_t:
        (A lower bound on) the optimum targeted spread ``OPT_T``.
    """
    if opt_t <= 0.0:
        raise EstimationError(
            "OPT_T must be positive to compute theta; the target set is "
            "likely unreachable by any seed"
        )
    eps = config.epsilon
    log_term = math.log(num_nodes) + log_binomial(num_nodes, k) + math.log(2.0)
    theta = (8.0 + 2.0 * eps) * num_targets * log_term / (opt_t * eps * eps)
    return int(min(max(math.ceil(theta), config.theta_min), config.theta_max))


def estimate_opt_t(
    graph: TagGraph,
    targets: Sequence[int] | np.ndarray,
    edge_probs: np.ndarray,
    k: int,
    config: SketchConfig = SketchConfig(),
    rng: np.random.Generator | int | None = None,
    engine: "SamplingEngine | None" = None,
    budget: "RunBudget | None" = None,
) -> float:
    """Lower-bound ``OPT_T`` from a pilot batch of targeted RR sets.

    Greedy coverage of the pilot batch yields a feasible seed set; its
    estimated spread ``F_R(S)·|T|`` is (in expectation, up to sampling
    noise) a valid lower bound on the optimum. The bound is floored at
    ``1.0``: any seed placed *at* a target influences at least itself.

    An int64 ndarray ``targets`` is treated as pre-validated (the
    contract of :func:`repro.utils.validation.as_target_array`) and used
    as-is — TRS/I-TRS call this once per iteration and validate at their
    own boundary.
    """
    rng = ensure_rng(rng)
    if isinstance(targets, np.ndarray) and targets.dtype == np.int64:
        target_arr = targets
    else:
        target_arr = as_target_array(
            targets, graph.num_nodes, context="estimate_opt_t"
        )
    with obs.span("sketch.pilot", pilot_samples=config.pilot_samples):
        pilot = sample_rr_sets_validated(
            graph, target_arr, edge_probs, config.pilot_samples, rng,
            engine=engine, budget=budget,
        )
        result = greedy_max_coverage(pilot, k, graph.num_nodes)
    obs.count("sketch.pilot_batches")
    return max(result.spread_estimate(int(target_arr.size)), 1.0)
