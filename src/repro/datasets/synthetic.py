"""Random social-graph generation with hubs and community structure.

The generator produces directed graphs with the two structural
properties the paper's algorithms exploit:

* **hubs** — in-degree follows a power law (preferential attachment by
  Zipfian attractiveness), so "BFS from high in-degree nodes" finds
  meaningful target clusters;
* **communities** — most edges stay inside a node's community, so the
  local region around a community-shaped target set is small relative to
  the graph and LL-TRS's local indexing pays off.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import ensure_rng


def generate_community_graph(
    num_nodes: int,
    num_communities: int = 4,
    avg_out_degree: float = 6.0,
    intra_community_fraction: float = 0.8,
    attractiveness_exponent: float = 0.8,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate a directed community graph; returns ``(src, dst, communities)``.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    num_communities:
        Number of (equal-sized, contiguous-id) communities.
    avg_out_degree:
        Mean out-degree; per-node degrees are ``1 + Poisson(mean - 1)``.
    intra_community_fraction:
        Probability that an edge's destination is drawn from the source's
        own community (locality knob).
    attractiveness_exponent:
        Zipf exponent of destination attractiveness — larger means more
        pronounced hubs.

    Notes
    -----
    Self-loops and duplicate edges are rejected (bounded retries), so
    the realized out-degree can fall slightly below the drawn one in
    tiny communities.
    """
    if num_nodes <= 1:
        raise ConfigurationError(f"num_nodes must be > 1, got {num_nodes}")
    if not (1 <= num_communities <= num_nodes):
        raise ConfigurationError(
            "num_communities must lie in [1, num_nodes], got "
            f"{num_communities}"
        )
    if avg_out_degree < 1.0:
        raise ConfigurationError("avg_out_degree must be >= 1")
    if not (0.0 <= intra_community_fraction <= 1.0):
        raise ConfigurationError(
            "intra_community_fraction must lie in [0, 1]"
        )
    rng = ensure_rng(rng)

    communities = np.arange(num_nodes) % num_communities
    communities = np.sort(communities)

    # Zipfian attractiveness over a random permutation, so hub identity
    # is independent of node id.
    ranks = rng.permutation(num_nodes) + 1
    attractiveness = ranks.astype(np.float64) ** (-attractiveness_exponent)

    member_lists = [
        np.flatnonzero(communities == c) for c in range(num_communities)
    ]
    member_probs = []
    for members in member_lists:
        weights = attractiveness[members]
        member_probs.append(weights / weights.sum())
    global_probs = attractiveness / attractiveness.sum()
    all_nodes = np.arange(num_nodes)

    src_list: list[int] = []
    dst_list: list[int] = []
    seen: set[tuple[int, int]] = set()
    out_degrees = 1 + rng.poisson(max(avg_out_degree - 1.0, 0.0), num_nodes)
    for u in range(num_nodes):
        community = int(communities[u])
        for _ in range(int(out_degrees[u])):
            for _attempt in range(8):
                if rng.random() < intra_community_fraction:
                    v = int(
                        rng.choice(
                            member_lists[community],
                            p=member_probs[community],
                        )
                    )
                else:
                    v = int(rng.choice(all_nodes, p=global_probs))
                if v != u and (u, v) not in seen:
                    seen.add((u, v))
                    src_list.append(u)
                    dst_list.append(v)
                    break

    return (
        np.array(src_list, dtype=np.int64),
        np.array(dst_list, dtype=np.int64),
        communities,
    )
