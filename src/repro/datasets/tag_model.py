"""Tag assignment and the frequency → probability transform.

Follows the paper's Section 6.1 recipe: for every edge ``(u, v)`` and
tag ``c``, a co-occurrence frequency ``t`` is drawn, and the influence
probability is ``p((u, v) | c) = 1 - exp(-t / a)`` (Potamias et al.),
with ``a`` per dataset (5 for DBLP/Twitter, 10 for Yelp, 1000 for
lastFM whose listening-history counts are large). Synthetic frequencies
mix a Zipfian global tag popularity with a per-community preference
pool, so tags are *correlated with where targets live* — the property
the case study (Table 1/Figure 2) and FT initialization rely on.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class TagModelConfig:
    """Knobs for synthetic tag assignment.

    Attributes
    ----------
    a:
        Probability-transform scale: ``p = 1 - exp(-t / a)``.
    tags_per_edge_mean:
        Mean number of distinct tags per edge (``1 + Poisson(mean - 1)``).
    zipf_exponent:
        Global tag-popularity skew.
    community_affinity:
        Probability that an edge's tag is drawn from the source
        community's preferred pool instead of the global distribution.
    preferred_pool_size:
        How many tags each community prefers.
    freq_mean:
        Mean co-occurrence frequency ``t`` (``1 + Poisson(mean - 1)``).
    """

    a: float = 5.0
    tags_per_edge_mean: float = 3.0
    zipf_exponent: float = 1.0
    community_affinity: float = 0.7
    preferred_pool_size: int = 8
    freq_mean: float = 2.0

    def __post_init__(self) -> None:
        if self.a <= 0.0:
            raise ConfigurationError(f"a must be positive, got {self.a}")
        if self.tags_per_edge_mean < 1.0:
            raise ConfigurationError("tags_per_edge_mean must be >= 1")
        if not (0.0 <= self.community_affinity <= 1.0):
            raise ConfigurationError("community_affinity must lie in [0, 1]")
        if self.preferred_pool_size <= 0:
            raise ConfigurationError("preferred_pool_size must be positive")
        if self.freq_mean < 1.0:
            raise ConfigurationError("freq_mean must be >= 1")


def frequency_to_probability(t: float, a: float) -> float:
    """The paper's transform ``p = 1 - exp(-t / a)``.

    Examples
    --------
    >>> round(frequency_to_probability(5, 5), 4)
    0.6321
    """
    if a <= 0.0:
        raise ConfigurationError(f"a must be positive, got {a}")
    if t < 0.0:
        raise ConfigurationError(f"frequency must be >= 0, got {t}")
    return 1.0 - math.exp(-t / a)


def assign_tag_probabilities(
    src: np.ndarray,
    dst: np.ndarray,
    communities: np.ndarray,
    tag_names: Sequence[str],
    config: TagModelConfig = TagModelConfig(),
    preferred_tags: Sequence[Sequence[int]] | None = None,
    rng: np.random.Generator | int | None = None,
) -> list[tuple[int, int, str, float]]:
    """Assign tags + probabilities to edges; returns ``(u, v, tag, p)`` rows.

    Parameters
    ----------
    src, dst:
        Edge endpoint arrays.
    communities:
        Per-node community labels (edge tags follow the *source* node's
        community preferences).
    tag_names:
        The tag vocabulary.
    preferred_tags:
        Optional explicit preferred tag indices per community (used by
        the Yelp analogue to pin city/category associations); otherwise
        each community prefers a popularity-weighted random pool.
    """
    rng = ensure_rng(rng)
    num_tags = len(tag_names)
    if num_tags == 0:
        raise ConfigurationError("tag vocabulary must not be empty")
    num_communities = int(communities.max()) + 1 if communities.size else 1

    popularity = (np.arange(num_tags) + 1.0) ** (-config.zipf_exponent)
    # Shuffle so popularity rank is independent of vocabulary order.
    popularity = popularity[rng.permutation(num_tags)]
    global_probs = popularity / popularity.sum()

    if preferred_tags is None:
        pool_size = min(config.preferred_pool_size, num_tags)
        preferred: list[np.ndarray] = []
        for _ in range(num_communities):
            pool = rng.choice(
                num_tags, size=pool_size, replace=False, p=global_probs
            )
            preferred.append(np.asarray(pool, dtype=np.int64))
    else:
        if len(preferred_tags) < num_communities:
            raise ConfigurationError(
                "preferred_tags must cover every community"
            )
        preferred = [
            np.asarray(pool, dtype=np.int64) for pool in preferred_tags
        ]
        for pool in preferred:
            if pool.size == 0 or pool.min() < 0 or pool.max() >= num_tags:
                raise ConfigurationError(
                    "preferred tag indices must be non-empty and in range"
                )

    rows: list[tuple[int, int, str, float]] = []
    tag_counts = 1 + rng.poisson(
        max(config.tags_per_edge_mean - 1.0, 0.0), src.size
    )
    for eidx in range(src.size):
        u, v = int(src[eidx]), int(dst[eidx])
        community = int(communities[u])
        pool = preferred[community]
        chosen: set[int] = set()
        want = min(int(tag_counts[eidx]), num_tags)
        for _attempt in range(4 * want):
            if len(chosen) >= want:
                break
            if rng.random() < config.community_affinity:
                tag_idx = int(rng.choice(pool))
            else:
                tag_idx = int(rng.choice(num_tags, p=global_probs))
            chosen.add(tag_idx)
        for tag_idx in sorted(chosen):
            freq = 1 + rng.poisson(max(config.freq_mean - 1.0, 0.0))
            prob = frequency_to_probability(float(freq), config.a)
            if prob > 0.0:
                rows.append((u, v, tag_names[tag_idx], prob))
    return rows
