"""Synthetic dataset substrate.

The paper evaluates on crawled lastFM, DBLP, Yelp, and Twitter graphs
with learned tag-conditional probabilities; none are shippable, so this
package generates parameterized synthetic analogues that preserve the
structural properties the algorithms are sensitive to (see DESIGN.md):
power-law degrees, locally clustered communities, Zipfian tag popularity
with community-correlated affinity, and the paper's own probability
transform ``p(e | c) = 1 - exp(-t / a)`` over tag frequencies.
"""

from repro.datasets.named import (
    Dataset,
    dblp,
    lastfm,
    twitter,
    yelp,
)
from repro.datasets.synthetic import generate_community_graph
from repro.datasets.tag_model import TagModelConfig, assign_tag_probabilities
from repro.datasets.targets import bfs_targets, community_targets

__all__ = [
    "Dataset",
    "TagModelConfig",
    "assign_tag_probabilities",
    "bfs_targets",
    "community_targets",
    "dblp",
    "generate_community_graph",
    "lastfm",
    "twitter",
    "yelp",
]
