"""Target-set construction, following the paper's Section 6.1 recipe.

The paper builds target sets by BFS from high in-degree nodes (so the
targets are co-located in a small graph region) or, for Yelp, by taking
the users of one city. Both recipes are provided.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.datasets.named import Dataset
from repro.exceptions import InvalidQueryError
from repro.graphs.tag_graph import TagGraph
from repro.utils.rng import ensure_rng


def bfs_targets(
    graph: TagGraph,
    size: int,
    num_roots: int = 3,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Collect ``size`` target nodes by BFS from high in-degree roots.

    Traversal treats edges as undirected (the paper's goal is merely
    co-location, not reachability direction). Roots are the top
    ``num_roots`` in-degree nodes; if their combined component is too
    small, additional high-in-degree roots are appended until ``size``
    nodes are collected or the graph is exhausted.
    """
    if size <= 0:
        raise InvalidQueryError(f"target size must be positive, got {size}")
    if size > graph.num_nodes:
        raise InvalidQueryError(
            f"target size {size} exceeds node count {graph.num_nodes}"
        )
    ensure_rng(rng)  # reserved for future stochastic tie-breaking

    order = np.argsort(-graph.in_degrees(), kind="stable")
    visited = np.zeros(graph.num_nodes, dtype=bool)
    collected: list[int] = []
    queue: deque[int] = deque()
    next_root = 0

    def enqueue(node: int) -> None:
        visited[node] = True
        collected.append(node)
        queue.append(node)

    for _ in range(min(num_roots, graph.num_nodes)):
        enqueue(int(order[next_root]))
        next_root += 1

    while len(collected) < size:
        if not queue:
            while next_root < graph.num_nodes and visited[order[next_root]]:
                next_root += 1
            if next_root >= graph.num_nodes:
                break
            enqueue(int(order[next_root]))
            continue
        node = queue.popleft()
        neighbors = np.concatenate(
            [graph.out_neighbors(node), graph.in_neighbors(node)]
        )
        for nb in neighbors.tolist():
            if len(collected) >= size:
                break
            if not visited[nb]:
                enqueue(int(nb))
    return np.array(sorted(collected[:size]), dtype=np.int64)


def community_targets(
    dataset: Dataset,
    community: str,
    size: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Targets drawn from one named community (e.g. a Yelp city).

    ``size=None`` returns the whole community; otherwise a uniform
    sample without replacement.
    """
    members = dataset.community_members(community)
    if size is None or size >= members.size:
        return np.sort(members)
    if size <= 0:
        raise InvalidQueryError(f"target size must be positive, got {size}")
    rng = ensure_rng(rng)
    chosen = rng.choice(members, size=size, replace=False)
    return np.sort(chosen)
