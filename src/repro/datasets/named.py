"""Named synthetic analogues of the paper's four evaluation datasets.

Each generator returns a :class:`Dataset` bundling the graph, the
community labels, and the generation parameters. Default sizes are
scaled down from the paper's crawls so every experiment finishes on a
laptop in pure Python; pass ``scale`` to grow them (node and edge counts
scale linearly).

=========  ==========  ============  ======  ====================
analogue   paper size  default here  tags    notes
=========  ==========  ============  ======  ====================
lastFM     1.3K/14K    330/≈2K       20      a=1000, huge freqs
DBLP       704K/4.7M   1500/≈9K      40      a=5
Yelp       125K/809K   1200/≈7K      26      a=10, 3 named cities
Twitter    6.3M/11M    3000/≈18K     60      a=5
=========  ==========  ============  ======  ====================
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.synthetic import generate_community_graph
from repro.datasets.tag_model import TagModelConfig, assign_tag_probabilities
from repro.exceptions import ConfigurationError, InvalidQueryError
from repro.graphs.builders import graph_from_quadruples
from repro.graphs.tag_graph import TagGraph
from repro.utils.mathx import mean_std, quartiles


@dataclass(frozen=True)
class Dataset:
    """A generated dataset: graph + provenance.

    Attributes
    ----------
    name:
        Analogue name (``"lastfm"``, ``"dblp"``, ``"yelp"``, ``"twitter"``).
    graph:
        The tagged uncertain graph.
    communities:
        Per-node community labels.
    community_names:
        Human-readable community names (cities for Yelp).
    tag_model:
        The tag-model configuration used (records ``a`` etc.).
    """

    name: str
    graph: TagGraph
    communities: np.ndarray
    community_names: tuple[str, ...]
    tag_model: TagModelConfig = field(default_factory=TagModelConfig)

    def community_members(self, name: str) -> np.ndarray:
        """Node ids belonging to the named community."""
        try:
            label = self.community_names.index(name)
        except ValueError:
            raise InvalidQueryError(
                f"unknown community {name!r}; have {self.community_names}"
            ) from None
        return np.flatnonzero(self.communities == label)

    def characteristics(self) -> dict[str, object]:
        """Table-4-style summary: sizes, tag count, probability moments."""
        probs: list[float] = []
        for tag in self.graph.tags:
            _, tag_probs = self.graph.tag_edges(tag)
            probs.extend(tag_probs.tolist())
        mean, std = mean_std(probs)
        q1, q2, q3 = quartiles(probs) if probs else (0.0, 0.0, 0.0)
        return {
            "name": self.name,
            "nodes": self.graph.num_nodes,
            "edges": self.graph.num_edges,
            "tags": self.graph.num_tags,
            "prob_mean": mean,
            "prob_std": std,
            "prob_quartiles": (q1, q2, q3),
        }


def _build(
    name: str,
    num_nodes: int,
    community_names: Sequence[str],
    tag_names: Sequence[str],
    tag_model: TagModelConfig,
    avg_out_degree: float,
    intra_community_fraction: float,
    seed: int,
    undirected: bool,
    preferred_tags: Sequence[Sequence[int]] | None = None,
) -> Dataset:
    rng = np.random.default_rng(seed)
    src, dst, communities = generate_community_graph(
        num_nodes,
        num_communities=len(community_names),
        avg_out_degree=avg_out_degree,
        intra_community_fraction=intra_community_fraction,
        rng=rng,
    )
    if undirected:
        src, dst = (
            np.concatenate([src, dst]),
            np.concatenate([dst, src]),
        )
        # Drop duplicates created by symmetrization.
        pairs = np.stack([src, dst], axis=1)
        _, unique_idx = np.unique(pairs, axis=0, return_index=True)
        src, dst = src[np.sort(unique_idx)], dst[np.sort(unique_idx)]
    rows = assign_tag_probabilities(
        src,
        dst,
        communities,
        tag_names,
        config=tag_model,
        preferred_tags=preferred_tags,
        rng=rng,
    )
    graph = graph_from_quadruples(num_nodes, rows)
    return Dataset(
        name=name,
        graph=graph,
        communities=communities,
        community_names=tuple(community_names),
        tag_model=tag_model,
    )


def _scaled(base: int, scale: float) -> int:
    value = int(round(base * scale))
    if value < 8:
        raise ConfigurationError(
            f"scale {scale} shrinks the dataset below the minimum size"
        )
    return value


def lastfm(scale: float = 1.0, seed: int = 7, a: float = 1000.0) -> Dataset:
    """lastFM analogue: small, undirected, music-style tags, huge frequencies."""
    styles = [f"style-{i:02d}" for i in range(20)]
    model = TagModelConfig(
        a=a, tags_per_edge_mean=2.5, freq_mean=300.0, community_affinity=0.6
    )
    return _build(
        name="lastfm",
        num_nodes=_scaled(330, scale),
        community_names=tuple(f"scene-{i}" for i in range(4)),
        tag_names=styles,
        tag_model=model,
        avg_out_degree=4.0,
        intra_community_fraction=0.75,
        seed=seed,
        undirected=True,
    )


def dblp(scale: float = 1.0, seed: int = 11, a: float = 5.0) -> Dataset:
    """DBLP analogue: undirected co-author graph, research-area tags."""
    areas = [f"area-{i:02d}" for i in range(40)]
    model = TagModelConfig(
        a=a, tags_per_edge_mean=2.0, freq_mean=1.5, community_affinity=0.8
    )
    return _build(
        name="dblp",
        num_nodes=_scaled(1500, scale),
        community_names=tuple(f"field-{i}" for i in range(8)),
        tag_names=areas,
        tag_model=model,
        avg_out_degree=3.0,
        intra_community_fraction=0.85,
        seed=seed,
        undirected=True,
    )


#: Yelp business-category vocabulary, split by theme so each city gets a
#: distinct preferred pool (reproducing the Table 1 case-study contrast).
YELP_ENTERTAINMENT = (
    "arts & entertainment",
    "dance clubs",
    "travel",
    "hotels",
    "buffets",
    "casinos",
    "desserts",
    "mediterranean",
)
YELP_FOOD = (
    "burger",
    "mexican",
    "seafood",
    "grocery",
    "italian",
    "sports bars",
    "coffee & tea",
    "ice cream & frozen yogurt",
    "specialty food",
)
YELP_COMMON = (
    "chinese",
    "japanese",
    "pubs",
    "canadian",
    "comfort food",
    "chiropractors",
    "physical therapy",
    "steakhouse",
    "breakfast",
)
YELP_CITIES = ("vegas", "toronto", "pittsburgh")


def yelp(scale: float = 1.0, seed: int = 13, a: float = 10.0) -> Dataset:
    """Yelp analogue: 3 named cities with themed category preferences.

    Vegas prefers entertainment categories, Pittsburgh food categories,
    Toronto a mixed pool — so the optimal tag set genuinely differs per
    target city, as in the paper's case study.
    """
    tag_names = list(YELP_ENTERTAINMENT + YELP_FOOD + YELP_COMMON)
    num_ent = len(YELP_ENTERTAINMENT)
    num_food = len(YELP_FOOD)
    ent_idx = list(range(num_ent))
    food_idx = list(range(num_ent, num_ent + num_food))
    common_idx = list(range(num_ent + num_food, len(tag_names)))
    preferred = [
        ent_idx + common_idx[:2],          # vegas
        common_idx + food_idx[4:7],        # toronto
        food_idx + common_idx[:1],         # pittsburgh
    ]
    model = TagModelConfig(
        a=a, tags_per_edge_mean=3.0, freq_mean=4.0, community_affinity=0.85
    )
    return _build(
        name="yelp",
        num_nodes=_scaled(1200, scale),
        community_names=YELP_CITIES,
        tag_names=tag_names,
        tag_model=model,
        avg_out_degree=6.0,
        intra_community_fraction=0.9,
        seed=seed,
        undirected=False,
        preferred_tags=preferred,
    )


def twitter(scale: float = 1.0, seed: int = 17, a: float = 5.0) -> Dataset:
    """Twitter analogue: the largest default graph, hashtag tags."""
    hashtags = [f"hashtag-{i:02d}" for i in range(60)]
    model = TagModelConfig(
        a=a, tags_per_edge_mean=2.5, freq_mean=1.6, community_affinity=0.7
    )
    return _build(
        name="twitter",
        num_nodes=_scaled(3000, scale),
        community_names=tuple(f"cluster-{i}" for i in range(10)),
        tag_names=hashtags,
        tag_model=model,
        avg_out_degree=6.0,
        intra_community_fraction=0.8,
        seed=seed,
        undirected=False,
    )


ALL_DATASETS = {
    "lastfm": lastfm,
    "dblp": dblp,
    "yelp": yelp,
    "twitter": twitter,
}
