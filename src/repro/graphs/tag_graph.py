"""The tagged uncertain graph data structure.

A :class:`TagGraph` is the paper's ``G = (V, E, P)``: ``n`` nodes
(integers ``0..n-1``), ``m`` directed edges, and a conditional
probability function ``P(e | c) ∈ (0, 1]`` defined for a sparse set of
``(edge, tag)`` pairs. A pair that is absent means ``P(e | c) = 0`` —
tag ``c`` never activates edge ``e``.

Layout
------
Edges are integer ids ``0..m-1`` with dense ``src`` / ``dst`` arrays.
Per tag ``c`` we store two parallel arrays ``(edge_ids, probs)``; the
combined probability of an edge given a *set* of tags is computed
vectorized over these (see :meth:`TagGraph.edge_probabilities`).
Forward and reverse adjacency are CSR-style (``indptr`` + edge-id
arrays) so BFS sweeps touch contiguous memory.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import GraphConstructionError, InvalidQueryError


def _build_csr(keys: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Group edge ids by node key; return ``(indptr, edge_ids)`` CSR arrays."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    counts = np.bincount(sorted_keys, minlength=n)
    np.cumsum(counts, out=indptr[1:])
    return indptr, order.astype(np.int64)


class TagGraph:
    """Directed uncertain graph with per-tag conditional edge probabilities.

    Parameters
    ----------
    n:
        Number of nodes; node ids are ``0..n-1``.
    src, dst:
        Integer arrays of length ``m`` giving each edge's endpoints.
    tag_probs:
        Mapping from tag name to ``(edge_ids, probs)`` arrays; each pair
        states ``P(edge_ids[i] | tag) = probs[i]``. Probabilities must lie
        in ``(0, 1]`` and an edge id may appear at most once per tag.

    Notes
    -----
    The structure is immutable after construction; use
    :class:`~repro.graphs.builders.TagGraphBuilder` for incremental
    assembly.
    """

    def __init__(
        self,
        n: int,
        src: Sequence[int] | np.ndarray,
        dst: Sequence[int] | np.ndarray,
        tag_probs: Mapping[str, tuple[np.ndarray, np.ndarray]],
    ) -> None:
        if n < 0:
            raise GraphConstructionError(f"node count must be >= 0, got {n}")
        self._n = int(n)
        self._src = np.asarray(src, dtype=np.int64)
        self._dst = np.asarray(dst, dtype=np.int64)
        if self._src.shape != self._dst.shape or self._src.ndim != 1:
            raise GraphConstructionError(
                "src and dst must be 1-D arrays of equal length"
            )
        m = self._src.shape[0]
        for arr, name in ((self._src, "src"), (self._dst, "dst")):
            if m and (arr.min() < 0 or arr.max() >= n):
                raise GraphConstructionError(
                    f"{name} contains node ids outside [0, {n})"
                )

        self._tag_probs: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for tag, (edge_ids, probs) in sorted(tag_probs.items()):
            ids = np.asarray(edge_ids, dtype=np.int64)
            ps = np.asarray(probs, dtype=np.float64)
            if ids.shape != ps.shape or ids.ndim != 1:
                raise GraphConstructionError(
                    f"tag {tag!r}: edge_ids and probs must be 1-D and equal length"
                )
            if ids.size:
                if ids.min() < 0 or ids.max() >= m:
                    raise GraphConstructionError(
                        f"tag {tag!r}: edge ids outside [0, {m})"
                    )
                if np.unique(ids).size != ids.size:
                    raise GraphConstructionError(
                        f"tag {tag!r}: duplicate edge ids in tag assignment"
                    )
                if (ps <= 0.0).any() or (ps > 1.0).any():
                    raise GraphConstructionError(
                        f"tag {tag!r}: probabilities must lie in (0, 1]"
                    )
            self._tag_probs[tag] = (ids, ps)

        self._fwd_indptr, self._fwd_edges = _build_csr(self._src, self._n)
        self._rev_indptr, self._rev_edges = _build_csr(self._dst, self._n)
        self._edge_tag_maps: list[dict[str, float]] | None = None
        self._edge_tag_neglogs: list[list[tuple[str, float]]] | None = None
        # Opt-in aggregation memo (see enable_probability_cache). Off by
        # default so library users keep the allocation-per-call contract.
        self._prob_cache: (
            OrderedDict[tuple[str, ...], np.ndarray] | None
        ) = None
        self._prob_cache_max = 0
        self._prob_cache_lock = threading.Lock()
        self._prob_cache_hits = 0
        self._prob_cache_misses = 0
        self._prob_cache_evictions = 0

    # ------------------------------------------------------------------
    # Pickling (process-pool fan-out ships graphs to workers)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Drop the (unpicklable) memo lock and its cache for transport.

        Worker processes only read graph structure; they never share the
        aggregation memo with the parent, so shipping its contents would
        be wasted bytes anyway.
        """
        state = self.__dict__.copy()
        state["_prob_cache_lock"] = None
        state["_prob_cache"] = None
        state["_prob_cache_max"] = 0
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._prob_cache_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return int(self._src.shape[0])

    @property
    def src(self) -> np.ndarray:
        """Read-only view of the edge source array (length ``m``)."""
        view = self._src.view()
        view.flags.writeable = False
        return view

    @property
    def dst(self) -> np.ndarray:
        """Read-only view of the edge destination array (length ``m``)."""
        view = self._dst.view()
        view.flags.writeable = False
        return view

    @property
    def tags(self) -> tuple[str, ...]:
        """Sorted tag vocabulary ``C``."""
        return tuple(self._tag_probs)

    @property
    def num_tags(self) -> int:
        """Size of the tag vocabulary ``|C|``."""
        return len(self._tag_probs)

    def has_tag(self, tag: str) -> bool:
        """Whether ``tag`` belongs to the vocabulary."""
        return tag in self._tag_probs

    def tag_edges(self, tag: str) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(edge_ids, probs)`` arrays for ``tag``.

        Raises :class:`InvalidQueryError` for an unknown tag.
        """
        try:
            ids, probs = self._tag_probs[tag]
        except KeyError:
            raise InvalidQueryError(f"unknown tag {tag!r}") from None
        ids_view = ids.view()
        ids_view.flags.writeable = False
        probs_view = probs.view()
        probs_view.flags.writeable = False
        return ids_view, probs_view

    # ------------------------------------------------------------------
    # Probabilities
    # ------------------------------------------------------------------
    def edge_probabilities(self, tags: Iterable[str]) -> np.ndarray:
        """Combined probability ``P(e | C1)`` for every edge, vectorized.

        Uses the paper's independent tag aggregation:
        ``P(e | C1) = 1 - Π_{c ∈ C1} (1 - P(e | c))``. Unknown tags raise
        :class:`InvalidQueryError`. Passing no tags yields all zeros.
        """
        if self._prob_cache is None:
            return self._aggregate(tags)
        return self._edge_probabilities_cached(tuple(tags))

    def _aggregate(self, tags: Iterable[str]) -> np.ndarray:
        survival = np.ones(self.num_edges, dtype=np.float64)
        for tag in tags:
            ids, probs = self.tag_edges(tag)
            survival[ids] *= 1.0 - probs
        return 1.0 - survival

    # ------------------------------------------------------------------
    # Optional aggregation memo (serving hot path)
    # ------------------------------------------------------------------
    def enable_probability_cache(self, max_entries: int = 64) -> None:
        """Memoize :meth:`edge_probabilities` per exact tag *sequence*.

        Off by default. The serving layer turns this on so repeat
        queries against the same tag set skip the O(Σ|tag edges|)
        aggregation pass. Keys are the tag sequence **as iterated** (not
        a sorted set): the survival product is applied per tag in
        order, so different orders can differ in the last float ulp and
        must not share an entry — callers wanting sharing canonicalize
        tags first (``repro.serve`` does).

        Cached arrays are returned *read-only* (and one array instance
        may be handed to many threads); all in-repo consumers only read
        them. Thread-safe; ``max_entries`` bounds memory via LRU.
        """
        if max_entries <= 0:
            raise InvalidQueryError(
                f"max_entries must be positive, got {max_entries}"
            )
        with self._prob_cache_lock:
            if self._prob_cache is None:
                self._prob_cache = OrderedDict()
            self._prob_cache_max = int(max_entries)
            while len(self._prob_cache) > self._prob_cache_max:
                self._prob_cache.popitem(last=False)
                self._prob_cache_evictions += 1

    def disable_probability_cache(self) -> None:
        """Drop the memo and return to allocate-per-call behavior."""
        with self._prob_cache_lock:
            self._prob_cache = None
            self._prob_cache_max = 0

    def probability_cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counts and current size of the memo."""
        with self._prob_cache_lock:
            cache = self._prob_cache
            return {
                "enabled": int(cache is not None),
                "entries": len(cache) if cache is not None else 0,
                "hits": self._prob_cache_hits,
                "misses": self._prob_cache_misses,
                "evictions": self._prob_cache_evictions,
            }

    def _edge_probabilities_cached(self, key: tuple[str, ...]) -> np.ndarray:
        with self._prob_cache_lock:
            cache = self._prob_cache
            if cache is None:  # disabled concurrently
                return self._aggregate(key)
            hit = cache.get(key)
            if hit is not None:
                cache.move_to_end(key)
                self._prob_cache_hits += 1
                return hit
            self._prob_cache_misses += 1
        # Aggregate outside the lock; concurrent same-key builders
        # produce bit-identical arrays, setdefault keeps one canonical.
        arr = self._aggregate(key)
        arr.flags.writeable = False
        with self._prob_cache_lock:
            cache = self._prob_cache
            if cache is None:
                return arr
            arr = cache.setdefault(key, arr)
            cache.move_to_end(key)
            while len(cache) > self._prob_cache_max:
                cache.popitem(last=False)
                self._prob_cache_evictions += 1
        return arr

    def edge_tag_probability(self, edge_id: int, tag: str) -> float:
        """Return ``P(edge_id | tag)``; zero when the pair is absent."""
        return self.edge_tag_map(edge_id).get(tag, 0.0)

    def edge_tag_map(self, edge_id: int) -> dict[str, float]:
        """Return ``{tag: P(edge_id | tag)}`` for one edge (cached)."""
        if not (0 <= edge_id < self.num_edges):
            raise InvalidQueryError(
                f"edge id {edge_id} outside [0, {self.num_edges})"
            )
        return self._edge_tag_maps_cache()[edge_id]

    def _edge_tag_maps_cache(self) -> list[dict[str, float]]:
        if self._edge_tag_maps is None:
            maps: list[dict[str, float]] = [{} for _ in range(self.num_edges)]
            for tag, (ids, probs) in self._tag_probs.items():
                for eid, p in zip(ids.tolist(), probs.tolist()):
                    maps[eid][tag] = p
            self._edge_tag_maps = maps
        return self._edge_tag_maps

    def edge_tag_neglogs(self) -> list[list[tuple[str, float]]]:
        """Per-edge ``[(tag, -ln P(e|c)), …]`` lists (cached).

        The hot path-enumeration loop consumes costs rather than
        probabilities; caching the logarithms here removes a ``math.log``
        per heap push.
        """
        if self._edge_tag_neglogs is None:
            self._edge_tag_neglogs = [
                [(tag, -math.log(p)) for tag, p in sorted(mapping.items())]
                for mapping in self._edge_tag_maps_cache()
            ]
        return self._edge_tag_neglogs

    def all_edge_probabilities(self) -> np.ndarray:
        """``P(e | C)`` for the full vocabulary — the tag-agnostic graph."""
        return self.edge_probabilities(self.tags)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def out_edge_ids(self, node: int) -> np.ndarray:
        """Edge ids leaving ``node``."""
        self._check_node(node)
        lo, hi = self._fwd_indptr[node], self._fwd_indptr[node + 1]
        return self._fwd_edges[lo:hi]

    def in_edge_ids(self, node: int) -> np.ndarray:
        """Edge ids entering ``node``."""
        self._check_node(node)
        lo, hi = self._rev_indptr[node], self._rev_indptr[node + 1]
        return self._rev_edges[lo:hi]

    def out_neighbors(self, node: int) -> np.ndarray:
        """Destination nodes of edges leaving ``node``."""
        return self._dst[self.out_edge_ids(node)]

    def in_neighbors(self, node: int) -> np.ndarray:
        """Source nodes of edges entering ``node``."""
        return self._src[self.in_edge_ids(node)]

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node (length ``n``)."""
        return np.diff(self._rev_indptr)

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node (length ``n``)."""
        return np.diff(self._fwd_indptr)

    def reverse_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(indptr, edge_ids)`` of the reverse adjacency.

        The hot loops of reverse BFS use these directly instead of the
        per-node accessor methods.
        """
        return self._rev_indptr, self._rev_edges

    def forward_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(indptr, edge_ids)`` of the forward adjacency."""
        return self._fwd_indptr, self._fwd_edges

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self._n):
            raise InvalidQueryError(f"node id {node} outside [0, {self._n})")

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TagGraph(n={self.num_nodes}, m={self.num_edges}, "
            f"tags={self.num_tags})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TagGraph):
            return NotImplemented
        if self.num_nodes != other.num_nodes:
            return False
        if not (
            np.array_equal(self._src, other._src)
            and np.array_equal(self._dst, other._dst)
        ):
            return False
        if self.tags != other.tags:
            return False
        for tag in self.tags:
            a_ids, a_ps = self._tag_probs[tag]
            b_ids, b_ps = other._tag_probs[tag]
            a_order = np.argsort(a_ids)
            b_order = np.argsort(b_ids)
            if not np.array_equal(a_ids[a_order], b_ids[b_order]):
                return False
            if not np.allclose(a_ps[a_order], b_ps[b_order]):
                return False
        return True

    __hash__ = None  # type: ignore[assignment]  # mutable-array payload
