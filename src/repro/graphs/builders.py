"""Incremental construction of :class:`~repro.graphs.TagGraph` objects."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.exceptions import GraphConstructionError
from repro.graphs.tag_graph import TagGraph
from repro.utils.validation import check_probability


class TagGraphBuilder:
    """Accumulates ``(u, v, tag, prob)`` assignments, then builds a graph.

    Repeating the same ``(u, v)`` pair reuses one edge id; repeating the
    same ``(u, v, tag)`` triple is an error (the probability function is
    single-valued).

    Examples
    --------
    >>> b = TagGraphBuilder(num_nodes=3)
    >>> b.add(0, 1, "coffee", 0.7).add(0, 1, "arts", 0.9).add(1, 2, "bars", 0.2)
    TagGraphBuilder(nodes=3, edges=2, assignments=3)
    >>> g = b.build()
    >>> g.num_edges, g.num_tags
    (2, 3)
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise GraphConstructionError(
                f"num_nodes must be >= 0, got {num_nodes}"
            )
        self._n = num_nodes
        self._edge_ids: dict[tuple[int, int], int] = {}
        self._src: list[int] = []
        self._dst: list[int] = []
        self._assignments: dict[str, dict[int, float]] = {}

    def add(self, u: int, v: int, tag: str, prob: float) -> "TagGraphBuilder":
        """Record ``P((u, v) | tag) = prob``; returns ``self`` for chaining."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise GraphConstructionError(
                f"edge ({u}, {v}) references nodes outside [0, {self._n})"
            )
        if u == v:
            raise GraphConstructionError(f"self-loop ({u}, {u}) not allowed")
        check_probability(prob, context=f"edge ({u}, {v}) tag {tag!r}")
        edge_id = self._edge_ids.setdefault((u, v), len(self._src))
        if edge_id == len(self._src):
            self._src.append(u)
            self._dst.append(v)
        per_tag = self._assignments.setdefault(tag, {})
        if edge_id in per_tag:
            raise GraphConstructionError(
                f"duplicate assignment for edge ({u}, {v}) tag {tag!r}"
            )
        per_tag[edge_id] = prob
        return self

    def add_undirected(
        self, u: int, v: int, tag: str, prob: float
    ) -> "TagGraphBuilder":
        """Record the assignment in both directions (for undirected data)."""
        self.add(u, v, tag, prob)
        self.add(v, u, tag, prob)
        return self

    @property
    def num_edges(self) -> int:
        """Number of distinct directed edges recorded so far."""
        return len(self._src)

    def build(self) -> TagGraph:
        """Materialize the accumulated assignments into a :class:`TagGraph`."""
        tag_probs = {}
        for tag, per_edge in self._assignments.items():
            ids = np.fromiter(per_edge.keys(), dtype=np.int64, count=len(per_edge))
            probs = np.fromiter(
                per_edge.values(), dtype=np.float64, count=len(per_edge)
            )
            tag_probs[tag] = (ids, probs)
        return TagGraph(self._n, self._src, self._dst, tag_probs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        assignments = sum(len(v) for v in self._assignments.values())
        return (
            f"TagGraphBuilder(nodes={self._n}, edges={self.num_edges}, "
            f"assignments={assignments})"
        )


def graph_from_quadruples(
    num_nodes: int,
    quadruples: Iterable[tuple[int, int, str, float]],
) -> TagGraph:
    """Build a graph from an iterable of ``(u, v, tag, prob)`` rows.

    A convenience wrapper over :class:`TagGraphBuilder` for tests,
    examples, and the TSV loader.
    """
    builder = TagGraphBuilder(num_nodes)
    for u, v, tag, prob in quadruples:
        builder.add(u, v, tag, prob)
    return builder.build()
