"""Serialization of :class:`~repro.graphs.TagGraph` to a TSV interchange format.

The format is one assignment per line::

    u <TAB> v <TAB> tag <TAB> prob

with a single header line ``# nodes=<n>`` carrying the node count (so
isolated nodes survive a round trip). Lines starting with ``#`` after
the header are comments.
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import GraphConstructionError
from repro.graphs.builders import TagGraphBuilder
from repro.graphs.tag_graph import TagGraph


def save_tag_graph(graph: TagGraph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` in the TSV interchange format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# nodes={graph.num_nodes}\n")
        src = graph.src
        dst = graph.dst
        # Rows are grouped by edge id so a load assigns the same ids.
        for eid in range(graph.num_edges):
            for tag, prob in sorted(graph.edge_tag_map(eid).items()):
                handle.write(
                    f"{src[eid]}\t{dst[eid]}\t{tag}\t{prob:.17g}\n"
                )


def load_tag_graph(path: str | Path) -> TagGraph:
    """Read a graph previously written by :func:`save_tag_graph`.

    Raises :class:`GraphConstructionError` on malformed files (missing
    header, wrong column count, unparsable numbers).
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = handle.readline().strip()
        if not header.startswith("# nodes="):
            raise GraphConstructionError(
                f"{path}: missing '# nodes=<n>' header, got {header!r}"
            )
        try:
            num_nodes = int(header.split("=", 1)[1])
        except ValueError as exc:
            raise GraphConstructionError(
                f"{path}: unparsable node count in header {header!r}"
            ) from exc

        builder = TagGraphBuilder(num_nodes)
        for lineno, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 4:
                raise GraphConstructionError(
                    f"{path}:{lineno}: expected 4 tab-separated fields, "
                    f"got {len(parts)}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
                prob = float(parts[3])
            except ValueError as exc:
                raise GraphConstructionError(
                    f"{path}:{lineno}: unparsable edge row {line!r}"
                ) from exc
            builder.add(u, v, parts[2], prob)
    return builder.build()
