"""Tagged uncertain graph substrate.

The central type is :class:`TagGraph`: a directed graph whose edges carry
*conditional* influence probabilities ``P(e | c)`` per tag ``c``, exactly
as in the paper's problem model (Section 2.1). Everything else in the
library — diffusion simulation, reverse sketching, path enumeration —
operates on this structure.
"""

from repro.graphs.aggregation import (
    TopicModel,
    independent_aggregation,
    topic_aggregation,
)
from repro.graphs.builders import TagGraphBuilder, graph_from_quadruples
from repro.graphs.io import load_tag_graph, save_tag_graph
from repro.graphs.mutable import (
    EdgeAdd,
    EdgeRemove,
    GraphEdit,
    MutableTagGraph,
    TagSet,
    TagUnset,
    edit_from_dict,
    edits_from_dicts,
)
from repro.graphs.stats import GraphStats, graph_stats
from repro.graphs.tag_graph import TagGraph
from repro.graphs.views import induced_subgraph, local_region_nodes

__all__ = [
    "EdgeAdd",
    "EdgeRemove",
    "GraphEdit",
    "GraphStats",
    "MutableTagGraph",
    "TagGraph",
    "TagGraphBuilder",
    "TagSet",
    "TagUnset",
    "TopicModel",
    "edit_from_dict",
    "edits_from_dicts",
    "graph_from_quadruples",
    "graph_stats",
    "independent_aggregation",
    "induced_subgraph",
    "load_tag_graph",
    "local_region_nodes",
    "save_tag_graph",
    "topic_aggregation",
]
