"""Tag aggregation functions ``F`` mapping per-tag to per-campaign probabilities.

The paper (Section 2.1) defines two aggregation semantics for deriving
``P(e | C1)`` from the individual ``P(e | c)``:

* **Independent tag aggregation** — one independent coin per tag; the
  edge exists if any coin succeeds. This is the model used throughout
  the paper and throughout this library.
* **Topic-based tag aggregation** — a latent-topic model following
  Barbieri et al. [4] and Li et al. [20]; provided here as a documented
  extension so downstream users can compare semantics.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


def independent_aggregation(probabilities: Iterable[float]) -> float:
    """Combine per-tag probabilities assuming independent activation coins.

    ``P(e | C1) = 1 - Π_{c ∈ C1} (1 - P(e | c))`` — the noisy-OR of the
    individual tag probabilities. An empty input yields ``0.0``.

    Examples
    --------
    >>> round(independent_aggregation([0.5, 0.5]), 3)
    0.75
    """
    survival = 1.0
    for p in probabilities:
        if not (0.0 <= p <= 1.0):
            raise ConfigurationError(f"probability {p!r} outside [0, 1]")
        survival *= 1.0 - p
    return 1.0 - survival


@dataclass(frozen=True)
class TopicModel:
    """A latent-topic influence model (extension; paper Section 2.1).

    Attributes
    ----------
    topics:
        Names of the ``|Z|`` latent topics.
    edge_topic_probs:
        ``P(e | z)`` — row per edge, column per topic; shape ``(m, |Z|)``.
    tag_topic_probs:
        ``P(c | z)`` — probability of sampling tag ``c`` given topic
        ``z``; mapping from tag name to a length-``|Z|`` array whose
        entries lie in ``[0, 1]``.
    topic_prior:
        Prior ``P(z)``; uniform when omitted.
    """

    topics: tuple[str, ...]
    edge_topic_probs: np.ndarray
    tag_topic_probs: Mapping[str, np.ndarray]
    topic_prior: np.ndarray | None = None

    def __post_init__(self) -> None:
        num_topics = len(self.topics)
        if self.edge_topic_probs.ndim != 2 or (
            self.edge_topic_probs.shape[1] != num_topics
        ):
            raise ConfigurationError(
                "edge_topic_probs must have one column per topic"
            )
        for tag, arr in self.tag_topic_probs.items():
            if np.asarray(arr).shape != (num_topics,):
                raise ConfigurationError(
                    f"tag {tag!r}: tag_topic_probs must be length {num_topics}"
                )
        if self.topic_prior is not None and self.topic_prior.shape != (
            num_topics,
        ):
            raise ConfigurationError("topic_prior must be length |Z|")

    def topic_posterior(self, tags: Sequence[str]) -> np.ndarray:
        """Posterior ``P(z | C1) ∝ P(z) · Σ_{c ∈ C1} P(c | z)``.

        When no tag in ``C1`` has mass under any topic the posterior
        falls back to the prior.
        """
        num_topics = len(self.topics)
        prior = (
            self.topic_prior
            if self.topic_prior is not None
            else np.full(num_topics, 1.0 / num_topics)
        )
        likelihood = np.zeros(num_topics, dtype=np.float64)
        for tag in tags:
            arr = self.tag_topic_probs.get(tag)
            if arr is not None:
                likelihood += np.asarray(arr, dtype=np.float64)
        unnormalized = prior * likelihood
        total = unnormalized.sum()
        if total <= 0.0:
            return np.asarray(prior, dtype=np.float64)
        return unnormalized / total


def topic_aggregation(model: TopicModel, tags: Sequence[str]) -> np.ndarray:
    """Per-edge ``P(e | C1)`` under the topic model: ``Σ_z P(z|C1)·P(e|z)``.

    Returns an array of length ``m`` (one probability per edge of the
    graph the model was fitted to).
    """
    posterior = model.topic_posterior(tags)
    return model.edge_topic_probs @ posterior
