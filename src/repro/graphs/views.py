"""Derived views of a :class:`~repro.graphs.TagGraph`.

Two operations matter to the paper's algorithms:

* ``local_region_nodes`` — the ``h``-hop local region around a target
  set (Section 3.3, local indexing): all nodes from which some target is
  reachable within ``h`` hops, i.e. a breadth-first sweep along
  *incoming* edges starting from the targets. Reverse BFS for RR-sets
  only ever walks incoming edges, so this is exactly the region those
  traversals predominantly visit.
* ``induced_subgraph`` — materialize the subgraph on a node subset,
  keeping only (edge, tag) assignments whose endpoints both survive.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.tag_graph import TagGraph
from repro.utils.validation import check_node_ids


def local_region_nodes(
    graph: TagGraph, targets: Iterable[int], h: int
) -> np.ndarray:
    """Nodes at most ``h`` reverse hops from some target, targets included.

    Returns a sorted array of node ids. ``h = 0`` returns the targets
    themselves.
    """
    if h < 0:
        raise ConfigurationError(f"hop threshold h must be >= 0, got {h}")
    target_list = [int(t) for t in targets]
    check_node_ids(target_list, graph.num_nodes, context="local_region_nodes")

    dist = np.full(graph.num_nodes, -1, dtype=np.int64)
    queue: deque[int] = deque()
    for t in target_list:
        if dist[t] == -1:
            dist[t] = 0
            queue.append(t)

    rev_indptr, rev_edges = graph.reverse_csr()
    src = graph.src
    while queue:
        node = queue.popleft()
        if dist[node] >= h:
            continue
        for eid in rev_edges[rev_indptr[node]:rev_indptr[node + 1]]:
            parent = int(src[eid])
            if dist[parent] == -1:
                dist[parent] = dist[node] + 1
                queue.append(parent)
    return np.flatnonzero(dist >= 0)


def induced_subgraph(
    graph: TagGraph, nodes: Iterable[int]
) -> tuple[TagGraph, dict[int, int]]:
    """Subgraph induced by ``nodes``; returns ``(subgraph, old→new map)``.

    Only (edge, tag) assignments with both endpoints in ``nodes``
    survive. The subgraph renumbers nodes ``0..len(nodes)-1`` in sorted
    old-id order.
    """
    node_list = sorted({int(v) for v in nodes})
    check_node_ids(node_list, graph.num_nodes, context="induced_subgraph")
    old_to_new = {old: new for new, old in enumerate(node_list)}

    keep = np.zeros(graph.num_nodes, dtype=bool)
    keep[node_list] = True
    edge_mask = keep[graph.src] & keep[graph.dst]
    kept_edges = np.flatnonzero(edge_mask)
    edge_renumber = np.full(graph.num_edges, -1, dtype=np.int64)
    edge_renumber[kept_edges] = np.arange(kept_edges.size)

    new_src = np.array(
        [old_to_new[int(u)] for u in graph.src[kept_edges]], dtype=np.int64
    )
    new_dst = np.array(
        [old_to_new[int(v)] for v in graph.dst[kept_edges]], dtype=np.int64
    )

    tag_probs = {}
    for tag in graph.tags:
        ids, probs = graph.tag_edges(tag)
        surviving = edge_mask[ids]
        if surviving.any():
            tag_probs[tag] = (edge_renumber[ids[surviving]], probs[surviving])
    sub = TagGraph(len(node_list), new_src, new_dst, tag_probs)
    return sub, old_to_new
