"""Structural statistics of tagged graphs.

Used to validate that the synthetic analogues hold the properties the
algorithms are sensitive to (hubs, community locality, tag skew), and
handy for profiling any user-supplied graph before a campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.tag_graph import TagGraph
from repro.utils.mathx import mean_std, quartiles


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a :class:`TagGraph`.

    Attributes
    ----------
    num_nodes, num_edges, num_tags:
        Sizes.
    mean_out_degree:
        Average out-degree.
    max_in_degree:
        Largest in-degree (hubs).
    degree_gini:
        Gini coefficient of the in-degree distribution — 0 for perfectly
        even, toward 1 for hub-dominated graphs.
    tags_per_edge_mean:
        Average number of distinct tags carried per edge.
    prob_mean, prob_std:
        Moments of all (edge, tag) probabilities.
    prob_quartiles:
        (Q1, median, Q3) of the probabilities — Table 4's columns.
    tag_mass_top_share:
        Fraction of total probability mass carried by the top 10 % of
        tags — the tag-popularity skew FT initialization exploits.
    """

    num_nodes: int
    num_edges: int
    num_tags: int
    mean_out_degree: float
    max_in_degree: int
    degree_gini: float
    tags_per_edge_mean: float
    prob_mean: float
    prob_std: float
    prob_quartiles: tuple[float, float, float]
    tag_mass_top_share: float


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample; 0 for empty/uniform."""
    if values.size == 0:
        return 0.0
    sorted_vals = np.sort(values.astype(np.float64))
    total = sorted_vals.sum()
    if total <= 0.0:
        return 0.0
    n = sorted_vals.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * sorted_vals).sum() / (n * total)) - (n + 1) / n)


def graph_stats(graph: TagGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    in_degrees = graph.in_degrees()
    out_degrees = graph.out_degrees()

    probs: list[float] = []
    tag_mass: dict[str, float] = {}
    assignments = 0
    for tag in graph.tags:
        _ids, tag_probs = graph.tag_edges(tag)
        probs.extend(tag_probs.tolist())
        tag_mass[tag] = float(tag_probs.sum())
        assignments += tag_probs.size

    mean, std = mean_std(probs)
    quarts = quartiles(probs) if probs else (0.0, 0.0, 0.0)

    top_share = 0.0
    total_mass = sum(tag_mass.values())
    if total_mass > 0.0 and tag_mass:
        top_count = max(1, len(tag_mass) // 10)
        top = sorted(tag_mass.values(), reverse=True)[:top_count]
        top_share = sum(top) / total_mass

    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_tags=graph.num_tags,
        mean_out_degree=(
            float(out_degrees.mean()) if graph.num_nodes else 0.0
        ),
        max_in_degree=int(in_degrees.max(initial=0)),
        degree_gini=_gini(in_degrees),
        tags_per_edge_mean=(
            assignments / graph.num_edges if graph.num_edges else 0.0
        ),
        prob_mean=mean,
        prob_std=std,
        prob_quartiles=quarts,
        tag_mass_top_share=top_share,
    )
