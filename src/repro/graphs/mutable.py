"""Mutable, versioned graph substrate: edit layers over an immutable base.

A :class:`MutableTagGraph` stacks an append-only sequence of *edit
layers* copy-on-write over an immutable :class:`~repro.graphs.TagGraph`
base, in the spirit of layered views (layers record deltas; views
materialize them). Each :meth:`MutableTagGraph.apply` call appends one
layer and advances the *epoch* — a monotonically increasing version
number. Epoch ``0`` (or whatever the base was compacted at) is the base
snapshot; :meth:`MutableTagGraph.snapshot` materializes any epoch as a
plain immutable :class:`TagGraph`, sharing the per-tag arrays of every
tag the edits never touched.

Edit semantics
--------------
* Node count is fixed at construction; edits never add or remove nodes.
* :class:`EdgeAdd` appends a new edge and returns it the next free edge
  id (``m``, ``m+1``, …). Existing edge ids never shift.
* :class:`EdgeRemove` *tombstones* an edge: every ``P(e | c)`` entry is
  cleared so the edge can never activate, but the ``src``/``dst`` rows
  and the edge id remain. Keeping ids stable is what lets downstream
  RR-sketch repair (:mod:`repro.sketch.incremental`) re-use per-edge
  coin streams: edge ``e``'s random coins are a function of ``e``'s id,
  so a tombstone changes *which* coins matter, never which coins exist.
* :class:`TagSet` sets ``P(e | c) = p`` (creating or overwriting the
  sparse entry); :class:`TagUnset` deletes it (``P(e | c) = 0``).

Dirty tracking
--------------
``dirty_edges(since)`` / ``dirty_nodes(since)`` report which edge ids —
and which edge *destination* nodes — were touched by any layer after
epoch ``since``. The destination-node form is exactly the key the
incremental sketch repair needs: a reverse-reachable set sampled before
the edit can only change if the destination of an edited edge was a
member of the set (the reverse BFS examines an edge's coin only while
dequeuing its destination).
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import GraphConstructionError, InvalidQueryError
from repro.graphs.tag_graph import TagGraph

__all__ = [
    "EdgeAdd",
    "EdgeRemove",
    "GraphEdit",
    "MutableTagGraph",
    "TagSet",
    "TagUnset",
    "edit_from_dict",
    "edits_from_dicts",
]


@dataclass(frozen=True)
class EdgeAdd:
    """Append a new directed edge ``src -> dst`` with per-tag probabilities.

    ``tag_probs`` maps tag name to ``P(e | c) ∈ (0, 1]``; it may be empty
    (an edge no tag activates — useful as a placeholder for later
    :class:`TagSet` edits).
    """

    src: int
    dst: int
    tag_probs: Mapping[str, float] = field(default_factory=dict)

    op = "edge_add"


@dataclass(frozen=True)
class EdgeRemove:
    """Tombstone edge ``edge_id``: clear all its tag probabilities."""

    edge_id: int

    op = "edge_remove"


@dataclass(frozen=True)
class TagSet:
    """Set ``P(edge_id | tag) = prob`` (create or overwrite the entry)."""

    edge_id: int
    tag: str
    prob: float

    op = "tag_set"


@dataclass(frozen=True)
class TagUnset:
    """Delete the ``(edge_id, tag)`` entry — ``P(edge_id | tag) = 0``."""

    edge_id: int
    tag: str

    op = "tag_unset"


GraphEdit = EdgeAdd | EdgeRemove | TagSet | TagUnset

_EDIT_OPS = {
    "edge_add": EdgeAdd,
    "edge_remove": EdgeRemove,
    "tag_set": TagSet,
    "tag_unset": TagUnset,
}


def edit_from_dict(payload: Mapping[str, object]) -> GraphEdit:
    """Parse one wire-format edit ``{"op": ..., ...}`` into a dataclass.

    The wire shapes mirror the dataclass fields::

        {"op": "edge_add", "src": 3, "dst": 7, "tag_probs": {"music": 0.4}}
        {"op": "edge_remove", "edge_id": 12}
        {"op": "tag_set", "edge_id": 12, "tag": "music", "prob": 0.5}
        {"op": "tag_unset", "edge_id": 12, "tag": "music"}
    """
    if not isinstance(payload, Mapping):
        raise InvalidQueryError(f"edit must be an object, got {payload!r}")
    op = payload.get("op")
    cls = _EDIT_OPS.get(op)  # type: ignore[arg-type]
    if cls is None:
        raise InvalidQueryError(
            f"unknown edit op {op!r}; expected one of {sorted(_EDIT_OPS)}"
        )
    kwargs = {k: v for k, v in payload.items() if k != "op"}
    try:
        return cls(**kwargs)  # type: ignore[arg-type]
    except TypeError as exc:
        raise InvalidQueryError(f"malformed {op!r} edit: {exc}") from None


def edits_from_dicts(payloads: Iterable[Mapping[str, object]]) -> list[GraphEdit]:
    """Parse a batch of wire-format edits (see :func:`edit_from_dict`)."""
    return [edit_from_dict(p) for p in payloads]


@dataclass(frozen=True)
class _EditLayer:
    """One applied batch: the epoch it produced and what it touched."""

    epoch: int
    edits: tuple[GraphEdit, ...]
    dirty_edges: np.ndarray  # int64 edge ids touched by this layer
    num_added: int  # edges appended by this layer


class MutableTagGraph:
    """Append-only edit layers stacked copy-on-write over a ``TagGraph``.

    Thread safety: :meth:`apply` and :meth:`compact` must be called from
    one writer at a time (they raise under concurrent misuse only by
    luck — serialize externally, as ``CampaignServer`` does with its
    edit lock). :meth:`snapshot`, :meth:`epoch`, and the dirty queries
    are safe to call concurrently with a writer *for already-published
    epochs*: snapshots are immutable once returned.
    """

    def __init__(self, base: TagGraph, *, base_epoch: int = 0) -> None:
        if base_epoch < 0:
            raise GraphConstructionError(
                f"base_epoch must be >= 0, got {base_epoch}"
            )
        self._base = base
        self._base_epoch = int(base_epoch)
        self._layers: list[_EditLayer] = []
        self._lock = threading.Lock()
        # Current materialized working state (copy-on-write from base).
        self._src: list[int] = []
        self._dst: list[int] = []
        # tag -> {edge_id: prob}; only tags touched by some edit are
        # present here, everything else reads through to the base.
        self._tag_overlays: dict[str, dict[int, float]] = {}
        self._removed: set[int] = set()
        # Snapshot cache: only the *current* epoch is held strongly, so
        # superseded snapshots (and their shared-memory republications
        # downstream) become collectable as soon as readers finish.
        self._current_snapshot: TagGraph | None = base

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Epoch of the newest applied layer (``base_epoch`` if none)."""
        layers = self._layers
        return layers[-1].epoch if layers else self._base_epoch

    @property
    def base_epoch(self) -> int:
        """Epoch of the immutable base snapshot."""
        return self._base_epoch

    @property
    def num_nodes(self) -> int:
        """Fixed node count (edits never add or remove nodes)."""
        return self._base.num_nodes

    @property
    def num_edges(self) -> int:
        """Edge count at the current epoch (tombstones included)."""
        return self._base.num_edges + len(self._src)

    @property
    def num_layers(self) -> int:
        """Number of uncompacted edit layers."""
        return len(self._layers)

    def is_removed(self, edge_id: int) -> bool:
        """Whether ``edge_id`` is tombstoned at the current epoch."""
        return edge_id in self._removed

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def apply(self, edits: Sequence[GraphEdit]) -> int:
        """Apply one batch of edits atomically; return the new epoch.

        Validation happens against the current state *before* any edit
        in the batch mutates it, except that edits within a batch see
        the effects of earlier edits in the same batch (an ``EdgeAdd``
        followed by a ``TagSet`` on the new id is legal). A validation
        failure raises and leaves the graph exactly as it was.
        """
        edits = tuple(edits)
        if not edits:
            raise InvalidQueryError("apply() requires at least one edit")
        with self._lock:
            # Stage on copies so a mid-batch failure cannot torn-write.
            src = list(self._src)
            dst = list(self._dst)
            overlays = {t: dict(d) for t, d in self._tag_overlays.items()}
            removed = set(self._removed)
            base_m = self._base.num_edges
            n = self._base.num_nodes
            dirty: set[int] = set()

            def overlay_for(tag: str) -> dict[int, float]:
                if tag not in overlays:
                    entry: dict[int, float] = {}
                    if self._base.has_tag(tag):
                        ids, probs = self._base.tag_edges(tag)
                        entry = dict(zip(ids.tolist(), probs.tolist()))
                    overlays[tag] = entry
                return overlays[tag]

            for edit in edits:
                if isinstance(edit, EdgeAdd):
                    if not (0 <= edit.src < n and 0 <= edit.dst < n):
                        raise InvalidQueryError(
                            f"edge endpoints ({edit.src}, {edit.dst}) "
                            f"outside [0, {n})"
                        )
                    eid = base_m + len(src)
                    src.append(int(edit.src))
                    dst.append(int(edit.dst))
                    for tag, prob in edit.tag_probs.items():
                        _check_prob(tag, prob)
                        overlay_for(str(tag))[eid] = float(prob)
                    dirty.add(eid)
                elif isinstance(edit, EdgeRemove):
                    eid = _check_edge(edit.edge_id, base_m + len(src))
                    if eid in removed:
                        raise InvalidQueryError(
                            f"edge {eid} is already removed"
                        )
                    removed.add(eid)
                    # Only tags that actually assign this edge need an
                    # overlay; everything else keeps sharing base arrays.
                    touched = {
                        tag for tag, entry in overlays.items() if eid in entry
                    }
                    if eid < base_m:
                        touched.update(self._base.edge_tag_map(eid))
                    for tag in touched:
                        overlay_for(tag).pop(eid, None)
                    dirty.add(eid)
                elif isinstance(edit, TagSet):
                    eid = _check_edge(edit.edge_id, base_m + len(src))
                    if eid in removed:
                        raise InvalidQueryError(
                            f"cannot set tag on removed edge {eid}"
                        )
                    _check_prob(edit.tag, edit.prob)
                    overlay_for(str(edit.tag))[eid] = float(edit.prob)
                    dirty.add(eid)
                elif isinstance(edit, TagUnset):
                    eid = _check_edge(edit.edge_id, base_m + len(src))
                    if eid in removed:
                        raise InvalidQueryError(
                            f"cannot unset tag on removed edge {eid}"
                        )
                    entry = overlay_for(str(edit.tag))
                    if eid not in entry:
                        raise InvalidQueryError(
                            f"edge {eid} has no entry for tag "
                            f"{edit.tag!r} to unset"
                        )
                    del entry[eid]
                    dirty.add(eid)
                else:
                    raise InvalidQueryError(
                        f"unsupported edit type {type(edit).__name__}"
                    )

            epoch = self.epoch + 1
            layer = _EditLayer(
                epoch=epoch,
                edits=edits,
                dirty_edges=np.array(sorted(dirty), dtype=np.int64),
                num_added=len(src) - len(self._src),
            )
            self._src, self._dst = src, dst
            self._tag_overlays = overlays
            self._removed = removed
            self._layers.append(layer)
            self._current_snapshot = None  # materialized lazily
            return epoch

    def compact(self) -> int:
        """Flatten all layers into a new immutable base; return its epoch.

        Edge ids, node ids, and the current-epoch snapshot are all
        preserved bit-identically — compaction only collapses history
        (``dirty_edges`` queries reaching before the compaction point
        conservatively report every edge as dirty afterwards).
        """
        with self._lock:
            snap = self._materialize_locked()
            self._base = snap
            self._base_epoch = self.epoch
            self._layers = []
            self._src, self._dst = [], []
            self._tag_overlays = {}
            self._removed = set()
            self._current_snapshot = snap
            return self._base_epoch

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def snapshot(self, epoch: int | None = None) -> TagGraph:
        """Materialize ``epoch`` (default: current) as an immutable graph.

        The current epoch is cached; older epochs are replayed from the
        base on demand (readers use this to audit historical answers).
        Per-tag arrays of tags no edit ever touched are shared with the
        base by reference.
        """
        with self._lock:
            current = self.epoch
            if epoch is None:
                epoch = current
            if epoch == current:
                return self._materialize_locked()
            if not (self._base_epoch <= epoch < current):
                raise InvalidQueryError(
                    f"epoch {epoch} outside [{self._base_epoch}, {current}]"
                )
            layers = [la for la in self._layers if la.epoch <= epoch]
        # Replay outside the lock: the base and the layer records are
        # immutable, so this races with nothing.
        replay = MutableTagGraph(self._base, base_epoch=self._base_epoch)
        for layer in layers:
            replay.apply(layer.edits)
        return replay.snapshot()

    def _materialize_locked(self) -> TagGraph:
        if self._current_snapshot is not None:
            return self._current_snapshot
        base = self._base
        if self._src:
            src = np.concatenate(
                [base.src, np.array(self._src, dtype=np.int64)]
            )
            dst = np.concatenate(
                [base.dst, np.array(self._dst, dtype=np.int64)]
            )
        else:
            src, dst = base.src, base.dst
        tag_probs: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for tag in sorted(set(base.tags) | set(self._tag_overlays)):
            overlay = self._tag_overlays.get(tag)
            if overlay is None:
                tag_probs[tag] = base._tag_probs[tag]  # shared by reference
                continue
            if not overlay:
                continue  # tag fully cleared — drop from vocabulary
            ids = np.array(sorted(overlay), dtype=np.int64)
            probs = np.array([overlay[int(i)] for i in ids], dtype=np.float64)
            tag_probs[tag] = (ids, probs)
        snap = TagGraph(base.num_nodes, src, dst, tag_probs)
        self._current_snapshot = snap
        return snap

    def dirty_edges(
        self, since_epoch: int, until_epoch: int | None = None
    ) -> np.ndarray:
        """Edge ids touched by layers in ``(since_epoch, until_epoch]``.

        ``since_epoch`` below the base epoch conservatively marks every
        edge dirty (the history was compacted away).
        """
        with self._lock:
            until = self.epoch if until_epoch is None else int(until_epoch)
            if since_epoch < self._base_epoch:
                return np.arange(self.num_edges, dtype=np.int64)
            pieces = [
                layer.dirty_edges
                for layer in self._layers
                if since_epoch < layer.epoch <= until
            ]
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(pieces))

    def dirty_nodes(
        self, since_epoch: int, until_epoch: int | None = None
    ) -> np.ndarray:
        """Destination nodes of :meth:`dirty_edges` — the RR dirty key.

        A reverse-reachable set sampled before the edits is affected iff
        one of these nodes was a member (reverse BFS only inspects an
        edge's coin while dequeuing its destination node).
        """
        edges = self.dirty_edges(since_epoch, until_epoch)
        if not edges.size:
            return edges
        snap = self.snapshot()
        return np.unique(snap.dst[edges])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MutableTagGraph(n={self.num_nodes}, m={self.num_edges}, "
            f"epoch={self.epoch}, layers={self.num_layers})"
        )


def _check_edge(edge_id: int, m: int) -> int:
    eid = int(edge_id)
    if not (0 <= eid < m):
        raise InvalidQueryError(f"edge id {eid} outside [0, {m})")
    return eid


def _check_prob(tag: str, prob: float) -> None:
    if not (0.0 < float(prob) <= 1.0):
        raise InvalidQueryError(
            f"tag {tag!r}: probability must lie in (0, 1], got {prob}"
        )
