"""Unified entry point for tag selection."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.tag_graph import TagGraph
from repro.tags.batch import batch_paths_select_tags
from repro.tags.individual import TagSelection, individual_paths_select_tags
from repro.tags.paths import TagPath, TagSelectionConfig

METHODS = ("batch", "individual")


def find_tags(
    graph: TagGraph,
    seeds: Sequence[int],
    targets: Sequence[int],
    r: int,
    method: str = "batch",
    config: TagSelectionConfig = TagSelectionConfig(),
    rng: np.random.Generator | int | None = None,
    paths: Sequence[TagPath] | None = None,
) -> TagSelection:
    """Find the top-``r`` tags maximizing spread from ``seeds`` to ``targets``.

    Parameters
    ----------
    method:
        ``"batch"`` (the paper's Algorithm 1, default) or
        ``"individual"`` (the conditional-reliability baseline).
    paths:
        Optional pre-enumerated path pool shared across calls.
    """
    if method not in METHODS:
        raise ConfigurationError(
            f"unknown tag-selection method {method!r}; expected one of "
            f"{METHODS}"
        )
    select = (
        batch_paths_select_tags
        if method == "batch"
        else individual_paths_select_tags
    )
    return select(graph, seeds, targets, r, config=config, rng=rng, paths=paths)
