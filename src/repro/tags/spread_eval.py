"""Spread evaluation for sets of selected paths (paper Section 4.4).

Both tag-selection heuristics repeatedly ask: *what is the expected
targeted spread if exactly these paths are active?* Active paths induce
a subgraph of ``(edge, tag)`` pairs; an edge's activation probability is
the independent aggregation of its active pairs, and the spread is the
probabilistic reachability from the seeds to the targets through that
subgraph — the quantity computed by hand in the paper's Example 3/4.

Three estimators are provided, composed by the paper's two-step
strategy:

* **exact** — possible-world enumeration when few distinct edges are
  active (cheap early, exact; also the test oracle);
* **mc** — IC cascades over the masked graph (the paper's choice while
  the running spread is below ``OPT'_T``);
* **rr** — pre-sampled reverse sketches: one coin per ``(edge, tag)``
  pair per sample and a root drawn uniformly from the targets. A path
  covers a sample iff its target is the root and all its pair coins
  succeeded; a path *set*'s spread estimate is the covered fraction
  times ``|T|``. Per-path coverage rows are precomputed bit-vectors, so
  evaluating a candidate batch is a vectorized OR — this is what makes
  batch selection affordable once many paths are active.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import obs
from repro.diffusion.cascade import reachable_targets, simulate_cascade
from repro.exceptions import InvalidQueryError
from repro.graphs.tag_graph import TagGraph
from repro.tags.paths import TagPath, TagSelectionConfig
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_node_ids


class PathSpreadEvaluator:
    """Two-step (exact/MC → RR) spread evaluator over a pooled path list.

    Parameters
    ----------
    graph:
        The tagged graph the paths were enumerated on.
    seeds, targets:
        The fixed seed set and target set of the tag-selection call.
    paths:
        The pooled enumerated paths; evaluation requests refer to them
        by index.
    config:
        Evaluation knobs (sample counts, switch threshold, mode).
    rng:
        Seed or generator (owns all sampling for this evaluator).
    """

    def __init__(
        self,
        graph: TagGraph,
        seeds: Sequence[int],
        targets: Sequence[int],
        paths: Sequence[TagPath],
        config: TagSelectionConfig = TagSelectionConfig(),
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self._graph = graph
        self._seeds = sorted({int(s) for s in seeds})
        self._targets = sorted({int(t) for t in targets})
        if not self._targets:
            raise InvalidQueryError("target set must not be empty")
        check_node_ids(self._seeds, graph.num_nodes, context="evaluator seeds")
        check_node_ids(
            self._targets, graph.num_nodes, context="evaluator targets"
        )
        self._paths = list(paths)
        self._config = config
        self._rng = ensure_rng(rng)

        # Unique (edge, tag) pairs across all paths, with their probs.
        self._pair_index: dict[tuple[int, str], int] = {}
        pair_probs: list[float] = []
        pair_edges: list[int] = []
        self._path_pairs: list[np.ndarray] = []
        for path in self._paths:
            indices = []
            for edge_id, tag in path.pairs:
                key = (edge_id, tag)
                idx = self._pair_index.get(key)
                if idx is None:
                    idx = len(pair_probs)
                    self._pair_index[key] = idx
                    pair_probs.append(graph.edge_tag_probability(edge_id, tag))
                    pair_edges.append(edge_id)
                indices.append(idx)
            self._path_pairs.append(np.array(indices, dtype=np.int64))
        self._pair_probs = np.array(pair_probs, dtype=np.float64)
        self._pair_edges = np.array(pair_edges, dtype=np.int64)

        self._mode = "rr" if config.evaluator_mode == "rr" else "cascade"
        self._opt_prime = config.opt_prime_ratio * len(self._targets)
        self._path_coverage: np.ndarray | None = None
        self.evaluations = 0

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    @property
    def num_paths(self) -> int:
        """How many pooled paths this evaluator knows about."""
        return len(self._paths)

    @property
    def num_targets(self) -> int:
        """Size of the target set ``|T|``."""
        return len(self._targets)

    @property
    def mode(self) -> str:
        """Current estimator mode: ``"cascade"`` (exact/MC) or ``"rr"``."""
        return self._mode

    def spread(self, active_paths: Sequence[int]) -> float:
        """Expected targeted spread when exactly ``active_paths`` are live.

        Applies the two-step strategy in ``"auto"`` mode: cascade-based
        estimation until an estimate crosses ``OPT'_T``, RR sketches
        afterwards.
        """
        self.evaluations += 1
        obs.count("tags.spread_evaluations")
        indices = sorted(set(int(i) for i in active_paths))
        for idx in indices:
            if not (0 <= idx < len(self._paths)):
                raise InvalidQueryError(
                    f"path index {idx} outside [0, {len(self._paths)})"
                )
        if not indices or not self._seeds:
            return 0.0

        if self._mode == "rr":
            return self._rr_spread(indices)

        value = self._cascade_spread(indices)
        if (
            self._config.evaluator_mode == "auto"
            and value >= self._opt_prime
        ):
            self._mode = "rr"
        return value

    # ------------------------------------------------------------------
    # Cascade-based estimation (exact or MC)
    # ------------------------------------------------------------------
    def _edge_probs_for(self, indices: Sequence[int]) -> np.ndarray:
        """Per-edge probability induced by the active (edge, tag) pairs."""
        active_pairs = np.unique(
            np.concatenate([self._path_pairs[i] for i in indices])
        )
        survival = np.ones(self._graph.num_edges, dtype=np.float64)
        np.multiply.at(
            survival,
            self._pair_edges[active_pairs],
            1.0 - self._pair_probs[active_pairs],
        )
        return 1.0 - survival

    def _cascade_spread(self, indices: Sequence[int]) -> float:
        edge_probs = self._edge_probs_for(indices)
        active_edges = np.flatnonzero(edge_probs > 0.0)
        use_exact = self._config.evaluator_mode == "exact" or (
            self._config.evaluator_mode == "auto"
            and active_edges.size <= self._config.exact_edge_limit
        )
        if use_exact:
            return self._exact_spread(edge_probs, active_edges)

        target_arr = np.array(self._targets, dtype=np.int64)
        total = 0
        for _ in range(self._config.mc_samples):
            active = simulate_cascade(
                self._graph, self._seeds, edge_probs, self._rng
            )
            total += int(active[target_arr].sum())
        obs.count("cascade.samples_drawn", self._config.mc_samples)
        return total / self._config.mc_samples

    def _exact_spread(
        self, edge_probs: np.ndarray, active_edges: np.ndarray
    ) -> float:
        total = 0.0
        count = active_edges.size
        for bits in range(1 << count):
            mask = np.zeros(self._graph.num_edges, dtype=bool)
            prob = 1.0
            for pos in range(count):
                eid = int(active_edges[pos])
                if bits >> pos & 1:
                    mask[eid] = True
                    prob *= edge_probs[eid]
                else:
                    prob *= 1.0 - edge_probs[eid]
            if prob == 0.0:
                continue
            total += prob * reachable_targets(
                self._graph, self._seeds, self._targets, mask
            )
        return total

    # ------------------------------------------------------------------
    # RR-sketch estimation
    # ------------------------------------------------------------------
    def _ensure_rr(self) -> np.ndarray:
        """Lazily build the per-path coverage matrix (num_paths × θ)."""
        if self._path_coverage is None:
            theta = self._config.rr_theta
            obs.count("tags.rr_matrix_built")
            obs.count("rr.samples_drawn", theta)
            roots = self._rng.choice(
                np.array(self._targets, dtype=np.int64), size=theta
            )
            # One coin per unique (edge, tag) pair per sample — pairs
            # shared by several paths share their coins within a sample,
            # preserving correlations exactly.
            coins = (
                self._rng.random((self._pair_probs.size, theta))
                < self._pair_probs[:, None]
            )
            coverage = np.zeros((len(self._paths), theta), dtype=bool)
            for idx, path in enumerate(self._paths):
                pair_rows = self._path_pairs[idx]
                row = coins[pair_rows].all(axis=0) if pair_rows.size else (
                    np.ones(theta, dtype=bool)
                )
                coverage[idx] = row & (roots == path.target)
            self._path_coverage = coverage
        return self._path_coverage

    def _rr_spread(self, indices: Sequence[int]) -> float:
        coverage = self._ensure_rr()
        covered = coverage[np.array(indices, dtype=np.int64)].any(axis=0)
        return covered.mean() * len(self._targets)
