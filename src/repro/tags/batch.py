"""Batch-paths tag selection — Algorithm 1 of the paper.

Greedy over *path-batches* instead of single paths: at every round pick
the batch ``P*`` maximizing the marginal-gain-per-new-tag ratio
(Eq. 17), where including a batch also activates every batch dominated
by the enlarged tag set (its descendants, plus anything the union of
old and new tags now covers — the lattice-update of Figure 11 expressed
through the selected tag set ``C1`` rather than destructive surgery;
the two views are equivalent and the equivalence is pinned by the
Figure 9/10 worked example in the test suite).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import obs
from repro.graphs.tag_graph import TagGraph
from repro.tags.individual import TagSelection
from repro.tags.lattice import BatchLattice, build_batches
from repro.tags.paths import TagPath, TagSelectionConfig, collect_paths
from repro.tags.spread_eval import PathSpreadEvaluator
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import check_budget, check_node_ids


def batch_paths_select_tags(
    graph: TagGraph,
    seeds: Sequence[int],
    targets: Sequence[int],
    r: int,
    config: TagSelectionConfig = TagSelectionConfig(),
    rng: np.random.Generator | int | None = None,
    paths: Sequence[TagPath] | None = None,
) -> TagSelection:
    """Select up to ``r`` tags by greedy batch-paths inclusion (Algorithm 1).

    Parameters
    ----------
    paths:
        Pre-enumerated pooled paths; when omitted they are collected
        here (pass the same list to both methods for a fair comparison).
    """
    rng = ensure_rng(rng)
    check_budget(r, graph.num_tags, what="tags")
    seed_list = sorted({int(s) for s in seeds})
    target_list = sorted({int(t) for t in targets})
    check_node_ids(seed_list, graph.num_nodes, context="batch tags")
    check_node_ids(target_list, graph.num_nodes, context="batch tags")

    timer = Timer()
    with timer, obs.span("tags.batch", r=r) as batch_span:
        if paths is None:
            paths = collect_paths(graph, seed_list, target_list, config, rng)
        evaluator = PathSpreadEvaluator(
            graph, seed_list, target_list, paths, config, rng
        )
        with obs.span("tags.build_lattice"):
            batches = build_batches(paths, max_tags=r)
            lattice = BatchLattice(batches)
        batch_span.set(num_paths=len(paths), num_batches=len(batches))

        selected_tags: frozenset[str] = frozenset()
        remaining = set(range(len(batches)))
        current_spread = 0.0

        while remaining and len(selected_tags) < r:
            # Re-measure the incumbent each round in the evaluator's
            # *current* mode: the two-step strategy may have switched
            # from MC to RR sketches since the last round, and marginal
            # gains are only meaningful within one estimator.
            current_spread = (
                evaluator.spread(lattice.active_paths(selected_tags))
                if selected_tags
                else 0.0
            )
            best_idx: int | None = None
            best_ratio = 0.0
            best_gain = 0.0
            exhausted: list[int] = []
            for idx in sorted(remaining):
                batch = batches[idx]
                new_tags = batch.new_tags(selected_tags)
                if not new_tags:
                    # Already dominated by the selected tags — active for
                    # free; drop it from further consideration.
                    exhausted.append(idx)
                    continue
                if len(selected_tags) + len(new_tags) > r:
                    continue
                candidate_tags = selected_tags | new_tags
                active = lattice.active_paths(candidate_tags)
                gain = evaluator.spread(active) - current_spread
                ratio = gain / len(new_tags)
                if best_idx is None or ratio > best_ratio:
                    best_idx, best_ratio, best_gain = idx, ratio, gain
            remaining.difference_update(exhausted)
            if best_idx is None or best_gain <= 0.0:
                break
            selected_tags = selected_tags | batches[best_idx].tag_set
            current_spread += best_gain
            remaining.discard(best_idx)

        active_paths = lattice.active_paths(selected_tags)
        if active_paths:
            current_spread = evaluator.spread(active_paths)

    return TagSelection(
        tags=tuple(sorted(selected_tags)),
        selected_paths=tuple(paths[i] for i in active_paths),
        estimated_spread=current_spread,
        spread_evaluations=evaluator.evaluations,
        elapsed_seconds=timer.elapsed,
        method="batch",
        report=obs.snapshot_report(),
    )
