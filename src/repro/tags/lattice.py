"""Path-batches and the batch lattice (paper Section 4.3, Figure 10).

A *path-batch* ``P(C)`` groups every enumerated path whose tag set is
exactly ``C``; activating the tags of one member activates all of them.
Batches are organized into a lattice by tag-set size, with links from a
batch to the batches in the next lower level whose tag set is a subset
of its own. The *descendants* of a batch are all batches dominated by
it (``Des P(C) = {P(C') : C' ⊆ C}``, Eq. 16) — selecting a batch
activates its descendants for free.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro import obs
from repro.exceptions import InvalidQueryError
from repro.tags.paths import TagPath


@dataclass(frozen=True)
class PathBatch:
    """All enumerated paths sharing one exact tag set.

    Attributes
    ----------
    tag_set:
        The shared tag set ``C``.
    path_indices:
        Indices into the caller's pooled path list.
    """

    tag_set: frozenset[str]
    path_indices: tuple[int, ...]

    @property
    def cost(self) -> int:
        """Number of tags this batch requires (``|C|``)."""
        return len(self.tag_set)

    def new_tags(self, selected: frozenset[str]) -> frozenset[str]:
        """Tags this batch would add on top of an already-selected set."""
        return self.tag_set - selected


def build_batches(
    paths: Sequence[TagPath], max_tags: int | None = None
) -> list[PathBatch]:
    """Group pooled paths into path-batches keyed by exact tag set.

    Paths whose tag set exceeds ``max_tags`` (the budget ``r``) can
    never be activated and are dropped up front, as in the paper's
    lattice construction.
    """
    grouped: dict[frozenset[str], list[int]] = {}
    for idx, path in enumerate(paths):
        tag_set = path.tag_set
        if max_tags is not None and len(tag_set) > max_tags:
            continue
        grouped.setdefault(tag_set, []).append(idx)
    obs.count("tags.batches_built", len(grouped))
    return [
        PathBatch(tag_set=tags, path_indices=tuple(indices))
        for tags, indices in sorted(
            grouped.items(), key=lambda kv: (len(kv[0]), sorted(kv[0]))
        )
    ]


@dataclass
class BatchLattice:
    """Subset lattice over path-batches.

    ``levels[s]`` holds the batches with tag-set size ``s``; ``children``
    maps each batch (by index into ``batches``) to the batches in the
    next lower level whose tag set it contains — the links drawn in
    Figure 10.
    """

    batches: list[PathBatch]
    levels: dict[int, list[int]] = field(init=False)
    children: dict[int, list[int]] = field(init=False)

    def __post_init__(self) -> None:
        self.levels = {}
        for idx, batch in enumerate(self.batches):
            self.levels.setdefault(batch.cost, []).append(idx)

        # Integer bitmasks make the subset tests of activated_by /
        # active_paths cheap (arbitrary-precision ints, so any number
        # of distinct tags is fine).
        self._tag_bits: dict[str, int] = {}
        self._batch_masks: list[int] = []
        for batch in self.batches:
            mask = 0
            for tag in batch.tag_set:
                bit = self._tag_bits.setdefault(tag, len(self._tag_bits))
                mask |= 1 << bit
            self._batch_masks.append(mask)
        sizes = sorted(self.levels)
        self.children = {idx: [] for idx in range(len(self.batches))}
        for pos, size in enumerate(sizes):
            lower_sizes = [s for s in sizes[:pos]]
            if not lower_sizes:
                continue
            next_lower = lower_sizes[-1]
            for idx in self.levels[size]:
                for lower_idx in self.levels[next_lower]:
                    if self.batches[lower_idx].tag_set <= self.batches[
                        idx
                    ].tag_set:
                        self.children[idx].append(lower_idx)

    def descendants(self, batch_index: int) -> list[int]:
        """Indices of all batches whose tag set ⊆ the given batch's set.

        Includes the batch itself (``C ⊆ C``), matching Eq. 16.
        """
        if not (0 <= batch_index < len(self.batches)):
            raise InvalidQueryError(
                f"batch index {batch_index} outside [0, {len(self.batches)})"
            )
        own = self.batches[batch_index].tag_set
        return [
            idx
            for idx, batch in enumerate(self.batches)
            if batch.tag_set <= own
        ]

    def activated_by(self, selected_tags: Iterable[str]) -> list[int]:
        """Batches fully covered by an arbitrary selected tag set."""
        selected_mask = 0
        for tag in selected_tags:
            bit = self._tag_bits.get(tag)
            if bit is not None:
                selected_mask |= 1 << bit
        return [
            idx
            for idx, mask in enumerate(self._batch_masks)
            if mask & ~selected_mask == 0
        ]

    def active_paths(self, selected_tags: Iterable[str]) -> list[int]:
        """Pooled-path indices activated by ``selected_tags``."""
        indices: list[int] = []
        for batch_idx in self.activated_by(selected_tags):
            indices.extend(self.batches[batch_idx].path_indices)
        return sorted(set(indices))
