"""Individual-paths tag selection — the conditional-reliability baseline.

The two-step approach of Khan et al. (Section 4.1): enumerate the
top-``l`` most probable paths per seed-target pair, then greedily
include *one path at a time* — the path with the largest marginal spread
gain whose tags still fit in the budget ``r``. Section 4.2 of the paper
dissects why this is weak (paths sharing tags are not evaluated
together, per-path rather than per-tag marginal gain); it is implemented
here as the baseline Figure 12 compares against.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.graphs.tag_graph import TagGraph
from repro.tags.paths import TagPath, TagSelectionConfig, collect_paths
from repro.tags.spread_eval import PathSpreadEvaluator
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import check_budget, check_node_ids


@dataclass(frozen=True)
class TagSelection:
    """Outcome of a tag-selection run (either method).

    Attributes
    ----------
    tags:
        Selected tag set ``C1`` (may be smaller than ``r`` when no
        further tag improves spread).
    selected_paths:
        The activated paths backing the selection.
    estimated_spread:
        The evaluator's estimate of the spread through those paths.
    spread_evaluations:
        How many path-set evaluations the selection needed.
    elapsed_seconds:
        Wall-clock selection time (path enumeration included).
    method:
        ``"individual"`` or ``"batch"``.
    report:
        Observability report (metrics + trace + phases) when the call
        ran inside an :func:`repro.obs.observe` scope; ``None``
        otherwise.
    """

    tags: tuple[str, ...]
    selected_paths: tuple[TagPath, ...]
    estimated_spread: float
    spread_evaluations: int
    elapsed_seconds: float
    method: str
    report: dict | None = None


def individual_paths_select_tags(
    graph: TagGraph,
    seeds: Sequence[int],
    targets: Sequence[int],
    r: int,
    config: TagSelectionConfig = TagSelectionConfig(),
    rng: np.random.Generator | int | None = None,
    paths: Sequence[TagPath] | None = None,
) -> TagSelection:
    """Select up to ``r`` tags by greedy individual-path inclusion.

    Parameters
    ----------
    paths:
        Pre-enumerated pooled paths; when omitted they are collected
        here (pass the same list to both methods for a fair comparison).
    """
    rng = ensure_rng(rng)
    check_budget(r, graph.num_tags, what="tags")
    seed_list = sorted({int(s) for s in seeds})
    target_list = sorted({int(t) for t in targets})
    check_node_ids(seed_list, graph.num_nodes, context="individual tags")
    check_node_ids(target_list, graph.num_nodes, context="individual tags")

    timer = Timer()
    with timer, obs.span("tags.individual", r=r):
        if paths is None:
            paths = collect_paths(graph, seed_list, target_list, config, rng)
        evaluator = PathSpreadEvaluator(
            graph, seed_list, target_list, paths, config, rng
        )

        selected_tags: set[str] = set()
        selected_paths: list[int] = []
        current_spread = 0.0

        # Lazy-greedy (CELF-style) path inclusion: stale gains are upper
        # bounds in the (empirically near-submodular) common case, so a
        # popped entry that is already fresh wins without a rescan.
        heap: list[tuple[float, int, int]] = []
        for idx, path in enumerate(paths):
            if len(path.tag_set) <= r:
                gain = evaluator.spread([idx])
                heap.append((-gain, -1, idx))
        heapq.heapify(heap)

        round_no = 0
        while heap and len(selected_tags) < r:
            neg_gain, computed_at, idx = heapq.heappop(heap)
            union_size = len(selected_tags | paths[idx].tag_set)
            if union_size > r:
                continue  # infeasible forever: the union only grows
            if -neg_gain <= 0.0:
                break
            if computed_at == round_no:
                selected_paths.append(idx)
                selected_tags |= paths[idx].tag_set
                current_spread += -neg_gain
                round_no += 1
                continue
            # Base and candidate are measured back-to-back so both come
            # from the evaluator's *current* mode — the two-step MC→RR
            # switch must never straddle a marginal-gain subtraction.
            base = (
                evaluator.spread(selected_paths) if selected_paths else 0.0
            )
            fresh = evaluator.spread(selected_paths + [idx]) - base
            heapq.heappush(heap, (-fresh, round_no, idx))

        if selected_paths:
            current_spread = evaluator.spread(selected_paths)

    return TagSelection(
        tags=tuple(sorted(selected_tags)),
        selected_paths=tuple(paths[i] for i in selected_paths),
        estimated_spread=current_spread,
        spread_evaluations=evaluator.evaluations,
        elapsed_seconds=timer.elapsed,
        method="individual",
        report=obs.snapshot_report(),
    )
