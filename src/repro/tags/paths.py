"""Most-probable path enumeration between seeds and targets.

What matters for spread from ``S`` to ``T`` is the set of highly
probable connecting paths (Section 4.1). We enumerate the top-``l``
most probable *simple* paths per seed-target pair over the
``(edge, tag)`` multigraph: parallel copies of each edge, one per tag
with non-zero conditional probability. A path therefore fixes a tag
choice on every hop; its tag set is the union of those choices and its
probability the product of the chosen ``P(e | c)``.

Enumeration is best-first over partial paths ordered by probability.
Because every extension multiplies by a factor ≤ 1, partial-path
probability is an admissible priority: paths pop in exactly
non-increasing probability order, so the first ``l`` arrivals at the
target are the top-``l`` (the same output Eppstein's algorithm would
give restricted to simple paths).

Following the paper's Section 4.2 observation (3), seed nodes other
than the path's own source are never entered: every seed is already
active, so any path through another seed is dominated by that seed's
own shorter suffix. On the paper's Figure 9 example this prunes the
14 raw paths down to the 8 the batch algorithm considers.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.tag_graph import TagGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_node_ids


@dataclass(frozen=True)
class TagPath:
    """A simple path with one tag chosen per hop.

    Attributes
    ----------
    nodes:
        Node sequence, source first, target last.
    edge_ids:
        Edge ids, one per hop (``len(nodes) - 1``).
    tag_choices:
        The tag chosen for each hop, aligned with ``edge_ids``.
    probability:
        Product of the chosen ``P(e | c)`` along the path.
    """

    nodes: tuple[int, ...]
    edge_ids: tuple[int, ...]
    tag_choices: tuple[str, ...]
    probability: float

    @property
    def source(self) -> int:
        """First node (the seed end)."""
        return self.nodes[0]

    @property
    def target(self) -> int:
        """Last node (the target end)."""
        return self.nodes[-1]

    @property
    def tag_set(self) -> frozenset[str]:
        """Distinct tags used along the path (the lattice key)."""
        return frozenset(self.tag_choices)

    @property
    def pairs(self) -> tuple[tuple[int, str], ...]:
        """``(edge_id, tag)`` pairs — the activation coins this path needs."""
        return tuple(zip(self.edge_ids, self.tag_choices))

    def __len__(self) -> int:
        return len(self.edge_ids)


@dataclass(frozen=True)
class TagSelectionConfig:
    """Knobs for path enumeration and tag selection.

    Attributes
    ----------
    per_pair_paths:
        Top-``l`` paths kept per seed-target pair (paper default 10,
        the Figure 12 sweet spot).
    max_hops:
        Hop cap on enumerated paths — long paths have negligible
        probability anyway.
    prob_floor:
        Partial paths below this probability are abandoned.
    max_queue:
        Safety cap on the best-first frontier per pair.
    mc_samples:
        Monte-Carlo samples for path-set spread evaluation.
    rr_theta:
        RR samples for the sketch-based evaluator (Section 4.4).
    opt_prime_ratio:
        The switch threshold ``OPT'_T`` as a fraction of ``|T|``: once
        an MC estimate exceeds it, evaluation switches to RR sketches.
    exact_edge_limit:
        Use exact enumeration instead of MC when the active path set
        touches at most this many distinct edges (test-friendly).
    max_path_targets:
        When the target set is larger than this, path enumeration runs
        against a uniform sample of targets of this size (scaling knob
        for the pure-Python substrate; documented in DESIGN.md).
    evaluator_mode:
        ``"auto"`` (exact → MC → RR per the two-step strategy), or a
        forced ``"exact"`` / ``"mc"`` / ``"rr"``.
    """

    per_pair_paths: int = 10
    max_hops: int = 5
    prob_floor: float = 1e-3
    max_queue: int = 100_000
    mc_samples: int = 200
    rr_theta: int = 1_000
    opt_prime_ratio: float = 0.05
    exact_edge_limit: int = 14
    max_path_targets: int = 200
    evaluator_mode: str = "auto"

    def __post_init__(self) -> None:
        if self.per_pair_paths <= 0:
            raise ConfigurationError("per_pair_paths must be positive")
        if self.max_hops <= 0:
            raise ConfigurationError("max_hops must be positive")
        if not (0.0 <= self.prob_floor < 1.0):
            raise ConfigurationError("prob_floor must lie in [0, 1)")
        if self.mc_samples <= 0 or self.rr_theta <= 0:
            raise ConfigurationError("sample counts must be positive")
        if not (0.0 < self.opt_prime_ratio <= 1.0):
            raise ConfigurationError("opt_prime_ratio must lie in (0, 1]")
        if self.evaluator_mode not in ("auto", "exact", "mc", "rr"):
            raise ConfigurationError(
                f"unknown evaluator_mode {self.evaluator_mode!r}"
            )


# Heap entries are plain tuples (cost, tiebreak, node, nodes, edge_ids,
# tags): tuple comparison stays in C and the unique tiebreak guarantees
# the payload fields are never compared.


def top_paths_from_seed(
    graph: TagGraph,
    source: int,
    targets: Sequence[int],
    limit_per_target: int,
    forbidden: frozenset[int] = frozenset(),
    config: TagSelectionConfig = TagSelectionConfig(),
) -> dict[int, list[TagPath]]:
    """Top-``limit_per_target`` most probable simple paths to *every* target.

    One best-first sweep from ``source`` serves all targets at once —
    the frontier pops partial paths in non-increasing probability order,
    so the first ``limit_per_target`` arrivals at each target are that
    pair's top paths. ``forbidden`` nodes (other seeds) are never
    entered mid-path. Returns ``{target: paths}``; targets with no
    surviving path are absent.
    """
    check_node_ids([source], graph.num_nodes, context="top_paths_from_seed")
    target_set = {int(t) for t in targets if int(t) != source}
    check_node_ids(target_set, graph.num_nodes, context="top_paths_from_seed")
    if not target_set:
        return {}

    counter = itertools.count()
    heap: list[tuple] = [(0.0, next(counter), source, (source,), (), ())]
    fwd_indptr, fwd_edges = graph.forward_csr()
    dst = graph.dst
    tag_neglogs = graph.edge_tag_neglogs()
    found: dict[int, list[TagPath]] = {}
    unfinished = set(target_set)
    floor_cost = (
        math.inf if config.prob_floor <= 0.0 else -math.log(config.prob_floor)
    )
    max_hops = config.max_hops
    max_queue = config.max_queue
    pops = 0

    while heap and unfinished and pops < max_queue:
        cost, _tie, node, nodes, edge_ids, tags = heapq.heappop(heap)
        pops += 1
        if node in target_set:
            bucket = found.setdefault(node, [])
            if len(bucket) < limit_per_target:
                bucket.append(
                    TagPath(
                        nodes=nodes,
                        edge_ids=edge_ids,
                        tag_choices=tags,
                        probability=math.exp(-cost),
                    )
                )
                if len(bucket) >= limit_per_target:
                    unfinished.discard(node)
            # A target may still lie on the way to other targets —
            # keep expanding through it.
        if len(edge_ids) >= max_hops:
            continue
        on_path = set(nodes)
        for eid in fwd_edges[fwd_indptr[node]:fwd_indptr[node + 1]].tolist():
            child = int(dst[eid])
            if child in on_path:
                continue
            if child in forbidden and child != source:
                continue
            child_nodes = nodes + (child,)
            child_edges = edge_ids + (eid,)
            for tag, neglog in tag_neglogs[eid]:
                child_cost = cost + neglog
                if child_cost > floor_cost:
                    continue
                if len(heap) >= max_queue:
                    break
                heapq.heappush(
                    heap,
                    (
                        child_cost,
                        next(counter),
                        child,
                        child_nodes,
                        child_edges,
                        tags + (tag,),
                    ),
                )
    return found


def top_paths(
    graph: TagGraph,
    source: int,
    target: int,
    limit: int,
    forbidden: frozenset[int] = frozenset(),
    config: TagSelectionConfig = TagSelectionConfig(),
) -> list[TagPath]:
    """Top-``limit`` most probable simple (edge, tag) paths source → target.

    Single-pair convenience wrapper over :func:`top_paths_from_seed`;
    paths come back in non-increasing probability order.
    """
    check_node_ids([source, target], graph.num_nodes, context="top_paths")
    if source == target:
        return []
    per_target = top_paths_from_seed(
        graph, source, [target], limit, forbidden=forbidden, config=config
    )
    return per_target.get(int(target), [])


def collect_paths(
    graph: TagGraph,
    seeds: Sequence[int],
    targets: Sequence[int],
    config: TagSelectionConfig = TagSelectionConfig(),
    rng: np.random.Generator | int | None = None,
) -> list[TagPath]:
    """Top-``l`` paths for every (seed, target) pair, pooled and deduped.

    Seed-to-seed hops are excluded (Section 4.2 observation (3)). When
    ``targets`` exceeds ``config.max_path_targets``, a uniform sample of
    that many targets anchors the enumeration — the scaling knob that
    stands in for the paper's C++ throughput.
    """
    rng = ensure_rng(rng)
    seed_list = sorted({int(s) for s in seeds})
    target_list = sorted({int(t) for t in targets})
    check_node_ids(seed_list, graph.num_nodes, context="collect_paths")
    check_node_ids(target_list, graph.num_nodes, context="collect_paths")

    if len(target_list) > config.max_path_targets:
        chosen = rng.choice(
            np.array(target_list, dtype=np.int64),
            size=config.max_path_targets,
            replace=False,
        )
        target_list = sorted(int(t) for t in chosen)

    seed_set = frozenset(seed_list)
    paths: list[TagPath] = []
    seen: set[tuple[tuple[int, ...], tuple[str, ...]]] = set()
    for seed in seed_list:
        per_target = top_paths_from_seed(
            graph,
            seed,
            target_list,
            config.per_pair_paths,
            forbidden=seed_set,
            config=config,
        )
        for target in sorted(per_target):
            for path in per_target[target]:
                key = (path.edge_ids, path.tag_choices)
                if key not in seen:
                    seen.add(key)
                    paths.append(path)
    return paths
