"""Tag-finding algorithms (paper Section 4).

Given a fixed seed set, find the top-``r`` tags maximizing spread into
the target set. The problem is NP-hard, non-submodular and
PTAS-less (Theorems 3–4, Lemma 1), so both methods here are heuristics
over the *highly probable paths* connecting seeds to targets:

* ``individual`` — include one path at a time by marginal spread gain
  (the Khan et al. conditional-reliability baseline, Section 4.1);
* ``batch`` — group paths into *path-batches* sharing a tag set,
  organize batches in a subset lattice, and include whole batches (plus
  their descendants) by marginal-gain-per-new-tag (Algorithm 1 /
  Section 4.3) — up to 30 % more spread at similar cost.
"""

from repro.tags.api import TagSelection, find_tags
from repro.tags.batch import batch_paths_select_tags
from repro.tags.individual import individual_paths_select_tags
from repro.tags.lattice import BatchLattice, PathBatch, build_batches
from repro.tags.paths import (
    TagPath,
    TagSelectionConfig,
    collect_paths,
    top_paths,
    top_paths_from_seed,
)
from repro.tags.spread_eval import PathSpreadEvaluator

__all__ = [
    "BatchLattice",
    "PathBatch",
    "PathSpreadEvaluator",
    "TagPath",
    "TagSelection",
    "TagSelectionConfig",
    "batch_paths_select_tags",
    "build_batches",
    "collect_paths",
    "find_tags",
    "individual_paths_select_tags",
    "top_paths",
    "top_paths_from_seed",
]
