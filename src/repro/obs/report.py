"""Structured run reports.

A report is the JSON document emitted by ``--metrics-out``, attached
to result objects as ``.report``, and pretty-printed by
``repro report``.  Schema (``repro.obs.report/1``)::

    {
      "schema": "repro.obs.report/1",
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
      "trace": [ {name, duration_seconds, attrs?, children?}, ... ],
      "phases": [ {name, seconds, percent}, ... ],
      "trace_id": "q-000042",         # optional correlation id
      "parent_span_id": "3f2-a1"      # optional distributed parent link
    }

Both trailing fields are optional and additive — the schema string is
unchanged. ``parent_span_id`` appears only on reports produced while
serving a *distributed* query (a shard worker executing under a router
``TraceContext``): it names the router-side span the report's trace
roots graft under in the stitched fleet trace.

``phases`` is derived from the trace: the top-level spans, flattened
into a table with their share of the total traced time — the "where
did the run go" summary the paper's runtime figures are built from.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["SCHEMA", "build_report", "render_report"]

SCHEMA = "repro.obs.report/1"


def _phase_table(trace_dicts: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    total = sum(d.get("duration_seconds") or 0.0 for d in trace_dicts)
    phases = []
    for d in trace_dicts:
        seconds = d.get("duration_seconds") or 0.0
        phases.append(
            {
                "name": d["name"],
                "seconds": seconds,
                "percent": (100.0 * seconds / total) if total > 0 else 0.0,
            }
        )
    return phases


def build_report(observation) -> Dict[str, Any]:
    """Snapshot an :class:`~repro.obs.Observation` into report form."""
    trace = observation.tracer.as_dicts()
    report = {
        "schema": SCHEMA,
        "metrics": observation.metrics.as_dict(),
        "trace": trace,
        "phases": _phase_table(trace),
    }
    # Optional correlation id (set by the serving layer): lets a saved
    # report be matched to the same query's live event-log entries.
    if observation.tracer.trace_id is not None:
        report["trace_id"] = observation.tracer.trace_id
    # Distributed queries additionally record the router span their
    # trace grafts under (see repro.obs.distributed).
    parent_span_id = getattr(observation.tracer, "parent_span_id", None)
    if parent_span_id is not None:
        report["parent_span_id"] = parent_span_id
    return report


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable text rendering (used by ``repro report``)."""
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"unrecognised report schema: {report.get('schema')!r} "
            f"(expected {SCHEMA!r})"
        )
    lines: List[str] = []

    phases = report.get("phases") or []
    if phases:
        lines.append("Phases")
        width = max(len(p["name"]) for p in phases)
        for p in phases:
            lines.append(
                f"  {p['name']:<{width}}  {p['seconds']:>9.4f}s"
                f"  {p['percent']:>5.1f}%"
            )
        lines.append("")

    metrics = report.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        lines.append("Counters")
        width = max(len(n) for n in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value}")
        lines.append("")

    gauges = metrics.get("gauges") or {}
    if gauges:
        lines.append("Gauges")
        width = max(len(n) for n in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {value:g}")
        lines.append("")

    histograms = metrics.get("histograms") or {}
    if histograms:
        lines.append("Histograms")
        width = max(len(n) for n in histograms)
        for name, h in histograms.items():
            extra = ""
            if h.get("count"):
                extra = f" min={h['min']:g} max={h['max']:g}"
                if "p50" in h:
                    extra += (
                        f" p50={h['p50']:g} p95={h['p95']:g}"
                        f" p99={h['p99']:g}"
                    )
            lines.append(
                f"  {name:<{width}}  count={h['count']}"
                f" mean={h['mean']:.2f}" + extra
            )
        lines.append("")

    def depth(entries: List[Dict[str, Any]]) -> int:
        if not entries:
            return 0
        return 1 + max(depth(e.get("children") or []) for e in entries)

    trace = report.get("trace") or []
    if trace:
        lines.append(
            f"Trace: {len(trace)} root span(s), max depth {depth(trace)}"
        )

    return "\n".join(lines).rstrip() + "\n"
