"""Typed metrics primitives for the observability subsystem.

Three instrument kinds, mirroring the OpenMetrics trio but with zero
dependencies and deterministic, process-local semantics:

``Counter``
    Monotonically increasing integer — *work performed*.  The
    statistical test suite asserts exact equality between counters
    such as ``rr.samples_drawn`` and the work an algorithm claims to
    have done, so counters must never be approximate.

``Gauge``
    A point-in-time value (last write wins), e.g. the chosen ``theta``
    or the number of workers an engine ended up using.

``Histogram``
    Streaming summary (count / sum / min / max) plus power-of-two
    buckets, for distributions such as per-sample frontier sizes.

All instruments live in a :class:`MetricsRegistry`.  Registries are
cheap; one is created per :func:`repro.obs.observe` scope and thrown
away with it.  None of the code here reads clocks or RNGs — recording
a metric can never perturb an algorithm's random stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_quantile",
]


@dataclass
class Counter:
    """Monotonic integer counter.  ``inc`` by a non-negative amount."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r}: negative increment {amount}"
            )
        self.value += int(amount)

    def as_dict(self) -> int:
        return self.value


@dataclass
class Gauge:
    """Last-write-wins scalar."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_dict(self) -> float:
        return self.value


#: Upper edges of the power-of-two histogram buckets: 1, 2, 4, ... 2^30.
_BUCKET_EDGES: Tuple[int, ...] = tuple(1 << i for i in range(31))


def bucket_quantile(
    buckets: Dict[int, int],
    count: int,
    q: float,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> float:
    """Quantile estimate from power-of-two bucket counts.

    ``buckets`` maps each upper bucket edge to its observation count
    (``-1`` is the overflow bucket); ``count`` is the total. The
    estimate walks the cumulative counts to the bucket containing rank
    ``q * count`` and interpolates linearly between that bucket's lower
    and upper edges (*upper-bound interpolation*: with no information
    about the in-bucket distribution, mass is assumed uniform up to the
    upper edge, so the estimate is exact to within one power-of-two
    bucket). ``lo``/``hi`` — the observed min/max, when known — clamp
    the estimate to the data's actual range.

    Shared by :meth:`Histogram.quantile` (which clamps to the
    histogram's min/max) and the rolling-window telemetry in
    :mod:`repro.obs.live` (which differences two bucket snapshots and
    has no min/max for the window).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count <= 0:
        return float("nan")
    target = q * count
    cumulative = 0
    for edge in sorted(e for e in buckets if e != -1):
        n = buckets[edge]
        if n <= 0:
            continue
        if cumulative + n >= target:
            lower = edge / 2.0 if edge > 1 else 0.0
            within = max(target - cumulative, 0.0) / n
            value = lower + (edge - lower) * within
            if lo is not None:
                value = max(value, lo)
            if hi is not None:
                value = min(value, hi)
            return value
        cumulative += n
    # The rank falls in the overflow bucket, which has no upper edge:
    # interpolate toward the observed max when known, else bound by one
    # more bucket doubling.
    lower = float(_BUCKET_EDGES[-1])
    upper = float(hi) if hi is not None and hi > lower else lower * 2.0
    n_over = buckets.get(-1, 0)
    if n_over <= 0:
        return upper if hi is not None else lower
    within = min(max(target - cumulative, 0.0) / n_over, 1.0)
    value = lower + (upper - lower) * within
    if lo is not None:
        value = max(value, lo)
    if hi is not None:
        value = min(value, hi)
    return value


@dataclass
class Histogram:
    """Streaming distribution summary with power-of-two buckets.

    Bucket ``i`` counts observations ``v`` with
    ``edges[i-1] < v <= edges[i]`` (first bucket: ``v <= 1``); values
    above the last edge land in an overflow bucket.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    buckets: Dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for edge in _BUCKET_EDGES:
            if value <= edge:
                self.buckets[edge] = self.buckets.get(edge, 0) + 1
                return
        self.buckets[-1] = self.buckets.get(-1, 0) + 1  # overflow

    def observe_many(self, values) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the power-of-two buckets.

        Upper-bound bucket interpolation (see :func:`bucket_quantile`),
        clamped to the observed ``[min, max]`` — so the estimate agrees
        with the exact percentile of the recorded values to within one
        power-of-two bucket. Returns ``nan`` for an empty histogram.
        """
        if not self.count:
            return float("nan")
        return bucket_quantile(
            self.buckets, self.count, q, lo=self.min, hi=self.max
        )

    def quantiles(
        self, qs: Iterable[float] = (0.5, 0.95, 0.99)
    ) -> Tuple[float, ...]:
        """Several quantile estimates at once (default p50/p95/p99)."""
        return tuple(self.quantile(q) for q in qs)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
            p50, p95, p99 = self.quantiles((0.5, 0.95, 0.99))
            out["p50"] = p50
            out["p95"] = p95
            out["p99"] = p99
            out["buckets"] = {str(k): v for k, v in sorted(self.buckets.items())}
        return out


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Create-on-demand collection of named instruments.

    Names are dotted strings (``"rr.samples_drawn"``).  Requesting the
    same name twice returns the same instrument; requesting it with a
    different kind raises, so a typo can't silently fork a metric.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, kind: type) -> Instrument:
        found = self._instruments.get(name)
        if found is None:
            found = kind(name=name)
            self._instruments[name] = found
        elif type(found) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(found).__name__}, not {kind.__name__}"
            )
        return found

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)  # type: ignore[return-value]

    # -- convenience recording -------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def record(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- introspection ---------------------------------------------------

    def get(self, name: str) -> Instrument | None:
        return self._instruments.get(name)

    def value(self, name: str, default: int = 0) -> int | float:
        """Value of a counter/gauge, or ``default`` if absent."""
        found = self._instruments.get(name)
        if found is None:
            return default
        if isinstance(found, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; use .get()")
        return found.value

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Serializable snapshot, grouped by instrument kind."""
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Counter):
                counters[name] = inst.as_dict()
            elif isinstance(inst, Gauge):
                gauges[name] = inst.as_dict()
            else:
                histograms[name] = inst.as_dict()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges overwrite,
        histograms combine summaries and buckets."""
        for inst in other:
            if isinstance(inst, Counter):
                self.counter(inst.name).inc(inst.value)
            elif isinstance(inst, Gauge):
                self.gauge(inst.name).set(inst.value)
            else:
                mine = self.histogram(inst.name)
                mine.count += inst.count
                mine.total += inst.total
                mine.min = min(mine.min, inst.min)
                mine.max = max(mine.max, inst.max)
                for edge, n in inst.buckets.items():
                    mine.buckets[edge] = mine.buckets.get(edge, 0) + n

    def reset(self) -> None:
        self._instruments.clear()
