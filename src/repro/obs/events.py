"""Structured query-lifecycle event log (schema ``repro.obs.events/1``).

Metrics answer "how much / how fast"; events answer "what happened,
in what order, to which query". The serving layer emits one event per
lifecycle transition::

    query.admitted     admission control accepted the query
    query.queued       the query entered the worker-pool run queue
    query.build.start  this query became the single-flight builder
    query.build.done   the build finished (``ok`` tells success)
    query.cache.hit    the query reused a resident / in-flight asset
    query.done         the query finished (``ok``, ``cache``, latency)
    query.rejected     admission refused it (overload / closed)

Every event carries the query's ``trace_id`` — the same id stamped on
the query's ``serve.query`` span and Chrome trace events — so a slow
entry in the event log can be correlated with its spans, and vice
versa.

Events live in a bounded in-memory ring (old events are overwritten,
never blocking a query) and can additionally be mirrored to a JSONL
sink (``repro serve --events-out``), one event object per line. The
ring is served live at the telemetry endpoint's ``/events`` route.

Emitting an event reads the wall clock but never touches an
observation scope, RNG, or algorithm state — the serving layer's
bit-identity invariant (results and work counters identical with
telemetry on or off) is preserved by construction.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Any, Dict, List, Optional

__all__ = ["EVENTS_SCHEMA", "Event", "EventLog"]

EVENTS_SCHEMA = "repro.obs.events/1"


@dataclass(frozen=True)
class Event:
    """One immutable lifecycle event."""

    seq: int
    ts: float  # wall-clock epoch seconds (operational, not deterministic)
    kind: str
    trace_id: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class EventLog:
    """Thread-safe bounded event ring with an optional JSONL sink.

    Parameters
    ----------
    capacity:
        Ring size; ``0`` disables the ring (events still reach an
        attached sink). Once full, each new event overwrites the
        oldest and bumps ``dropped`` — emission never blocks.
    sink:
        Optional text stream; every event is written as one JSON line.
        Use :meth:`open_sink` instead to have the log own (and close)
        the file. Sink writes happen under the log's lock, so sinks
        must be plain local files, not slow remote handles.
    """

    def __init__(
        self, capacity: int = 1024, sink: Optional[IO[str]] = None
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._ring: Optional[deque] = (
            deque(maxlen=capacity) if capacity else None
        )
        self._lock = threading.Lock()
        self._seq = 0
        self._dropped = 0
        self._sink = sink
        self._owns_sink = False
        self._closed = False

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether emitting has any effect (ring or sink present)."""
        return self._ring is not None or self._sink is not None

    def emit(
        self, kind: str, trace_id: Optional[str] = None, **attrs: Any
    ) -> Optional[Event]:
        """Append one event; returns it (or ``None`` when disabled)."""
        with self._lock:
            if self._closed or not self.enabled:
                return None
            self._seq += 1
            event = Event(
                seq=self._seq,
                ts=time.time(),
                kind=kind,
                trace_id=trace_id,
                attrs=attrs,
            )
            if self._ring is not None:
                if len(self._ring) == self._ring.maxlen:
                    self._dropped += 1
                self._ring.append(event)
            if self._sink is not None:
                self._sink.write(json.dumps(event.as_dict()) + "\n")
        return event

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._ring) if self._ring is not None else 0

    @property
    def dropped(self) -> int:
        """Events overwritten after the ring filled up."""
        with self._lock:
            return self._dropped

    @property
    def total(self) -> int:
        """Events ever emitted (monotonic)."""
        with self._lock:
            return self._seq

    def snapshot(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent events as dicts, oldest first."""
        with self._lock:
            events = list(self._ring) if self._ring is not None else []
        if limit is not None and limit >= 0:
            events = events[-limit:]
        return [e.as_dict() for e in events]

    def payload(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The ``/events`` endpoint document."""
        with self._lock:
            dropped, total = self._dropped, self._seq
        return {
            "schema": EVENTS_SCHEMA,
            "capacity": self.capacity,
            "total": total,
            "dropped": dropped,
            "events": self.snapshot(limit),
        }

    # ------------------------------------------------------------------
    # Sink lifecycle
    # ------------------------------------------------------------------
    def open_sink(self, path) -> None:
        """Open ``path`` as an owned line-buffered JSONL sink."""
        handle = open(path, "w", encoding="utf-8", buffering=1)
        with self._lock:
            if self._sink is not None and self._owns_sink:
                self._sink.close()
            self._sink = handle
            self._owns_sink = True

    def attach_sink(self, sink: IO[str]) -> None:
        """Mirror events to a caller-owned stream (not closed by us)."""
        with self._lock:
            self._sink = sink
            self._owns_sink = False

    def flush(self) -> None:
        """Flush the sink (no-op without one)."""
        with self._lock:
            if self._sink is not None:
                self._sink.flush()

    def close(self) -> None:
        """Flush and release the sink; idempotent. The ring survives
        (still snapshottable) but further emits are dropped."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._sink is not None:
                self._sink.flush()
                if self._owns_sink:
                    self._sink.close()
                self._sink = None
