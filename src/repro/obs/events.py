"""Structured query-lifecycle event log (schema ``repro.obs.events/2``).

Metrics answer "how much / how fast"; events answer "what happened,
in what order, to which query". The serving layer emits one event per
lifecycle transition::

    query.admitted     admission control accepted the query
    query.queued       the query entered the worker-pool run queue
    query.build.start  this query became the single-flight builder
    query.build.done   the build finished (``ok`` tells success)
    query.cache.hit    the query reused a resident / in-flight asset
    query.done         the query finished (``ok``, ``cache``, latency)
    query.rejected     admission refused it (overload / closed)

Every event carries the query's ``trace_id`` — the same id stamped on
the query's ``serve.query`` span and Chrome trace events — so a slow
entry in the event log can be correlated with its spans, and vice
versa.

Events live in a bounded in-memory ring (old events are overwritten,
never blocking a query) and can additionally be mirrored to a JSONL
sink (``repro serve --events-out``), one event object per line. The
ring is served live at the telemetry endpoint's ``/events`` route.

The sink is *hardened against the disk*: a write failure (ENOSPC, EIO,
a file descriptor yanked from under us) is dropped and counted
(``sink_errors`` in the ``/events`` payload) — it never raises into the
serving path, because losing a telemetry line must never fail a query.
Owned sinks opened with ``open_sink(path, max_bytes=..., backups=...)``
rotate by size: at the byte threshold the file is renamed to
``<path>.1`` (shifting older generations up, discarding past
``backups``), so a long-lived server keeps at most ``backups + 1``
event files on disk.

Emitting an event reads the wall clock but never touches an
observation scope, RNG, or algorithm state — the serving layer's
bit-identity invariant (results and work counters identical with
telemetry on or off) is preserved by construction.

Schema ``/2`` (fleet merge): when the shard router aggregates worker
event streams (:func:`repro.obs.distributed.merge_event_payloads`),
each merged record additionally carries a top-level ``worker`` source
label and the fleet ``epoch``. Records emitted by a single process are
unchanged — ``/2`` is purely additive; consumers of ``/1`` only need to
tolerate the two new optional fields (see ``docs/observability.md``
for the migration note).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Any, Dict, List, Optional

__all__ = ["EVENTS_SCHEMA", "Event", "EventLog"]

EVENTS_SCHEMA = "repro.obs.events/2"


@dataclass(frozen=True)
class Event:
    """One immutable lifecycle event."""

    seq: int
    ts: float  # wall-clock epoch seconds (operational, not deterministic)
    kind: str
    trace_id: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class EventLog:
    """Thread-safe bounded event ring with an optional JSONL sink.

    Parameters
    ----------
    capacity:
        Ring size; ``0`` disables the ring (events still reach an
        attached sink). Once full, each new event overwrites the
        oldest and bumps ``dropped`` — emission never blocks.
    sink:
        Optional text stream; every event is written as one JSON line.
        Use :meth:`open_sink` instead to have the log own (and close)
        the file. Sink writes happen under the log's lock, so sinks
        must be plain local files, not slow remote handles.
    """

    def __init__(
        self, capacity: int = 1024, sink: Optional[IO[str]] = None
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._ring: Optional[deque] = (
            deque(maxlen=capacity) if capacity else None
        )
        self._lock = threading.Lock()
        self._seq = 0
        self._dropped = 0
        self._sink = sink
        self._owns_sink = False
        self._closed = False
        self._sink_errors = 0
        self._sink_path: Optional[str] = None
        self._sink_bytes = 0
        self._max_bytes: Optional[int] = None
        self._backups = 0

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether emitting has any effect (ring or sink present)."""
        return self._ring is not None or self._sink is not None

    def emit(
        self, kind: str, trace_id: Optional[str] = None, **attrs: Any
    ) -> Optional[Event]:
        """Append one event; returns it (or ``None`` when disabled)."""
        with self._lock:
            if self._closed or not self.enabled:
                return None
            self._seq += 1
            event = Event(
                seq=self._seq,
                ts=time.time(),
                kind=kind,
                trace_id=trace_id,
                attrs=attrs,
            )
            if self._ring is not None:
                if len(self._ring) == self._ring.maxlen:
                    self._dropped += 1
                self._ring.append(event)
            if self._sink is not None:
                self._write_sink_locked(json.dumps(event.as_dict()) + "\n")
        return event

    def _write_sink_locked(self, line: str) -> None:
        """Write one line to the sink; disk failures drop-and-count.

        Telemetry must never fail a query: any :class:`OSError` from
        the write or rotation (ENOSPC, EIO, a revoked descriptor) bumps
        ``sink_errors`` and the event is simply not persisted — the
        in-memory ring still has it.
        """
        try:
            if (
                self._max_bytes is not None
                and self._sink_path is not None
                and self._sink_bytes + len(line) > self._max_bytes
                and self._sink_bytes > 0
            ):
                self._rotate_locked()
            self._sink.write(line)
            self._sink_bytes += len(line)
        except (OSError, ValueError):
            # ValueError covers writes to a handle a failed rotation
            # left closed — same treatment: count, don't raise.
            self._sink_errors += 1

    def _rotate_locked(self) -> None:
        """Rename the active file to ``.1``, shifting older generations.

        Keeps at most ``backups`` rotated files: ``<path>.backups`` is
        deleted, ``<path>.i`` becomes ``<path>.i+1``, the active file
        becomes ``<path>.1``, and a fresh active file is opened. With
        ``backups == 0`` the active file is simply truncated.
        """
        path = self._sink_path
        self._sink.close()
        if self._backups > 0:
            last = f"{path}.{self._backups}"
            if os.path.exists(last):
                os.remove(last)
            for index in range(self._backups - 1, 0, -1):
                src = f"{path}.{index}"
                if os.path.exists(src):
                    os.replace(src, f"{path}.{index + 1}")
            os.replace(path, f"{path}.1")
        self._sink = open(path, "w", encoding="utf-8", buffering=1)
        self._sink_bytes = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._ring) if self._ring is not None else 0

    @property
    def dropped(self) -> int:
        """Events overwritten after the ring filled up."""
        with self._lock:
            return self._dropped

    @property
    def total(self) -> int:
        """Events ever emitted (monotonic)."""
        with self._lock:
            return self._seq

    @property
    def sink_errors(self) -> int:
        """Sink writes dropped on disk errors (ENOSPC, EIO, …)."""
        with self._lock:
            return self._sink_errors

    def snapshot(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent events as dicts, oldest first."""
        with self._lock:
            events = list(self._ring) if self._ring is not None else []
        if limit is not None and limit >= 0:
            events = events[-limit:]
        return [e.as_dict() for e in events]

    def payload(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The ``/events`` endpoint document."""
        with self._lock:
            dropped, total = self._dropped, self._seq
            sink_errors = self._sink_errors
        return {
            "schema": EVENTS_SCHEMA,
            "capacity": self.capacity,
            "total": total,
            "dropped": dropped,
            "sink_errors": sink_errors,
            "events": self.snapshot(limit),
        }

    # ------------------------------------------------------------------
    # Sink lifecycle
    # ------------------------------------------------------------------
    def open_sink(
        self,
        path,
        max_bytes: Optional[int] = None,
        backups: int = 3,
    ) -> None:
        """Open ``path`` as an owned line-buffered JSONL sink.

        ``max_bytes`` enables size-based rotation: when the active file
        would exceed it, it is rotated to ``<path>.1`` (older
        generations shift up; at most ``backups`` are kept, so disk
        usage is bounded by ``(backups + 1) * max_bytes`` plus one
        line). ``max_bytes=None`` (default) never rotates.
        """
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if backups < 0:
            raise ValueError(f"backups must be >= 0, got {backups}")
        handle = open(path, "w", encoding="utf-8", buffering=1)
        with self._lock:
            if self._sink is not None and self._owns_sink:
                self._sink.close()
            self._sink = handle
            self._owns_sink = True
            self._sink_path = os.fspath(path)
            self._sink_bytes = 0
            self._max_bytes = max_bytes
            self._backups = int(backups)

    def attach_sink(self, sink: IO[str]) -> None:
        """Mirror events to a caller-owned stream (not closed by us)."""
        with self._lock:
            self._sink = sink
            self._owns_sink = False
            self._sink_path = None
            self._sink_bytes = 0
            self._max_bytes = None

    def flush(self) -> None:
        """Flush the sink (no-op without one; disk errors are counted)."""
        with self._lock:
            if self._sink is not None:
                try:
                    self._sink.flush()
                except (OSError, ValueError):
                    self._sink_errors += 1

    def close(self) -> None:
        """Flush and release the sink; idempotent. The ring survives
        (still snapshottable) but further emits are dropped."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._sink is not None:
                try:
                    self._sink.flush()
                    if self._owns_sink:
                        self._sink.close()
                except (OSError, ValueError):
                    self._sink_errors += 1
                self._sink = None
