"""Opt-in kernel profiling hooks.

Two layers, both off unless ``obs.observe(profile=True)`` is active:

* :func:`kernel_timer` — a micro-span around one hot-kernel call.
  Records a ``<name>.seconds`` histogram and a ``<name>.calls``
  counter into the active registry instead of creating trace spans,
  because hot kernels run thousands of times and a span per call
  would swamp the trace.
* :func:`profile_session` — a cProfile context for whole-block
  profiling, returning pstats-formatted top entries.  Used by hand
  when a kernel regression needs attribution, never on by default.

These hooks only fire in the driver process: pool workers have no
active observation, and per-worker timings would not be comparable
anyway (see docs/observability.md).
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro import obs

__all__ = ["kernel_timer", "profile_session"]


@contextmanager
def kernel_timer(name: str) -> Iterator[None]:
    """Time one kernel invocation into ``<name>.seconds`` /
    ``<name>.calls`` when profiling is enabled; otherwise free."""
    if not obs.profiling_enabled():
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        obs.count(f"{name}.calls")
        obs.record(f"{name}.seconds", elapsed)


@contextmanager
def profile_session(top: int = 20) -> Iterator[dict]:
    """cProfile the enclosed block; ``result["stats"]`` holds the
    formatted top-``top`` cumulative entries after exit."""
    result: dict = {"stats": None}
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield result
    finally:
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        result["stats"] = buffer.getvalue()
