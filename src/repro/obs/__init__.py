"""repro.obs — zero-dependency observability for the reproduction.

One mechanism serves every layer: an *observation* bundles a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.trace.Tracer`, and instrumented code talks to
whichever observation is currently active via module-level helpers::

    from repro import obs

    with obs.observe() as ob:
        result = trs_select_seeds(graph, targets, tags, k, rng=7)
    report = ob.report()          # metrics + trace + per-phase table

Inside library code::

    obs.count("rr.samples_drawn", theta)      # counter
    obs.record("frontier.size", frontier.size)  # histogram
    with obs.span("trs.sample", theta=theta):   # traced region
        ...

Design constraints, in priority order:

1. **Zero overhead when off.**  Every helper starts with an
   ``_ACTIVE is None`` check and returns immediately (``span`` returns
   a shared null singleton).  The default state is off; benchmarks and
   production runs pay one attribute load + ``is`` test per call site.
2. **Never perturbs results.**  Recording reads no RNG and mutates no
   algorithm state, so runs with and without observability are
   bit-identical (asserted by ``tests/test_obs.py``).
3. **Exact counters.**  Work counters are incremented where the work
   is *known* (driver level, from returned shapes), not sampled — so
   they are invariant to worker count and checkpoint/resume replay.

Observations nest: ``observe()`` inside an active scope stacks, and
the inner scope's metrics fold into the outer one on exit.

Observation scopes are **thread-local**: each thread has its own
active-observation slot and nesting stack, so concurrent queries (the
``repro.serve`` worker pool) each get an isolated scope — one query's
counters can never bleed into another's report. A scope opened on one
thread is invisible to every other thread; code that fans work out to
*threads* and wants it observed must open a scope in each worker (the
serving layer does exactly that, per query). Process pools are
unaffected — workers never had an active observation to begin with.
"""

from __future__ import annotations

import functools
import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional

from repro.obs.events import EVENTS_SCHEMA, Event, EventLog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
)
from repro.obs.report import build_report, render_report
from repro.obs.trace import NULL_SPAN, Span, Tracer, chrome_events_from_dicts

__all__ = [
    "Observation",
    "observe",
    "active",
    "current_registry",
    "count",
    "record",
    "gauge",
    "span",
    "traced",
    "profiling_enabled",
    "snapshot_report",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_quantile",
    "Tracer",
    "Span",
    "build_report",
    "render_report",
    "chrome_events_from_dicts",
    "Event",
    "EventLog",
    "EVENTS_SCHEMA",
    # live-telemetry names, resolved lazily via __getattr__ so the hot
    # path never imports http.server:
    "TelemetryExporter",
    "TelemetryEndpoint",
    "LiveTelemetry",
    "start_live_telemetry",
    "render_openmetrics",
    "parse_openmetrics",
    # distributed-tracing names, likewise lazy (repro.obs.distributed):
    "TraceContext",
    "TraceCollector",
    "FlightRecorder",
    "merge_event_payloads",
    "span_bundle_from_tracer",
    "new_span_id",
    "TRACE_CONTEXT_KEY",
    "SPAN_BUNDLE_KEY",
    "TRACE_SCHEMA",
    "FLIGHT_SCHEMA",
]

#: Names forwarded to :mod:`repro.obs.live` on first access (PEP 562).
_LIVE_EXPORTS = frozenset(
    {
        "TelemetryExporter",
        "TelemetryEndpoint",
        "LiveTelemetry",
        "start_live_telemetry",
        "render_openmetrics",
        "parse_openmetrics",
    }
)

#: Names forwarded to :mod:`repro.obs.distributed` on first access.
_DISTRIBUTED_EXPORTS = frozenset(
    {
        "TraceContext",
        "TraceCollector",
        "FlightRecorder",
        "merge_event_payloads",
        "span_bundle_from_tracer",
        "new_span_id",
        "TRACE_CONTEXT_KEY",
        "SPAN_BUNDLE_KEY",
        "TRACE_SCHEMA",
        "FLIGHT_SCHEMA",
    }
)


def __getattr__(name: str) -> Any:
    if name in _LIVE_EXPORTS:
        from repro.obs import live

        return getattr(live, name)
    if name in _DISTRIBUTED_EXPORTS:
        from repro.obs import distributed

        return getattr(distributed, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class Observation:
    """A live observability scope: one registry + one tracer."""

    def __init__(self, profile: bool = False) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.profile = bool(profile)

    def report(self) -> dict:
        """Structured run report (see ``docs/observability.md``)."""
        return build_report(self)


class _ThreadState(threading.local):
    """Per-thread observation state: the active scope + nesting stack.

    Thread-locality is what makes concurrent serving safe: each query
    thread opens its own ``observe()`` scope and records into it without
    any locking — there is nothing shared to lock.
    """

    def __init__(self) -> None:  # called once per thread, lazily
        self.active: Optional[Observation] = None
        self.stack: List[Observation] = []


_STATE = _ThreadState()


def active() -> Optional[Observation]:
    """The current thread's active observation, or ``None``."""
    return _STATE.active


def current_registry() -> Optional[MetricsRegistry]:
    """The active metrics registry, or ``None`` when off."""
    ob = _STATE.active
    return ob.metrics if ob is not None else None


@contextmanager
def observe(profile: bool = False) -> Iterator[Observation]:
    """Enable observability for the enclosed block (this thread only).

    Nested scopes stack; on exit an inner scope's metrics are merged
    into its parent so outer reports stay complete.
    """
    ob = Observation(profile=profile)
    if _STATE.active is not None:
        _STATE.stack.append(_STATE.active)
    _STATE.active = ob
    try:
        yield ob
    finally:
        parent = _STATE.stack.pop() if _STATE.stack else None
        _STATE.active = parent
        if parent is not None:
            parent.metrics.merge(ob.metrics)
            # Inner spans nest under the parent's open span (if any),
            # re-based onto the parent's clock — a query's report shows
            # asset-build spans under its own root span.
            parent.tracer.adopt(ob.tracer)


# ---------------------------------------------------------------------------
# Cheap recording helpers — each is a no-op unless an observation is active.
# ---------------------------------------------------------------------------


def count(name: str, amount: int = 1) -> None:
    """Increment counter ``name`` by ``amount`` (no-op when off)."""
    ob = _STATE.active
    if ob is not None:
        ob.metrics.count(name, amount)


def record(name: str, value: float) -> None:
    """Observe ``value`` in histogram ``name`` (no-op when off)."""
    ob = _STATE.active
    if ob is not None:
        ob.metrics.record(name, value)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op when off)."""
    ob = _STATE.active
    if ob is not None:
        ob.metrics.set_gauge(name, value)


def span(name: str, **attrs: Any):
    """Open a traced span (returns a shared null span when off)."""
    ob = _STATE.active
    if ob is not None:
        return ob.tracer.span(name, **attrs)
    return NULL_SPAN


def profiling_enabled() -> bool:
    """True when the active observation asked for kernel profiling."""
    ob = _STATE.active
    return ob is not None and ob.profile


def snapshot_report() -> Optional[dict]:
    """Current observation's report, or ``None`` when off.

    Result objects attach this on construction so every result carries
    the metrics and completed spans of the run that produced it. Spans
    still open at snapshot time (enclosing scopes) are not included.
    """
    ob = _STATE.active
    return ob.report() if ob is not None else None


def traced(name: str) -> Callable:
    """Decorator: wrap every call of ``fn`` in ``span(name)``."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            ob = _STATE.active
            if ob is None:
                return fn(*args, **kwargs)
            with ob.tracer.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
