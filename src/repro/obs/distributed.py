"""Fleet-wide distributed tracing (``repro.obs.distributed``).

The sharded campaign service (``repro.serve.shard``) runs a router plus
N worker processes. Observability used to stop at the process boundary:
the router's ``serve.query`` span and the worker's sketch-build spans
lived in different ``Tracer`` instances on different monotonic clocks,
and ``/events`` streams were per-process. This module makes the fleet
observable as *one* system:

``TraceContext``
    The compact propagation record ``(trace_id, parent_span_id)``
    carried on the wire protocol under the private ``"_trace"`` key and
    on the rid-tagged router→worker pipe messages. A worker that
    receives one roots its local spans under the router's query span:
    the ids stitch the cross-process parent link, while in-process
    nesting keeps using ``Tracer.adopt()`` exactly as before.

``TraceCollector``
    The router-side store. Router spans are timed directly on the
    router clock (``begin``/``finish``); worker span bundles arrive
    piggy-backed on replies and are translated onto the router clock
    using the per-worker offset measured at the spawn handshake
    (``offset = router_perf_counter − worker_perf_counter``, re-measured
    on every respawn). ``chrome_trace()`` emits one Chrome trace with
    real pids and ``process_name``/``thread_name`` metadata rows, so
    ``chrome://tracing`` shows the fleet as one timeline.

``merge_event_payloads``
    Causal merge of per-process :class:`~repro.obs.events.EventLog`
    payloads into a single ordered stream (schema
    ``repro.obs.events/2``): every record gains its source ``worker``
    label and the fleet ``epoch``, and records are ordered by wall-clock
    timestamp with a stable ``(worker, seq)`` tiebreak.

``FlightRecorder``
    A bounded ring of "flight records" for the queries worth a
    post-mortem: anything that blew a latency/deadline threshold or
    ended in rejection keeps its stitched trace, per-phase report, and
    the QoS decisions that shaped it. Served at ``/debug/slow`` and by
    ``repro flightrec``.

Clock-alignment honesty: the handshake offset includes the one-way
pipe latency of the ready message, so worker timestamps mapped onto the
router clock can be *late* by that latency (microseconds on one host).
Span durations are unaffected — they are measured on a single clock —
and the bias is positive, so a worker span never appears to start
before the router dispatched it.

Everything here is observability-only: no code path in this module may
influence query answers or work counters. The serving layers guarantee
bit-identical responses with tracing on or off.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

__all__ = [
    "FLIGHT_SCHEMA",
    "SPAN_BUNDLE_KEY",
    "TRACE_CONTEXT_KEY",
    "TRACE_SCHEMA",
    "FlightRecorder",
    "TraceCollector",
    "TraceContext",
    "empty_trace_payload",
    "merge_event_payloads",
    "new_span_id",
    "span_bundle_from_tracer",
]

#: Private wire key carrying a serialized :class:`TraceContext` on a
#: request. Stripped before op dispatch so responses and validation
#: behavior are byte-identical with tracing on or off.
TRACE_CONTEXT_KEY = "_trace"

#: Private wire key under which a worker piggy-backs completed span
#: bundles on a reply. The router strips it in its receive loop before
#: the response surfaces, so client-visible responses never change.
SPAN_BUNDLE_KEY = "_spans"

TRACE_SCHEMA = "repro.obs.trace/1"
FLIGHT_SCHEMA = "repro.obs.flight/1"

_SPAN_SEQ = itertools.count(1)


def new_span_id() -> str:
    """Process-unique span id: ``"<pid hex>-<seq hex>"``.

    Ids only need to be unique within one stitched trace; embedding the
    pid keeps router- and worker-generated ids from colliding without
    any cross-process coordination.
    """
    return f"{os.getpid():x}-{next(_SPAN_SEQ):x}"


@dataclass(frozen=True)
class TraceContext:
    """Cross-process trace propagation record.

    ``trace_id`` names the end-to-end query trace; ``parent_span_id``
    is the id of the span (usually the router's ``serve.query``) the
    receiver's local roots should graft under.
    """

    trace_id: str
    parent_span_id: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"trace_id": self.trace_id}
        if self.parent_span_id is not None:
            payload["parent_span_id"] = self.parent_span_id
        return payload

    @classmethod
    def from_dict(cls, payload: Any) -> Optional["TraceContext"]:
        """Parse a wire dict; malformed input yields ``None``, never a
        raised error (a bad trace header must not fail the query)."""
        if not isinstance(payload, Mapping):
            return None
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        parent = payload.get("parent_span_id")
        if not isinstance(parent, str):
            parent = None
        return cls(trace_id=trace_id, parent_span_id=parent)

    @classmethod
    def pop_from(cls, request: Any) -> Optional["TraceContext"]:
        """Remove and parse the ``"_trace"`` key from a request dict."""
        if not isinstance(request, dict) or TRACE_CONTEXT_KEY not in request:
            return None
        return cls.from_dict(request.pop(TRACE_CONTEXT_KEY))


def span_bundle_from_tracer(
    tracer,
    *,
    parent_span_id: Optional[str] = None,
    worker: Optional[str] = None,
    pid: Optional[int] = None,
    report: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Package a finished :class:`~repro.obs.trace.Tracer` for shipping.

    The bundle records the tracer's *origin* on the local monotonic
    clock; the collector uses the handshake offset to translate it onto
    the router clock when stitching.
    """
    bundle: Dict[str, Any] = {
        "trace_id": tracer.trace_id,
        "origin": tracer.origin,
        "spans": tracer.as_dicts(),
    }
    if parent_span_id is not None:
        bundle["parent_span_id"] = parent_span_id
    if worker is not None:
        bundle["worker"] = worker
    if pid is not None:
        bundle["pid"] = int(pid)
    if report is not None:
        bundle["report"] = report
    return bundle


class TraceCollector:
    """Bounded per-trace store that stitches fleet spans.

    Thread-safe. Holds at most ``capacity`` traces (oldest evicted) and
    at most ``max_bundles_per_trace`` shipped bundles per trace, so a
    long-lived router cannot grow without bound.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        label: str = "router",
        max_bundles_per_trace: int = 64,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.label = str(label)
        self.pid = os.getpid()
        self._max_bundles = int(max_bundles_per_trace)
        self._origin = time.perf_counter()
        self._lock = threading.Lock()
        # trace_id -> {"records": [router spans], "bundles": [shipped]}
        self._traces: "OrderedDict[str, Dict[str, List[Any]]]" = OrderedDict()
        self._evicted = 0
        self._dropped_bundles = 0

    # -- ingestion -----------------------------------------------------

    def _entry_locked(self, trace_id: str) -> Dict[str, List[Any]]:
        entry = self._traces.get(trace_id)
        if entry is None:
            while len(self._traces) >= self.capacity:
                self._traces.popitem(last=False)
                self._evicted += 1
            entry = {"records": [], "bundles": []}
            self._traces[trace_id] = entry
        return entry

    def begin(self, name: str, *, trace_id: str, **attrs: Any) -> Dict[str, Any]:
        """Open a local (router-clock) span; returns the live record."""
        record: Dict[str, Any] = {
            "name": name,
            "trace_id": trace_id,
            "span_id": new_span_id(),
            "start": time.perf_counter() - self._origin,
            "duration": None,
            "tid": threading.get_ident() % 1_000_000,
            "attrs": dict(attrs),
        }
        with self._lock:
            self._entry_locked(trace_id)["records"].append(record)
        return record

    def finish(self, record: Dict[str, Any], **attrs: Any) -> None:
        """Close a record returned by :meth:`begin`."""
        end = time.perf_counter() - self._origin
        with self._lock:
            record["duration"] = max(end - record["start"], 0.0)
            if attrs:
                record["attrs"].update(attrs)

    def add_bundle(
        self,
        bundle: Any,
        *,
        offset_seconds: float = 0.0,
        worker: Optional[str] = None,
        pid: Optional[int] = None,
    ) -> None:
        """Ingest a shipped span bundle.

        ``offset_seconds`` is the handshake clock offset of the source
        process (``router_clock − worker_clock``); malformed bundles
        are dropped silently — tracing must never fail a query.
        """
        if not isinstance(bundle, dict):
            return
        trace_id = bundle.get("trace_id")
        spans = bundle.get("spans")
        if not isinstance(trace_id, str) or not isinstance(spans, list):
            return
        stored = dict(bundle)
        if worker is not None:
            stored.setdefault("worker", worker)
        if pid is not None:
            stored.setdefault("pid", int(pid))
        stored["offset_seconds"] = float(offset_seconds)
        with self._lock:
            entry = self._entry_locked(trace_id)
            if len(entry["bundles"]) >= self._max_bundles:
                self._dropped_bundles += 1
                return
            entry["bundles"].append(stored)

    # -- export --------------------------------------------------------

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "traces": len(self._traces),
                "evicted": self._evicted,
                "dropped_bundles": self._dropped_bundles,
            }

    def chrome_trace(self, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Stitch stored spans into Chrome trace-event JSON objects.

        Emits ``ph:"X"`` complete events with real pids plus
        ``process_name``/``thread_name`` ``ph:"M"`` metadata rows. Every
        event's ``args`` carries ``trace_id``/``span_id`` and, where a
        parent is known, ``parent_span_id`` — parent links resolve
        within the returned list. All timestamps are on the router
        clock, relative to this collector's creation; durations are
        non-negative by construction.
        """
        from repro.obs.trace import chrome_events_from_dicts

        with self._lock:
            if trace_id is not None:
                entry = self._traces.get(trace_id)
                items = [(trace_id, entry)] if entry is not None else []
            else:
                items = list(self._traces.items())
            snapshot = [
                (tid, list(entry["records"]), list(entry["bundles"]))
                for tid, entry in items
            ]

        events: List[Dict[str, Any]] = []
        # pid -> display label, (pid, tid) -> thread label
        processes: Dict[int, str] = {self.pid: self.label}
        threads: Dict[Any, str] = {}
        for tid, records, bundles in snapshot:
            for record in records:
                duration = record["duration"]
                args = dict(record["attrs"])
                args.setdefault("trace_id", record["trace_id"])
                args.setdefault("span_id", record["span_id"])
                events.append(
                    {
                        "name": record["name"],
                        "cat": "serve",
                        "ph": "X",
                        "ts": max(record["start"], 0.0) * 1e6,
                        "dur": max(duration or 0.0, 0.0) * 1e6,
                        "pid": self.pid,
                        "tid": record["tid"],
                        "args": args,
                    }
                )
                threads.setdefault((self.pid, record["tid"]), self.label)
            for bundle in bundles:
                pid = int(bundle.get("pid") or self.pid)
                label = str(bundle.get("worker") or self.label)
                base = (
                    float(bundle.get("origin") or 0.0)
                    + float(bundle.get("offset_seconds") or 0.0)
                    - self._origin
                )
                bundle_tid = int(bundle.get("tid") or 0)
                events.extend(
                    chrome_events_from_dicts(
                        bundle["spans"],
                        trace_id=tid,
                        pid=pid,
                        tid=bundle_tid,
                        ts_offset_seconds=base,
                        parent_span_id=bundle.get("parent_span_id"),
                        id_factory=new_span_id,
                    )
                )
                processes.setdefault(pid, label)
                threads.setdefault((pid, bundle_tid), label)

        metadata: List[Dict[str, Any]] = []
        for pid, label in sorted(processes.items()):
            display = label if pid == self.pid else f"{label} (pid {pid})"
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": display},
                }
            )
        for (pid, thread), label in sorted(threads.items()):
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": thread,
                    "args": {"name": label},
                }
            )
        return metadata + events

    def payload(self, trace_id: Optional[str] = None) -> Dict[str, Any]:
        """JSON document for the ``/trace`` debug endpoint."""
        stats = self.stats()
        return {
            "schema": TRACE_SCHEMA,
            "enabled": True,
            "traces": stats["traces"],
            "evicted": stats["evicted"],
            "dropped_bundles": stats["dropped_bundles"],
            "events": self.chrome_trace(trace_id),
        }


def empty_trace_payload() -> Dict[str, Any]:
    """The ``/trace`` document served when tracing is disabled."""
    return {"schema": TRACE_SCHEMA, "enabled": False, "traces": 0,
            "events": []}


def merge_event_payloads(
    payloads: Mapping[str, Any],
    *,
    epoch: Optional[int] = None,
    limit: Optional[int] = None,
) -> Dict[str, Any]:
    """Merge per-process event payloads into one causal stream.

    ``payloads`` maps a source label (``"router"``, ``"w0"``, …) to that
    process's :meth:`EventLog.payload` dict — or ``None`` for a source
    that could not be scraped (worker died mid-merge), which becomes a
    labeled gap in ``sources`` rather than an error.

    Every merged record gains ``worker`` (source label) and ``epoch``
    (the record's own epoch attribute when it has one, else the fleet
    epoch passed by the router) — this is the ``repro.obs.events/2``
    record shape. Ordering is by wall-clock ``ts`` with a stable
    ``(worker, seq)`` tiebreak: within one source that preserves emit
    order exactly, across sources it is causal to clock resolution.
    """
    from repro.obs.events import EVENTS_SCHEMA

    fleet_epoch = int(epoch) if epoch is not None else 0
    sources: Dict[str, Dict[str, Any]] = {}
    merged: List[Dict[str, Any]] = []
    capacity = total = dropped = sink_errors = 0
    unreachable = 0
    for label in sorted(payloads):
        payload = payloads[label]
        if not isinstance(payload, dict):
            sources[label] = {"unreachable": True}
            unreachable += 1
            continue
        events = [e for e in (payload.get("events") or [])
                  if isinstance(e, dict)]
        sources[label] = {
            "events": len(events),
            "total": int(payload.get("total") or 0),
            "dropped": int(payload.get("dropped") or 0),
        }
        capacity += int(payload.get("capacity") or 0)
        total += int(payload.get("total") or 0)
        dropped += int(payload.get("dropped") or 0)
        sink_errors += int(payload.get("sink_errors") or 0)
        for event in events:
            record = dict(event)
            record["worker"] = label
            if "epoch" not in record:
                attrs = record.get("attrs")
                attr_epoch = (
                    attrs.get("epoch") if isinstance(attrs, dict) else None
                )
                record["epoch"] = (
                    int(attr_epoch)
                    if isinstance(attr_epoch, int)
                    else fleet_epoch
                )
            merged.append(record)
    merged.sort(
        key=lambda r: (
            float(r.get("ts") or 0.0),
            str(r.get("worker") or ""),
            int(r.get("seq") or 0),
        )
    )
    if limit is not None and limit >= 0:
        merged = merged[-limit:] if limit else []
    return {
        "schema": EVENTS_SCHEMA,
        "capacity": capacity,
        "total": total,
        "dropped": dropped,
        "sink_errors": sink_errors,
        "unreachable_sources": unreachable,
        "sources": sources,
        "events": merged,
    }


class FlightRecorder:
    """Bounded ring of flight records for queries worth a post-mortem.

    A query qualifies when it ends in rejection/cancellation, misses an
    explicit deadline, or (when ``slow_ms`` is set) simply runs longer
    than the threshold. Callers decide *what* to attach — typically the
    stitched trace, the per-phase report, and the QoS decisions that
    shaped the query — the recorder only bounds and serves them.

    Thread-safe; recording is a lock-append, cheap enough to leave on
    unconditionally.
    """

    def __init__(
        self,
        capacity: int = 64,
        *,
        slow_ms: Optional[float] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.slow_ms = float(slow_ms) if slow_ms is not None else None
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._total = 0

    def should_record(
        self,
        *,
        elapsed_ms: Optional[float] = None,
        deadline_ms: Optional[float] = None,
        failed: bool = False,
    ) -> bool:
        """Whether a completed query qualifies for a flight record."""
        if failed:
            return True
        if elapsed_ms is None:
            return False
        if deadline_ms is not None and elapsed_ms > deadline_ms:
            return True
        return self.slow_ms is not None and elapsed_ms >= self.slow_ms

    def record(self, *, reason: str, **fields: Any) -> Dict[str, Any]:
        """Append one flight record; ``None``-valued fields are elided."""
        entry: Dict[str, Any] = {"ts": time.time(), "reason": str(reason)}
        for key, value in fields.items():
            if value is not None:
                entry[key] = value
        with self._lock:
            self._ring.append(entry)
            self._total += 1
        return entry

    def snapshot(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Oldest-first copy of the retained records."""
        with self._lock:
            records = list(self._ring)
        if limit is not None and limit >= 0:
            records = records[-limit:] if limit else []
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def payload(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """JSON document for ``/debug/slow`` and ``repro flightrec``."""
        with self._lock:
            total = self._total
        return {
            "schema": FLIGHT_SCHEMA,
            "capacity": self.capacity,
            "slow_ms": self.slow_ms,
            "total": total,
            "records": self.snapshot(limit),
        }
