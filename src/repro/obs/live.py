"""Live telemetry for the campaign server (``repro.obs.live``).

Batch observability (:mod:`repro.obs`) flushes reports at exit; this
module watches a *running* :class:`~repro.serve.CampaignServer`
continuously, with three cooperating pieces:

``TelemetryExporter``
    A background thread that snapshots ``server.metrics()`` every
    ``interval`` seconds into a rolling window and computes
    *delta-aware* SLO summaries: windowed qps, error rate and error
    budget, cache hit ratio, and per-op p50/p95/p99 latency from
    differenced histogram buckets. Snapshots use the same
    lock-ordering-safe ``metrics()`` path queries use, so a scrape can
    never deadlock against (or perturb) query traffic.

``TelemetryEndpoint``
    An embedded stdlib ``http.server`` (own daemon thread, thread-per
    -request) serving:

    * ``GET /metrics``  — OpenMetrics/Prometheus text exposition of
      every server counter/gauge/histogram plus the exporter's rolling
      -window gauges;
    * ``GET /healthz``  — JSON admission/queue/closed state (HTTP 503
      once the server is closed);
    * ``GET /events``   — recent query-lifecycle events (schema
      ``repro.obs.events/2``; against a shard router this is the
      causally merged fleet stream);
    * ``GET /trace``    — the stitched Chrome-trace document
      (``repro.obs.trace/1``; ``enabled: false`` when tracing is off);
    * ``GET /debug/slow`` — the slow-query flight-recorder ring
      (``repro.obs.flight/1``).

``start_live_telemetry``
    Convenience wiring for ``repro serve --listen HOST:PORT``: starts
    an exporter + endpoint pair and returns a handle whose ``close()``
    tears both down (idempotently, leaking no threads).

Everything here is read-only with respect to the server: scraping
``/metrics`` in a tight loop changes no query result and no work
counter (asserted by the scrape-under-load differential test). When no
exporter/endpoint is created the serving layer pays nothing.
"""

from __future__ import annotations

import json
import re
import threading
import time
import urllib.parse
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.distributed import FLIGHT_SCHEMA, empty_trace_payload
from repro.obs.events import EVENTS_SCHEMA, EventLog
from repro.obs.metrics import bucket_quantile

__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "LiveTelemetry",
    "Scrape",
    "TelemetryEndpoint",
    "TelemetryExporter",
    "merge_metrics_snapshots",
    "parse_listen_address",
    "parse_openmetrics",
    "quantile_from_cumulative",
    "render_dashboard",
    "render_openmetrics",
    "start_live_telemetry",
]

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: Registry names under this prefix are one histogram *family* with an
#: ``op`` label (``serve.op.latency_ms.find_seeds`` →
#: ``repro_serve_op_latency_ms{op="find_seeds"}``).
_OP_LATENCY_PREFIX = "serve.op.latency_ms."

#: ``worker.<id>.<field>`` names (injected post-merge by the shard
#: router) become one family per field with a ``worker`` label
#: (``worker.w0.queries`` → ``repro_worker_queries{worker="w0"}``), so
#: per-worker series never sum away in the fleet exposition.
_WORKER_METRIC_RE = re.compile(r"^worker\.([^.]+)\.([A-Za-z0-9_.]+)$")


def _split_worker_series(
    values: Optional[Dict[str, Any]],
) -> Tuple[Dict[str, Any], Dict[str, List[Tuple[str, Any]]]]:
    """Partition ``worker.<id>.<field>`` names into labeled families."""
    plain: Dict[str, Any] = {}
    families: Dict[str, List[Tuple[str, Any]]] = {}
    for name, value in (values or {}).items():
        match = _WORKER_METRIC_RE.match(name)
        if match:
            families.setdefault(match.group(2), []).append(
                (match.group(1), value)
            )
        else:
            plain[name] = value
    return plain, families


def _metric_name(name: str) -> str:
    """Dotted registry name → OpenMetrics metric name."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value != value:  # NaN
        return "NaN"
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


# ---------------------------------------------------------------------------
# Multi-endpoint aggregation (shard router → one /metrics scrape)
# ---------------------------------------------------------------------------

#: Gauges that must NOT be summed across workers when snapshots merge.
#: ``serve.epoch`` is fleet-wide state (all workers pin the same epoch,
#: so max == the common value and a divergent worker only ever *raises*
#: the reported epoch, which monitoring catches); uptime is a property
#: of the service, not additive across processes; utilization is a
#: ratio, so the fleet figure is the mean.
_MERGE_GAUGE_MAX = frozenset({"serve.epoch", "serve.uptime_seconds"})
_MERGE_GAUGE_MEAN = frozenset({"serve.utilization"})


def merge_metrics_snapshots(snapshots: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-worker ``server.metrics()`` snapshots into one document.

    The shard router scrapes every worker process and answers a single
    ``/metrics`` exposition for the fleet. Merge semantics follow the
    instrument kinds: counters add (the exact-work-accounting invariant
    — fleet totals equal the sum of per-worker totals); histogram
    ``count``/``sum``/``buckets`` add bucket-wise with ``min``/``max``
    folded and the p50/p95/p99 estimates recomputed from the merged
    buckets; gauges add except for the fleet-level exceptions in
    :data:`_MERGE_GAUGE_MAX` / :data:`_MERGE_GAUGE_MEAN`. The result
    has the same shape as a single server's snapshot, so
    :func:`render_openmetrics` (and everything downstream of it)
    consumes it unchanged.

    Hardened against partial scrapes: a worker that died mid-scrape
    yields ``None`` (or a malformed fragment) instead of a snapshot —
    non-dict snapshots and non-numeric values are skipped rather than
    raising, so the fleet exposition degrades to the reachable workers
    (the router counts the gap in ``router.workers.unreachable``).
    """
    counters: Dict[str, float] = {}
    gauge_values: Dict[str, List[float]] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        for name, value in (snap.get("counters") or {}).items():
            if not isinstance(value, (int, float)):
                continue
            counters[name] = counters.get(name, 0) + value
        for name, value in (snap.get("gauges") or {}).items():
            if not isinstance(value, (int, float)):
                continue
            gauge_values.setdefault(name, []).append(float(value))
        for name, hist in (snap.get("histograms") or {}).items():
            if not isinstance(hist, dict):
                continue
            agg = histograms.setdefault(
                name, {"count": 0, "sum": 0.0, "buckets": {}}
            )
            agg["count"] += int(hist.get("count") or 0)
            agg["sum"] += float(hist.get("sum") or 0.0)
            for edge, n in (hist.get("buckets") or {}).items():
                try:
                    edge = int(edge)  # JSON transport stringifies keys
                    n = int(n)
                except (TypeError, ValueError):
                    continue
                agg["buckets"][edge] = agg["buckets"].get(edge, 0) + n
            if hist.get("count"):
                if "min" in hist:
                    agg["min"] = min(agg.get("min", hist["min"]),
                                     hist["min"])
                if "max" in hist:
                    agg["max"] = max(agg.get("max", hist["max"]),
                                     hist["max"])

    gauges = {}
    for name, values in gauge_values.items():
        if name in _MERGE_GAUGE_MAX:
            gauges[name] = max(values)
        elif name in _MERGE_GAUGE_MEAN:
            gauges[name] = sum(values) / len(values)
        else:
            gauges[name] = sum(values)

    for name, agg in histograms.items():
        count = agg["count"]
        agg["mean"] = agg["sum"] / count if count else 0.0
        if count:
            for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
                agg[label] = bucket_quantile(
                    agg["buckets"], count, q,
                    lo=agg.get("min"), hi=agg.get("max"),
                )
        agg["buckets"] = {
            str(k): v for k, v in sorted(agg["buckets"].items())
        }

    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}


# ---------------------------------------------------------------------------
# OpenMetrics rendering
# ---------------------------------------------------------------------------


def render_openmetrics(
    metrics: Dict[str, Any], slo: Optional[Dict[str, Any]] = None
) -> str:
    """Render a ``server.metrics()`` snapshot as OpenMetrics text.

    ``metrics`` is the ``{"counters": ..., "gauges": ...,
    "histograms": ...}`` dict; ``slo`` is an optional
    :meth:`TelemetryExporter.summary` whose rolling-window rates and
    quantiles become labelled gauges. Output terminates with the
    mandatory ``# EOF`` marker.
    """
    lines: List[str] = []

    counters, worker_counters = _split_worker_series(
        metrics.get("counters")
    )
    gauges, worker_gauges = _split_worker_series(metrics.get("gauges"))

    for name in sorted(counters):
        value = counters[name]
        metric = _metric_name(name)
        lines.append(f"# HELP {metric} Counter {name}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(value)}")

    for field_name in sorted(worker_counters):
        metric = _metric_name(f"worker.{field_name}")
        lines.append(
            f"# HELP {metric} Per-worker counter worker.<id>.{field_name}."
        )
        lines.append(f"# TYPE {metric} counter")
        for worker_id, value in sorted(worker_counters[field_name]):
            labels = _format_labels({"worker": worker_id})
            lines.append(f"{metric}_total{labels} {_format_value(value)}")

    for name in sorted(gauges):
        value = gauges[name]
        metric = _metric_name(name)
        lines.append(f"# HELP {metric} Gauge {name}.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(float(value))}")

    for field_name in sorted(worker_gauges):
        metric = _metric_name(f"worker.{field_name}")
        lines.append(
            f"# HELP {metric} Per-worker gauge worker.<id>.{field_name}."
        )
        lines.append(f"# TYPE {metric} gauge")
        for worker_id, value in sorted(worker_gauges[field_name]):
            labels = _format_labels({"worker": worker_id})
            lines.append(f"{metric}{labels} {_format_value(float(value))}")

    # Group histograms into families: the per-op latency histograms
    # share one family with an ``op`` label; everything else is its own
    # label-less family.
    families: Dict[str, List[Tuple[Dict[str, str], Dict[str, Any]]]] = {}
    for name in sorted(metrics.get("histograms") or {}):
        hist = metrics["histograms"][name]
        if name.startswith(_OP_LATENCY_PREFIX):
            family = _metric_name(_OP_LATENCY_PREFIX.rstrip("."))
            labels = {"op": name[len(_OP_LATENCY_PREFIX):]}
        else:
            family = _metric_name(name)
            labels = {}
        families.setdefault(family, []).append((labels, hist))

    for family in sorted(families):
        lines.append(f"# HELP {family} Histogram.")
        lines.append(f"# TYPE {family} histogram")
        for labels, hist in families[family]:
            count = int(hist.get("count") or 0)
            total = float(hist.get("sum") or 0.0)
            buckets = {
                int(edge): n
                for edge, n in (hist.get("buckets") or {}).items()
            }
            cumulative = 0
            for edge in sorted(e for e in buckets if e != -1):
                cumulative += buckets[edge]
                le = dict(labels, le=str(edge))
                lines.append(
                    f"{family}_bucket{_format_labels(le)} {cumulative}"
                )
            le = dict(labels, le="+Inf")
            lines.append(f"{family}_bucket{_format_labels(le)} {count}")
            lines.append(
                f"{family}_sum{_format_labels(labels)} "
                f"{_format_value(total)}"
            )
            lines.append(f"{family}_count{_format_labels(labels)} {count}")

    if slo and slo.get("samples", 0) >= 2:
        window = {"window": f"{slo['window_seconds']:.0f}s"}
        scalars = [
            ("repro_serve_window_qps", slo.get("qps")),
            ("repro_serve_window_error_rate", slo.get("error_rate")),
            (
                "repro_serve_window_error_budget_remaining",
                slo.get("error_budget_remaining"),
            ),
            (
                "repro_serve_window_cache_hit_ratio",
                slo.get("cache_hit_ratio"),
            ),
        ]
        for metric, value in scalars:
            if value is None:
                continue
            lines.append(f"# TYPE {metric} gauge")
            lines.append(
                f"{metric}{_format_labels(window)} "
                f"{_format_value(float(value))}"
            )
        latency = slo.get("latency_ms") or {}
        if latency:
            metric = "repro_serve_window_latency_ms"
            lines.append(f"# TYPE {metric} gauge")
            for op in sorted(latency):
                for q_key, q_label in (
                    ("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"),
                ):
                    labels = dict(window, op=op, quantile=q_label)
                    lines.append(
                        f"{metric}{_format_labels(labels)} "
                        f"{_format_value(float(latency[op][q_key]))}"
                    )

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# OpenMetrics parsing (used by ``repro top`` and the CI smoke test)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


@dataclass
class Scrape:
    """Parsed OpenMetrics exposition (names, types, samples)."""

    families: Dict[str, str] = field(default_factory=dict)  # name -> type
    helps: Dict[str, str] = field(default_factory=dict)
    samples: List[Tuple[str, Dict[str, str], float]] = field(
        default_factory=list
    )
    complete: bool = False  # saw the trailing "# EOF"

    def value(self, name: str, **labels: str) -> Optional[float]:
        """First sample value matching ``name`` and the given labels."""
        for n, sample_labels, value in self.samples:
            if n == name and all(
                sample_labels.get(k) == v for k, v in labels.items()
            ):
                return value
        return None

    def counter(self, name: str) -> float:
        """Counter total by registry-ish name (``_total`` implied)."""
        found = self.value(name if name.endswith("_total") else name + "_total")
        return found if found is not None else 0.0

    def label_values(self, name: str, key: str) -> List[str]:
        """Distinct values of label ``key`` across ``name``'s samples."""
        seen: List[str] = []
        for n, labels, _value in self.samples:
            if n == name and key in labels and labels[key] not in seen:
                seen.append(labels[key])
        return seen

    def histogram(
        self, family: str, **labels: str
    ) -> Tuple[Dict[str, float], float, float]:
        """One histogram series: cumulative ``{le: count}``, sum, count."""
        buckets: Dict[str, float] = {}
        for n, sample_labels, value in self.samples:
            if n == family + "_bucket" and all(
                sample_labels.get(k) == v for k, v in labels.items()
            ):
                buckets[sample_labels.get("le", "+Inf")] = value
        total = self.value(family + "_sum", **labels) or 0.0
        count = self.value(family + "_count", **labels) or 0.0
        return buckets, total, count


def parse_openmetrics(text: str) -> Scrape:
    """Parse OpenMetrics text exposition into a :class:`Scrape`."""
    scrape = Scrape()
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line == "# EOF":
            scrape.complete = True
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            scrape.families[name] = kind.strip()
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            scrape.helps[name] = help_text.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable OpenMetrics line: {raw!r}")
        name, label_text, value_text = match.groups()
        labels = (
            {k: v for k, v in _LABEL_RE.findall(label_text)}
            if label_text
            else {}
        )
        scrape.samples.append((name, labels, float(value_text)))
    return scrape


def quantile_from_cumulative(
    cumulative: Dict[str, float], count: float, q: float
) -> float:
    """Quantile from scraped cumulative ``{le: count}`` buckets."""
    count = int(count)
    if count <= 0:
        return float("nan")
    finite = sorted(int(k) for k in cumulative if k != "+Inf")
    buckets: Dict[int, int] = {}
    previous = 0.0
    for edge in finite:
        buckets[edge] = max(int(cumulative[str(edge)] - previous), 0)
        previous = cumulative[str(edge)]
    overflow = max(int(count - previous), 0)
    if overflow:
        buckets[-1] = overflow
    return bucket_quantile(buckets, count, q)


# ---------------------------------------------------------------------------
# Exporter: rolling windows over periodic metric snapshots
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Sample:
    t: float  # monotonic
    counters: Dict[str, int]
    histograms: Dict[str, Tuple[int, Dict[int, int]]]  # name -> (count, buckets)


class TelemetryExporter:
    """Periodic delta-aware snapshots of a server's metrics.

    The exporter thread calls ``server.metrics()`` every ``interval``
    seconds — the same deadlock-safe snapshot path queries use (cache
    stats are read before the metrics lock) — and retains samples
    spanning ``window_seconds``. :meth:`summary` differences the oldest
    and newest retained samples, so every rate and quantile it reports
    is *rolling-window*, not lifetime.

    The exporter never writes to the server; disabled (not
    constructed), the serving layer pays zero overhead.
    """

    def __init__(
        self,
        server,
        interval: float = 1.0,
        window_seconds: float = 60.0,
        slo_target: float = 0.999,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if window_seconds < interval:
            raise ValueError(
                f"window_seconds ({window_seconds}) must be >= "
                f"interval ({interval})"
            )
        if not 0.0 < slo_target <= 1.0:
            raise ValueError(
                f"slo_target must be in (0, 1], got {slo_target}"
            )
        self._server = server
        self.interval = float(interval)
        self.window_seconds = float(window_seconds)
        self.slo_target = float(slo_target)
        self._samples: "deque[_Sample]" = deque()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------
    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> "TelemetryExporter":
        """Take a first sample and start the exporter thread (once)."""
        if self._thread is not None:
            return self
        self.sample_now()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-telemetry-exporter", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample_now()
            except Exception:
                # Snapshots race server teardown; a transient failure
                # must not kill the exporter (the next tick retries).
                continue

    def stop(self) -> None:
        """Stop and join the exporter thread; idempotent."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
            self._thread = None

    close = stop

    def __enter__(self) -> "TelemetryExporter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling --------------------------------------------------------
    def sample_now(self) -> _Sample:
        """Take one snapshot immediately (also used by tests)."""
        metrics = self._server.metrics()
        now = time.monotonic()
        histograms = {
            name: (
                int(hist.get("count") or 0),
                {
                    int(edge): n
                    for edge, n in (hist.get("buckets") or {}).items()
                },
            )
            for name, hist in (metrics.get("histograms") or {}).items()
        }
        sample = _Sample(
            t=now,
            counters=dict(metrics.get("counters") or {}),
            histograms=histograms,
        )
        with self._lock:
            self._samples.append(sample)
            # Retain one sample at or beyond the window edge so deltas
            # always span at least window_seconds once warmed up.
            cutoff = now - self.window_seconds
            while len(self._samples) > 2 and self._samples[1].t <= cutoff:
                self._samples.popleft()
        return sample

    @property
    def sample_count(self) -> int:
        with self._lock:
            return len(self._samples)

    # -- summaries -------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Rolling-window SLO summary from the retained samples.

        With fewer than two samples only ``{"samples": n}`` is
        returned; otherwise qps, error rate/budget, cache hit ratio,
        and per-op p50/p95/p99 latency over the window.
        """
        with self._lock:
            samples = list(self._samples)
        if len(samples) < 2:
            return {"samples": len(samples)}
        old, new = samples[0], samples[-1]
        dt = max(new.t - old.t, 1e-9)

        def delta(name: str) -> int:
            return new.counters.get(name, 0) - old.counters.get(name, 0)

        queries = delta("serve.queries")
        errors = delta("serve.errors")
        rejected = delta("serve.rejected")
        hits = delta("serve.cache.hits")
        misses = delta("serve.cache.misses")

        latency: Dict[str, Dict[str, float]] = {}
        for name, (new_count, new_buckets) in new.histograms.items():
            if not name.startswith(_OP_LATENCY_PREFIX):
                continue
            old_count, old_buckets = old.histograms.get(name, (0, {}))
            d_count = new_count - old_count
            if d_count <= 0:
                continue
            d_buckets = {
                edge: new_buckets.get(edge, 0) - old_buckets.get(edge, 0)
                for edge in new_buckets
            }
            op = name[len(_OP_LATENCY_PREFIX):]
            latency[op] = {
                "count": d_count,
                "p50": bucket_quantile(d_buckets, d_count, 0.5),
                "p95": bucket_quantile(d_buckets, d_count, 0.95),
                "p99": bucket_quantile(d_buckets, d_count, 0.99),
            }

        requests = queries + errors + rejected
        bad = errors + rejected
        error_rate = bad / requests if requests else 0.0
        allowed = (1.0 - self.slo_target) * requests
        if bad == 0:
            budget = 1.0
        elif allowed <= 0:
            budget = 0.0
        else:
            budget = max(0.0, 1.0 - bad / allowed)
        lookups = hits + misses
        return {
            "samples": len(samples),
            "window_seconds": dt,
            "interval_seconds": self.interval,
            "queries": queries,
            "errors": errors,
            "rejected": rejected,
            "qps": queries / dt,
            "error_rate": error_rate,
            "availability": 1.0 - error_rate,
            "slo_target": self.slo_target,
            "error_budget_remaining": budget,
            "cache_hit_ratio": (hits / lookups) if lookups else None,
            "latency_ms": latency,
        }


# ---------------------------------------------------------------------------
# HTTP endpoint
# ---------------------------------------------------------------------------


class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    endpoint: "TelemetryEndpoint"


class _TelemetryHandler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, *args: Any) -> None:  # pragma: no cover - quiet
        return

    def _respond(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        endpoint = self.server.endpoint  # type: ignore[attr-defined]
        parsed = urllib.parse.urlsplit(self.path)
        try:
            if parsed.path == "/metrics":
                body = endpoint.render_metrics().encode("utf-8")
                self._respond(200, OPENMETRICS_CONTENT_TYPE, body)
            elif parsed.path == "/healthz":
                health = endpoint.health()
                code = 503 if health.get("closed") else 200
                self._respond(
                    code,
                    "application/json",
                    (json.dumps(health) + "\n").encode("utf-8"),
                )
            elif parsed.path == "/events":
                query = urllib.parse.parse_qs(parsed.query)
                limit = (
                    int(query["limit"][0]) if "limit" in query else None
                )
                payload = endpoint.events_payload(limit)
                self._respond(
                    200,
                    "application/json",
                    (json.dumps(payload) + "\n").encode("utf-8"),
                )
            elif parsed.path == "/trace":
                query = urllib.parse.parse_qs(parsed.query)
                trace_id = (
                    query["trace_id"][0] if "trace_id" in query else None
                )
                payload = endpoint.trace_payload(trace_id)
                self._respond(
                    200,
                    "application/json",
                    (json.dumps(payload) + "\n").encode("utf-8"),
                )
            elif parsed.path == "/debug/slow":
                query = urllib.parse.parse_qs(parsed.query)
                limit = (
                    int(query["limit"][0]) if "limit" in query else None
                )
                payload = endpoint.flight_payload(limit)
                self._respond(
                    200,
                    "application/json",
                    (json.dumps(payload) + "\n").encode("utf-8"),
                )
            else:
                self._respond(404, "text/plain", b"not found\n")
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # pragma: no cover - defensive
            self._respond(
                500,
                "text/plain",
                f"{type(exc).__name__}: {exc}\n".encode("utf-8"),
            )


class TelemetryEndpoint:
    """Embedded HTTP endpoint: ``/metrics``, ``/healthz``, ``/events``,
    ``/trace``, ``/debug/slow``.

    Binds immediately (so ``port=0`` resolves to a real port before
    :meth:`start`), serves on a daemon thread with one thread per
    request, and refuses connections after :meth:`close`. All handlers
    are read-only against the server.
    """

    def __init__(
        self,
        server,
        exporter: Optional[TelemetryExporter] = None,
        events: Optional[EventLog] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._server = server
        self._exporter = exporter
        self._events = events
        self._httpd = _TelemetryHTTPServer((host, port), _TelemetryHandler)
        self._httpd.endpoint = self
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- addressing ------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved even for ``:0``)."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "TelemetryEndpoint":
        if self._closed:
            raise RuntimeError("telemetry endpoint is closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="repro-telemetry-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "TelemetryEndpoint":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- route bodies ----------------------------------------------------
    def render_metrics(self) -> str:
        slo = self._exporter.summary() if self._exporter is not None else None
        return render_openmetrics(self._server.metrics(), slo=slo)

    def health(self) -> Dict[str, Any]:
        health = self._server.health()
        health["endpoint"] = self.url
        return health

    def events_payload(self, limit: Optional[int] = None) -> Dict[str, Any]:
        if self._events is None:
            # A shard router serves the causally merged fleet stream;
            # an explicit ring (``events=``) always wins.
            merged = getattr(self._server, "events_payload", None)
            if callable(merged):
                return merged(limit)
        events = self._events
        if events is None:
            events = getattr(self._server, "events", None)
        if events is None:
            return {
                "schema": EVENTS_SCHEMA,
                "capacity": 0,
                "total": 0,
                "dropped": 0,
                "events": [],
            }
        return events.payload(limit)

    def trace_payload(self, trace_id: Optional[str] = None) -> Dict[str, Any]:
        """The ``/trace`` document (``enabled: false`` if untraced)."""
        fn = getattr(self._server, "trace_payload", None)
        if callable(fn):
            return fn(trace_id)
        return empty_trace_payload()

    def flight_payload(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The ``/debug/slow`` document (empty if no recorder)."""
        recorder = getattr(self._server, "flightrec", None)
        if recorder is not None:
            return recorder.payload(limit)
        return {
            "schema": FLIGHT_SCHEMA,
            "capacity": 0,
            "slow_ms": None,
            "total": 0,
            "records": [],
        }


# ---------------------------------------------------------------------------
# Wiring
# ---------------------------------------------------------------------------


def parse_listen_address(listen: str) -> Tuple[str, int]:
    """``"HOST:PORT"`` / ``":PORT"`` / ``"PORT"`` → ``(host, port)``."""
    host, sep, port_text = listen.rpartition(":")
    if not sep:
        host, port_text = "", listen
    host = host.strip() or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(
            f"invalid --listen address {listen!r}; expected HOST:PORT"
        ) from exc
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in --listen {listen!r}")
    return host, port


@dataclass
class LiveTelemetry:
    """A running exporter + endpoint pair (see ``repro serve --listen``)."""

    exporter: TelemetryExporter
    endpoint: TelemetryEndpoint

    @property
    def url(self) -> str:
        return self.endpoint.url

    def close(self) -> None:
        """Tear down endpoint then exporter; idempotent."""
        self.endpoint.close()
        self.exporter.stop()

    def __enter__(self) -> "LiveTelemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_live_telemetry(
    server,
    listen: str = "127.0.0.1:0",
    interval: float = 1.0,
    window_seconds: float = 60.0,
    slo_target: float = 0.999,
    events: Optional[EventLog] = None,
) -> LiveTelemetry:
    """Start an exporter + HTTP endpoint for ``server`` and return the
    handle. ``listen`` accepts ``HOST:PORT`` with port ``0`` meaning
    "pick a free port" (read the result from ``.url``)."""
    host, port = parse_listen_address(listen)
    exporter = TelemetryExporter(
        server,
        interval=interval,
        window_seconds=window_seconds,
        slo_target=slo_target,
    ).start()
    try:
        endpoint = TelemetryEndpoint(
            server, exporter=exporter, events=events, host=host, port=port
        ).start()
    except BaseException:
        exporter.stop()
        raise
    return LiveTelemetry(exporter=exporter, endpoint=endpoint)


# ---------------------------------------------------------------------------
# ``repro top`` dashboard rendering
# ---------------------------------------------------------------------------


def _fmt_bytes(n: float) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def _fmt_ms(value: float) -> str:
    if value != value:  # NaN
        return "-"
    return f"{value:.1f}"


def render_dashboard(
    scrape: Scrape,
    health: Dict[str, Any],
    url: str = "",
    previous: Optional[Scrape] = None,
    dt: Optional[float] = None,
) -> str:
    """One ``repro top`` frame from a ``/metrics`` scrape + ``/healthz``.

    qps prefers the exporter's rolling-window gauge, falling back to
    the delta against the previous scrape, then to the lifetime
    average. Per-op quantiles prefer the windowed gauges, falling back
    to the lifetime histogram buckets.

    When the scrape exposes per-worker families (a shard router's
    ``repro_worker_*{worker="..."}`` series), a per-worker table is
    rendered — queries, qps (delta against the previous scrape),
    in-flight, respawns, and epoch — plus the cumulative count of
    workers that were unreachable mid-scrape.
    """
    lines: List[str] = []
    uptime = scrape.value("repro_serve_uptime_seconds")
    if uptime is None:
        uptime = float(health.get("uptime_seconds") or 0.0)
    status = health.get("status", "?")
    lines.append(
        f"repro top — {url or health.get('endpoint', '')}   "
        f"status {status}   uptime {uptime:.1f}s"
    )

    queries = scrape.counter("repro_serve_queries")
    qps = scrape.value("repro_serve_window_qps")
    qps_label = "window"
    if qps is None and previous is not None and dt:
        qps = (queries - previous.counter("repro_serve_queries")) / dt
        qps_label = "delta"
    if qps is None:
        qps = queries / uptime if uptime else 0.0
        qps_label = "lifetime"
    rejected = scrape.counter("repro_serve_rejected")
    errors = scrape.counter("repro_serve_errors")
    in_flight = health.get("in_flight", 0)
    queued = health.get("queued", 0)
    lines.append(
        f"queries {int(queries)}   qps {qps:.2f} ({qps_label})   "
        f"in-flight {in_flight}   queued {queued}   "
        f"rejected {int(rejected)}   errors {int(errors)}"
    )

    hits = scrape.counter("repro_serve_cache_hits")
    misses = scrape.counter("repro_serve_cache_misses")
    lookups = hits + misses
    ratio = f"{100.0 * hits / lookups:.1f}%" if lookups else "-"
    cache_bytes = scrape.value("repro_serve_cache_bytes") or 0.0
    entries = scrape.value("repro_serve_cache_entries") or 0.0
    evictions = scrape.counter("repro_serve_cache_evictions")
    budget = scrape.value("repro_serve_window_error_budget_remaining")
    budget_text = f"   error-budget {100.0 * budget:.1f}%" if budget is not None else ""
    lines.append(
        f"cache: hits {int(hits)}  misses {int(misses)}  "
        f"hit-ratio {ratio}  bytes {_fmt_bytes(cache_bytes)}  "
        f"entries {int(entries)}  evictions {int(evictions)}{budget_text}"
    )

    family = "repro_serve_op_latency_ms"
    ops = scrape.label_values(family + "_bucket", "op")
    if ops:
        lines.append("")
        lines.append(
            f"{'op':<14} {'count':>8} {'p50 ms':>9} {'p95 ms':>9} "
            f"{'p99 ms':>9}"
        )
        for op in sorted(ops):
            quantiles = {}
            for q_key, q_label in (
                ("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"),
            ):
                quantiles[q_key] = scrape.value(
                    "repro_serve_window_latency_ms", op=op, quantile=q_label
                )
            buckets, _total, count = scrape.histogram(family, op=op)
            if any(v is None for v in quantiles.values()):
                quantiles = {
                    "p50": quantile_from_cumulative(buckets, count, 0.5),
                    "p95": quantile_from_cumulative(buckets, count, 0.95),
                    "p99": quantile_from_cumulative(buckets, count, 0.99),
                }
            lines.append(
                f"{op:<14} {int(count):>8} "
                f"{_fmt_ms(quantiles['p50']):>9} "
                f"{_fmt_ms(quantiles['p95']):>9} "
                f"{_fmt_ms(quantiles['p99']):>9}"
            )

    workers = scrape.label_values("repro_worker_queries_total", "worker")
    if workers:
        lines.append("")
        lines.append(
            f"{'worker':<8} {'queries':>8} {'qps':>8} {'inflight':>9} "
            f"{'respawns':>9} {'epoch':>6}"
        )
        for worker_id in sorted(workers):
            w_queries = scrape.value(
                "repro_worker_queries_total", worker=worker_id
            ) or 0.0
            w_qps = "-"
            if previous is not None and dt:
                prev = previous.value(
                    "repro_worker_queries_total", worker=worker_id
                )
                if prev is not None:
                    w_qps = f"{max(w_queries - prev, 0.0) / dt:.2f}"
            inflight = scrape.value(
                "repro_worker_inflight", worker=worker_id
            ) or 0.0
            respawns = scrape.value(
                "repro_worker_respawns", worker=worker_id
            ) or 0.0
            epoch = scrape.value(
                "repro_worker_epoch", worker=worker_id
            ) or 0.0
            lines.append(
                f"{worker_id:<8} {int(w_queries):>8} {w_qps:>8} "
                f"{int(inflight):>9} {int(respawns):>9} {int(epoch):>6}"
            )
        unreachable = scrape.counter("repro_router_workers_unreachable")
        if unreachable:
            lines.append(
                f"unreachable worker scrapes: {int(unreachable)}"
            )
    return "\n".join(lines) + "\n"
