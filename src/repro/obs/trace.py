"""Hierarchical tracing spans on monotonic clocks.

A :class:`Tracer` maintains a stack of open :class:`Span` objects.
Entering a span pushes it; exiting pops it and attaches it to its
parent, so a finished trace is a forest of timed, attributed nodes.
Durations come from :func:`time.perf_counter` (monotonic, high
resolution); wall-clock epochs are never recorded, which keeps traces
comparable across runs and machines.

Export targets:

* ``as_dicts()`` — nested JSON (name / duration / attrs / children),
  the form embedded in run reports and written by ``--trace``.
* ``to_chrome_events()`` — flat Chrome trace-event list (``ph: "X"``
  complete events with microsecond timestamps), loadable by
  ``chrome://tracing``, Perfetto, or speedscope for flamegraphs.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Span", "Tracer", "NULL_SPAN", "chrome_events_from_dicts"]


@dataclass
class Span:
    """One timed region.  ``duration`` is filled when the span closes."""

    name: str
    start: float = 0.0
    duration: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    def set(self, **attrs: Any) -> None:
        """Attach attributes (e.g. ``span.set(theta=4096)``)."""
        self.attrs.update(attrs)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "start_seconds": self.start,
            "duration_seconds": self.duration,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.as_dict() for c in self.children]
        return out


class _NullSpan:
    """Shared do-nothing span returned when observability is off.

    Supports the same surface as :class:`Span` uses in call sites
    (context manager + ``set``) so instrumented code never branches.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


#: Module-wide singleton; allocating per call would defeat the point.
NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager that times one span within a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc: object) -> None:
        self._tracer._pop(self._span)


class Tracer:
    """Collects a forest of spans for one observation scope.

    ``trace_id`` is an optional correlation id (set by the serving
    layer to the query's id, e.g. ``"q-000042"``). When set it is
    stamped into every exported Chrome trace event's ``args`` and
    surfaced in run reports, so a span in a flamegraph can be matched
    to the same query's entries in the live event log
    (:mod:`repro.obs.events`).
    """

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.roots: List[Span] = []
        self.trace_id = trace_id
        #: Cross-process parent link (``repro.obs.distributed``): the id
        #: of the remote span — usually the shard router's
        #: ``serve.query`` — this tracer's roots graft under when the
        #: fleet trace is stitched. ``None`` for purely local traces.
        self.parent_span_id: Optional[str] = None
        self._stack: List[Span] = []
        self._origin = time.perf_counter()

    @property
    def origin(self) -> float:
        """This tracer's clock origin (``time.perf_counter`` at
        creation). Span starts are relative to it; shipping it with a
        span bundle lets a remote collector re-base the spans onto its
        own clock via the handshake offset."""
        return self._origin

    # -- span lifecycle --------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _OpenSpan:
        return _OpenSpan(self, Span(name=name, attrs=dict(attrs)))

    def _push(self, span: Span) -> None:
        span.start = time.perf_counter() - self._origin
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.duration = time.perf_counter() - self._origin - span.start
        popped = self._stack.pop()
        assert popped is span, "span stack corrupted"
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def adopt(self, other: "Tracer") -> None:
        """Graft another tracer's finished roots into this trace.

        Used when a nested observation scope closes: the inner scope's
        spans become children of this tracer's innermost *open* span
        (or new roots when none is open), with their starts re-based
        onto this tracer's clock origin so the merged timeline stays
        consistent. The serving layer relies on this to nest an asset
        build's spans under the requesting query's ``serve.query`` root.
        """
        offset = other._origin - self._origin

        def shift(span: Span) -> None:
            span.start += offset
            for child in span.children:
                shift(child)

        if offset:
            for root in other.roots:
                shift(root)
        target = self._stack[-1].children if self._stack else self.roots
        target.extend(other.roots)

    def traced(self, name: str) -> Callable:
        """Decorator form: time every call of the wrapped function."""

        def decorate(fn: Callable) -> Callable:
            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(name):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # -- export ----------------------------------------------------------

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [root.as_dict() for root in self.roots]

    def to_chrome_events(self) -> List[Dict[str, Any]]:
        """Flatten to Chrome trace-event ``X`` (complete) events."""
        return chrome_events_from_dicts(self.as_dicts(),
                                        trace_id=self.trace_id)

    def find(self, name: str) -> List[Span]:
        """All finished spans with ``name``, depth-first."""
        found: List[Span] = []

        def walk(span: Span) -> None:
            if span.name == name:
                found.append(span)
            for child in span.children:
                walk(child)

        for root in self.roots:
            walk(root)
        return found


def chrome_events_from_dicts(
    trace_dicts: List[Dict[str, Any]],
    *,
    trace_id: Optional[str] = None,
    pid: int = 0,
    tid: int = 0,
    ts_offset_seconds: float = 0.0,
    parent_span_id: Optional[str] = None,
    id_factory: Optional[Callable[[], str]] = None,
) -> List[Dict[str, Any]]:
    """Convert exported span dicts (a report's ``trace``) to Chrome
    trace events — the offline counterpart of
    :meth:`Tracer.to_chrome_events`, used by ``repro report`` to turn a
    saved report back into a flamegraph-loadable file.

    The keyword options serve the fleet-trace stitcher
    (:mod:`repro.obs.distributed`): ``pid``/``tid`` stamp the source
    process, ``ts_offset_seconds`` re-bases span starts onto the
    collector's clock (clamped at zero so clock-alignment error cannot
    produce negative timestamps), ``trace_id`` is stamped into every
    event's ``args``, and — when ``id_factory`` is given — every event
    gains a ``span_id`` with structural ``parent_span_id`` links,
    rooted at the cross-process ``parent_span_id``.
    """
    events: List[Dict[str, Any]] = []

    def walk(entry: Dict[str, Any], parent_id: Optional[str]) -> None:
        args = dict(entry.get("attrs") or {})
        if trace_id is not None:
            args.setdefault("trace_id", trace_id)
        span_id = None
        if id_factory is not None:
            span_id = args.get("span_id") or id_factory()
            args["span_id"] = span_id
            if parent_id is not None:
                args.setdefault("parent_span_id", parent_id)
        start = (entry.get("start_seconds") or 0.0) + ts_offset_seconds
        events.append(
            {
                "name": entry["name"],
                "ph": "X",
                "ts": max(start, 0.0) * 1e6,
                "dur": max(entry.get("duration_seconds") or 0.0, 0.0) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        for child in entry.get("children") or []:
            walk(child, span_id)

    for root in trace_dicts:
        walk(root, parent_span_id)
    return events
