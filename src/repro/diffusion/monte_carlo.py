"""Monte-Carlo estimation of the targeted influence spread ``σ(S, T, C1)``.

Each sample runs one lazy-coin IC cascade from the seed set and counts
activated targets; the estimate is the sample mean (Eq. 5 by the
law of large numbers).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.diffusion.cascade import simulate_cascade
from repro.exceptions import InvalidQueryError
from repro.graphs.tag_graph import TagGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_node_ids, check_tags_exist


def estimate_spread(
    graph: TagGraph,
    seeds: Iterable[int],
    targets: Iterable[int],
    tags: Sequence[str],
    num_samples: int = 200,
    rng: np.random.Generator | int | None = None,
    edge_probs: np.ndarray | None = None,
) -> float:
    """Estimate ``σ(S, T, C1)`` — expected number of activated targets.

    Parameters
    ----------
    graph, seeds, targets, tags:
        The query; ``tags`` are aggregated with the independent model.
    num_samples:
        Number of IC cascades to average over.
    rng:
        Seed or generator.
    edge_probs:
        Optional precomputed ``graph.edge_probabilities(tags)`` — pass it
        when estimating many seed sets under the same tag set to avoid
        recomputing the aggregation.

    Returns
    -------
    float
        Estimated expected spread, in ``[0, |T|]``.
    """
    if num_samples <= 0:
        raise InvalidQueryError(
            f"num_samples must be positive, got {num_samples}"
        )
    rng = ensure_rng(rng)
    seed_list = [int(s) for s in seeds]
    target_list = sorted({int(t) for t in targets})
    if not target_list:
        raise InvalidQueryError("target set must not be empty")
    check_node_ids(seed_list, graph.num_nodes, context="estimate_spread")
    check_node_ids(target_list, graph.num_nodes, context="estimate_spread")
    check_tags_exist(tags, graph.tags)

    if edge_probs is None:
        edge_probs = graph.edge_probabilities(tags)

    if not seed_list:
        return 0.0

    target_arr = np.array(target_list, dtype=np.int64)
    total = 0
    for _ in range(num_samples):
        active = simulate_cascade(graph, seed_list, edge_probs, rng)
        total += int(active[target_arr].sum())
    return total / num_samples


def estimate_spread_fraction(
    graph: TagGraph,
    seeds: Iterable[int],
    targets: Iterable[int],
    tags: Sequence[str],
    num_samples: int = 200,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Spread as a fraction of the target-set size, in ``[0, 1]``.

    The paper reports most accuracy results as "% influence spread in
    targets"; this is that quantity (before the ×100).
    """
    target_list = sorted({int(t) for t in targets})
    if not target_list:
        raise InvalidQueryError("target set must not be empty")
    spread = estimate_spread(
        graph, seeds, target_list, tags, num_samples=num_samples, rng=rng
    )
    return spread / len(target_list)
