"""Monte-Carlo estimation of the targeted influence spread ``σ(S, T, C1)``.

Each sample runs one lazy-coin IC cascade from the seed set and counts
activated targets; the estimate is the sample mean (Eq. 5 by the
law of large numbers).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.diffusion.cascade import simulate_cascade
from repro.exceptions import BudgetExceededError, InvalidQueryError
from repro.graphs.tag_graph import TagGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import as_target_array, check_node_ids, check_tags_exist

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.parallel import SamplingEngine
    from repro.engine.runtime import RunBudget


def target_mask(graph: TagGraph, targets: Iterable[int]) -> np.ndarray:
    """Validated boolean target mask (length ``n``) for reuse across calls.

    Callers estimating many seed sets against one target set (CELF hill
    climbing, the iterative framework) compute this once and pass it to
    :func:`estimate_spread` — mirroring the existing ``edge_probs``
    precomputation — instead of having the target list re-sorted and
    re-validated per invocation.
    """
    arr = as_target_array(targets, graph.num_nodes, context="target_mask")
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[arr] = True
    return mask


def estimate_spread(
    graph: TagGraph,
    seeds: Iterable[int],
    targets: Iterable[int] | None,
    tags: Sequence[str],
    num_samples: int = 200,
    rng: np.random.Generator | int | None = None,
    edge_probs: np.ndarray | None = None,
    targets_mask: np.ndarray | None = None,
    engine: "SamplingEngine | None" = None,
    budget: "RunBudget | None" = None,
) -> float:
    """Estimate ``σ(S, T, C1)`` — expected number of activated targets.

    Parameters
    ----------
    graph, seeds, targets, tags:
        The query; ``tags`` are aggregated with the independent model.
    num_samples:
        Number of IC cascades to average over.
    rng:
        Seed or generator.
    edge_probs:
        Optional precomputed ``graph.edge_probabilities(tags)`` — pass it
        when estimating many seed sets under the same tag set to avoid
        recomputing the aggregation.
    targets_mask:
        Optional precomputed :func:`target_mask` — the target-set
        analogue of ``edge_probs``. When given, ``targets`` may be
        ``None`` and no per-call target validation or sorting happens.
    engine:
        Optional :class:`~repro.engine.SamplingEngine`: cascades are
        then simulated frontier-batched (and sharded across processes
        for ``workers > 1``) instead of one scalar BFS per sample.
    budget:
        Optional :class:`~repro.engine.RunBudget`. A tripped limit
        raises :class:`~repro.exceptions.BudgetExceededError` whose
        ``partial`` is the spread estimate over the cascades completed
        so far (or ``0.0`` when none ran).

    Returns
    -------
    float
        Estimated expected spread, in ``[0, |T|]``.
    """
    if num_samples <= 0:
        raise InvalidQueryError(
            f"num_samples must be positive, got {num_samples}"
        )
    rng = ensure_rng(rng)
    seed_list = [int(s) for s in seeds]
    check_node_ids(seed_list, graph.num_nodes, context="estimate_spread")
    check_tags_exist(tags, graph.tags)

    if targets_mask is not None:
        if targets_mask.shape != (graph.num_nodes,):
            raise InvalidQueryError(
                f"targets_mask must have length n={graph.num_nodes}, "
                f"got shape {targets_mask.shape}"
            )
        if not targets_mask.any():
            raise InvalidQueryError("target set must not be empty")
        target_arr = np.flatnonzero(targets_mask)
    else:
        if targets is None:
            raise InvalidQueryError(
                "estimate_spread needs targets or a precomputed targets_mask"
            )
        target_arr = as_target_array(
            targets, graph.num_nodes, context="estimate_spread"
        )

    if edge_probs is None:
        edge_probs = graph.edge_probabilities(tags)

    if not seed_list:
        return 0.0

    if engine is not None:
        return engine.estimate_spread(
            graph,
            np.array(sorted(set(seed_list)), dtype=np.int64),
            edge_probs,
            num_samples,
            target_arr,
            rng,
            budget=budget,
        )

    if budget is not None:
        budget.charge_samples(num_samples, partial=0.0)
    total = 0
    for done in range(1, num_samples + 1):
        active = simulate_cascade(graph, seed_list, edge_probs, rng)
        total += int(active[target_arr].sum())
        if budget is not None and done < num_samples:
            try:
                budget.check()
            except BudgetExceededError as exc:
                # Same counter name as the engine driver: on any path,
                # cascade.samples_drawn equals cascades actually run.
                obs.count("cascade.samples_drawn", done)
                exc.partial = total / done
                raise
    obs.count("cascade.samples_drawn", num_samples)
    return total / num_samples


def estimate_spread_fraction(
    graph: TagGraph,
    seeds: Iterable[int],
    targets: Iterable[int],
    tags: Sequence[str],
    num_samples: int = 200,
    rng: np.random.Generator | int | None = None,
    engine: "SamplingEngine | None" = None,
) -> float:
    """Spread as a fraction of the target-set size, in ``[0, 1]``.

    The paper reports most accuracy results as "% influence spread in
    targets"; this is that quantity (before the ×100).
    """
    target_arr = as_target_array(
        targets, graph.num_nodes, context="estimate_spread_fraction"
    )
    spread = estimate_spread(
        graph, seeds, target_arr, tags, num_samples=num_samples, rng=rng,
        engine=engine,
    )
    return spread / int(target_arr.size)
