"""Influence diffusion substrate: IC cascades, sampling, spread estimation.

Implements the paper's diffusion model (Section 2.1): the Independent
Cascade model over an uncertain graph whose edge probabilities are the
independent tag aggregation of the selected campaign tags. Provides

* forward cascade simulation (:func:`simulate_cascade`),
* possible-world sampling and probability (Eq. 1 / Eq. 4),
* Monte-Carlo estimation of the targeted spread ``σ(S, T, C1)``
  (Eq. 5, :func:`estimate_spread`),
* exact spread by exhaustive possible-world enumeration for tiny graphs
  (:func:`exact_spread`) — the test oracle for every estimator in the
  library.
"""

from repro.diffusion.cascade import reachable_targets, simulate_cascade
from repro.diffusion.exact import exact_spread
from repro.diffusion.linear_threshold import (
    estimate_lt_spread,
    lt_edge_weights,
    lt_reverse_reachable_set,
    sample_live_edges,
    simulate_lt_cascade,
)
from repro.diffusion.mia import mia_spread
from repro.diffusion.monte_carlo import estimate_spread, estimate_spread_fraction
from repro.diffusion.possible_world import (
    sample_possible_world,
    world_probability,
)

__all__ = [
    "estimate_lt_spread",
    "estimate_spread",
    "estimate_spread_fraction",
    "exact_spread",
    "lt_edge_weights",
    "lt_reverse_reachable_set",
    "mia_spread",
    "reachable_targets",
    "sample_live_edges",
    "sample_possible_world",
    "simulate_cascade",
    "simulate_lt_cascade",
    "world_probability",
]
