"""MIA — Maximum Influence Arborescence spread estimation (Chen et al.).

The paper cites Chen, Wang, Wang (KDD 2010) as the classical
simulation-free alternative to Monte-Carlo: influence is assumed to
travel only along each node pair's *maximum influence path* (the path
maximizing the product of edge probabilities), and each target's
activation probability is computed exactly on its maximum-influence
in-arborescence — the union of all max-probability paths into the
target with probability at least ``theta``.

On in-trees MIA is exact; on general graphs it is a fast heuristic that
ignores path correlations outside the arborescence. It is provided as
an alternative estimator (and validated against the exact oracle on
trees in the test suite).
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidQueryError
from repro.graphs.tag_graph import TagGraph
from repro.utils.validation import check_node_ids, check_tags_exist


def _in_arborescence(
    graph: TagGraph,
    root: int,
    edge_probs: np.ndarray,
    theta: float,
) -> tuple[dict[int, float], dict[int, tuple[int, float]]]:
    """Reverse Dijkstra from ``root`` on ``-log p`` costs.

    Returns ``(path_prob, parent)`` where ``path_prob[u]`` is the
    probability of u's maximum influence path to the root (only nodes
    with ``path_prob ≥ theta``), and ``parent[u] = (next_hop, p(u, next))``
    is u's outgoing step along that path (absent for the root).
    """
    max_cost = -math.log(theta) if theta > 0.0 else math.inf
    dist: dict[int, float] = {root: 0.0}
    parent: dict[int, tuple[int, float]] = {}
    heap: list[tuple[float, int]] = [(0.0, root)]
    settled: set[int] = set()

    rev_indptr, rev_edges = graph.reverse_csr()
    src = graph.src
    while heap:
        cost, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for eid in rev_edges[rev_indptr[node]:rev_indptr[node + 1]].tolist():
            p = edge_probs[eid]
            if p <= 0.0:
                continue
            candidate = cost - math.log(p)
            if candidate > max_cost:
                continue
            u = int(src[eid])
            if candidate < dist.get(u, math.inf):
                dist[u] = candidate
                parent[u] = (node, float(p))
                heapq.heappush(heap, (candidate, u))

    path_prob = {u: math.exp(-c) for u, c in dist.items()}
    return path_prob, parent


def _activation_probability(
    root: int,
    seeds: set[int],
    path_prob: dict[int, float],
    parent: dict[int, tuple[int, float]],
) -> float:
    """Bottom-up ap computation over the in-arborescence (Chen et al. §4)."""
    children: dict[int, list[tuple[int, float]]] = {}
    for u, (next_hop, p) in parent.items():
        children.setdefault(next_hop, []).append((u, p))

    # Farthest-first (lowest path probability first) guarantees every
    # child is resolved before its parent on the arborescence paths.
    order = sorted(path_prob, key=lambda u: path_prob[u])
    ap: dict[int, float] = {}
    for u in order:
        if u in seeds:
            ap[u] = 1.0
            continue
        survival = 1.0
        for child, p in children.get(u, ()):  # children are farther out
            survival *= 1.0 - ap.get(child, 0.0) * p
        ap[u] = 1.0 - survival
    return ap.get(root, 0.0)


def mia_spread(
    graph: TagGraph,
    seeds: Iterable[int],
    targets: Iterable[int],
    tags: Sequence[str],
    theta: float = 0.01,
) -> float:
    """MIA estimate of ``σ(S, T, C1)``.

    Parameters
    ----------
    theta:
        Path-probability threshold: maximum influence paths with
        probability below ``theta`` are ignored (the MIA model's size /
        accuracy knob; Chen et al. recommend 1/320–1/80).
    """
    if not (0.0 < theta <= 1.0):
        raise InvalidQueryError(f"theta must lie in (0, 1], got {theta}")
    seed_set = {int(s) for s in seeds}
    target_list = sorted({int(t) for t in targets})
    check_node_ids(seed_set, graph.num_nodes, context="mia_spread")
    check_node_ids(target_list, graph.num_nodes, context="mia_spread")
    check_tags_exist(tags, graph.tags)
    if not seed_set or not target_list:
        return 0.0

    edge_probs = graph.edge_probabilities(tags)
    total = 0.0
    for target in target_list:
        if target in seed_set:
            total += 1.0
            continue
        path_prob, parent = _in_arborescence(
            graph, target, edge_probs, theta
        )
        total += _activation_probability(
            target, seed_set, path_prob, parent
        )
    return total
