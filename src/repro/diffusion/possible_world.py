"""Possible-world semantics of the uncertain graph (Eq. 1 and Eq. 4)."""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.tag_graph import TagGraph
from repro.utils.rng import ensure_rng


def sample_possible_world(
    graph: TagGraph,
    edge_probs: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Sample one deterministic world ``G ⊑ G``; return its edge mask.

    Each edge is retained independently with its (tag-conditional,
    already aggregated) probability.
    """
    rng = ensure_rng(rng)
    if edge_probs.shape != (graph.num_edges,):
        raise ValueError(
            f"edge_probs must have length m={graph.num_edges}, "
            f"got shape {edge_probs.shape}"
        )
    return rng.random(graph.num_edges) < edge_probs


def world_probability(edge_mask: np.ndarray, edge_probs: np.ndarray) -> float:
    """``Pr(G | C1)`` of a world under Eq. 4.

    The product of each present edge's probability and each absent
    edge's complement. Worlds containing an impossible edge (probability
    zero present, or probability one absent) have probability ``0.0``.
    """
    if edge_mask.shape != edge_probs.shape:
        raise ValueError("edge_mask and edge_probs must have equal shape")
    log_prob = 0.0
    for present, p in zip(edge_mask.tolist(), edge_probs.tolist()):
        factor = p if present else 1.0 - p
        if factor <= 0.0:
            return 0.0
        log_prob += math.log(factor)
    return math.exp(log_prob)
