"""Forward Independent Cascade simulation.

Under the IC model, running one cascade from a seed set is equivalent to
sampling a possible world (keep each edge ``e`` with probability
``p(e)``) and taking all nodes reachable from the seeds. We exploit the
*deferred decision principle*: coins are flipped lazily, only for edges
whose source node actually becomes active, which is what makes cascades
cheap on sparse activations.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

import numpy as np

from repro.graphs.tag_graph import TagGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_node_ids


def simulate_cascade(
    graph: TagGraph,
    seeds: Iterable[int],
    edge_probs: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Run one IC cascade; return the boolean activation mask (length ``n``).

    Parameters
    ----------
    graph:
        The social graph.
    seeds:
        Initially active nodes.
    edge_probs:
        Per-edge activation probabilities, e.g.
        ``graph.edge_probabilities(tags)``.
    rng:
        Seed or generator for the coin flips.

    Notes
    -----
    Each node activates at most once and each edge's coin is flipped at
    most once — matching the IC model's "single chance" rule.
    """
    rng = ensure_rng(rng)
    seed_list = [int(s) for s in seeds]
    check_node_ids(seed_list, graph.num_nodes, context="simulate_cascade")

    active = np.zeros(graph.num_nodes, dtype=bool)
    queue: deque[int] = deque()
    for s in seed_list:
        if not active[s]:
            active[s] = True
            queue.append(s)

    fwd_indptr, fwd_edges = graph.forward_csr()
    dst = graph.dst
    while queue:
        node = queue.popleft()
        edge_ids = fwd_edges[fwd_indptr[node]:fwd_indptr[node + 1]]
        if edge_ids.size == 0:
            continue
        probs = edge_probs[edge_ids]
        coins = rng.random(edge_ids.size) < probs
        for eid in edge_ids[coins]:
            child = int(dst[eid])
            if not active[child]:
                active[child] = True
                queue.append(child)
    return active


def reachable_targets(
    graph: TagGraph,
    seeds: Iterable[int],
    targets: Iterable[int],
    edge_mask: np.ndarray,
) -> int:
    """Count targets reachable from ``seeds`` in a fixed possible world.

    ``edge_mask`` is a boolean array of length ``m`` marking the edges
    that exist in the world; this computes ``σ_G(S, T)`` of Eq. 2.
    """
    seed_list = [int(s) for s in seeds]
    target_list = [int(t) for t in targets]
    check_node_ids(seed_list, graph.num_nodes, context="reachable_targets")
    check_node_ids(target_list, graph.num_nodes, context="reachable_targets")

    visited = np.zeros(graph.num_nodes, dtype=bool)
    queue: deque[int] = deque()
    for s in seed_list:
        if not visited[s]:
            visited[s] = True
            queue.append(s)

    fwd_indptr, fwd_edges = graph.forward_csr()
    dst = graph.dst
    while queue:
        node = queue.popleft()
        for eid in fwd_edges[fwd_indptr[node]:fwd_indptr[node + 1]]:
            if edge_mask[eid]:
                child = int(dst[eid])
                if not visited[child]:
                    visited[child] = True
                    queue.append(child)
    return int(sum(1 for t in set(target_list) if visited[t]))
