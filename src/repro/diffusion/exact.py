"""Exact targeted spread by exhaustive possible-world enumeration.

``σ(S, T, C1)`` is ``Σ_{G ⊑ G} σ_G(S, T) · Pr(G | C1)`` (Eq. 5).
Computing it exactly is #P-hard in general (Theorem 2), but for graphs
with few *active* edges (edges with non-zero probability under the
chosen tags) the ``2^{m_active}`` worlds can be enumerated directly.
This is the ground-truth oracle used by the test suite to validate the
Monte-Carlo and sketch-based estimators.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from itertools import product

import numpy as np

from repro.diffusion.cascade import reachable_targets
from repro.exceptions import EstimationError
from repro.graphs.tag_graph import TagGraph
from repro.utils.validation import check_node_ids, check_tags_exist

#: Refuse to enumerate beyond this many active edges (2^18 ≈ 262k worlds).
MAX_ACTIVE_EDGES = 18


def exact_spread(
    graph: TagGraph,
    seeds: Iterable[int],
    targets: Iterable[int],
    tags: Sequence[str],
    max_active_edges: int = MAX_ACTIVE_EDGES,
) -> float:
    """Exact ``σ(S, T, C1)`` for graphs with few active edges.

    Raises :class:`EstimationError` when more than ``max_active_edges``
    edges have non-zero probability under ``tags`` — the enumeration
    would be intractable, use :func:`~repro.diffusion.estimate_spread`
    instead.
    """
    seed_list = sorted({int(s) for s in seeds})
    target_list = sorted({int(t) for t in targets})
    check_node_ids(seed_list, graph.num_nodes, context="exact_spread")
    check_node_ids(target_list, graph.num_nodes, context="exact_spread")
    check_tags_exist(tags, graph.tags)
    if not seed_list or not target_list:
        return 0.0

    edge_probs = graph.edge_probabilities(tags)
    active_edges = np.flatnonzero(edge_probs > 0.0)

    # Edges with probability exactly 1 are always present; no need to
    # branch on them — only the uncertain ones count against the limit.
    certain = active_edges[edge_probs[active_edges] >= 1.0]
    uncertain = active_edges[edge_probs[active_edges] < 1.0]
    if uncertain.size > max_active_edges:
        raise EstimationError(
            f"{uncertain.size} uncertain active edges exceed the "
            f"enumeration limit of {max_active_edges}; use Monte-Carlo "
            "estimation"
        )

    base_mask = np.zeros(graph.num_edges, dtype=bool)
    base_mask[certain] = True

    total = 0.0
    for assignment in product((False, True), repeat=uncertain.size):
        mask = base_mask.copy()
        prob = 1.0
        for eid, present in zip(uncertain.tolist(), assignment):
            p = edge_probs[eid]
            if present:
                mask[eid] = True
                prob *= p
            else:
                prob *= 1.0 - p
        if prob == 0.0:
            continue
        total += prob * reachable_targets(graph, seed_list, target_list, mask)
    return total
