"""Linear Threshold (LT) diffusion — the classical alternative to IC.

The paper (and this library) works in the IC model; LT is provided as a
documented extension because the two models share the triggering-set
machinery: every result built on reverse-reachable sets transfers to LT
by swapping the world sampler.

Model
-----
Each node ``v`` has incoming edge weights ``b(u, v) ≥ 0`` with
``Σ_u b(u, v) ≤ 1`` and draws a threshold ``θ_v ~ U[0, 1]``; it
activates when the weight of its active in-neighbours reaches ``θ_v``.
Kempe et al. showed LT is equivalent to the *live-edge* model where
every node keeps at most one incoming edge, chosen with probability
``b(u, v)`` (and none with ``1 − Σ b``). Both the forward cascade and
the reverse (RR-set) sampler below use that equivalence.

Weights are derived from the tag-conditional probabilities by
normalizing each node's incoming aggregated probabilities to sum to at
most one (:func:`lt_edge_weights`) — the standard "weighted cascade"
construction.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidQueryError
from repro.graphs.tag_graph import TagGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_node_ids, check_tags_exist


def lt_edge_weights(
    graph: TagGraph, tags: Sequence[str], cap: float = 1.0
) -> np.ndarray:
    """Per-edge LT weights from the aggregated tag probabilities.

    Each node's incoming probabilities are scaled so they sum to at most
    ``cap`` (≤ 1); nodes whose incoming mass is already below the cap
    keep their probabilities unchanged.
    """
    if not (0.0 < cap <= 1.0):
        raise InvalidQueryError(f"cap must lie in (0, 1], got {cap}")
    check_tags_exist(tags, graph.tags)
    probs = graph.edge_probabilities(tags)
    incoming_sum = np.zeros(graph.num_nodes, dtype=np.float64)
    np.add.at(incoming_sum, graph.dst, probs)
    scale = np.ones(graph.num_nodes, dtype=np.float64)
    over = incoming_sum > cap
    scale[over] = cap / incoming_sum[over]
    return probs * scale[graph.dst]


def sample_live_edges(
    graph: TagGraph,
    weights: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Sample one LT live-edge world: per node, at most one incoming edge.

    Returns a boolean edge mask. Node ``v`` keeps edge ``e = (u, v)``
    with probability ``weights[e]`` and keeps nothing with probability
    ``1 − Σ_u weights``.
    """
    rng = ensure_rng(rng)
    if weights.shape != (graph.num_edges,):
        raise InvalidQueryError(
            f"weights must have length m={graph.num_edges}"
        )
    mask = np.zeros(graph.num_edges, dtype=bool)
    rev_indptr, rev_edges = graph.reverse_csr()
    draws = rng.random(graph.num_nodes)
    for node in range(graph.num_nodes):
        edge_ids = rev_edges[rev_indptr[node]:rev_indptr[node + 1]]
        if edge_ids.size == 0:
            continue
        cumulative = 0.0
        draw = draws[node]
        for eid in edge_ids.tolist():
            cumulative += weights[eid]
            if draw < cumulative:
                mask[eid] = True
                break
    return mask


def simulate_lt_cascade(
    graph: TagGraph,
    seeds: Iterable[int],
    weights: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Run one LT cascade via threshold draws; returns the activation mask.

    Direct simulation of the threshold process (not the live-edge
    shortcut), so tests can check the two give identical distributions.
    """
    rng = ensure_rng(rng)
    seed_list = [int(s) for s in seeds]
    check_node_ids(seed_list, graph.num_nodes, context="simulate_lt_cascade")
    if weights.shape != (graph.num_edges,):
        raise InvalidQueryError(
            f"weights must have length m={graph.num_edges}"
        )

    thresholds = rng.random(graph.num_nodes)
    active = np.zeros(graph.num_nodes, dtype=bool)
    pressure = np.zeros(graph.num_nodes, dtype=np.float64)
    queue: deque[int] = deque()
    for s in seed_list:
        if not active[s]:
            active[s] = True
            queue.append(s)

    fwd_indptr, fwd_edges = graph.forward_csr()
    dst = graph.dst
    while queue:
        node = queue.popleft()
        for eid in fwd_edges[fwd_indptr[node]:fwd_indptr[node + 1]].tolist():
            child = int(dst[eid])
            if active[child]:
                continue
            pressure[child] += weights[eid]
            if pressure[child] >= thresholds[child]:
                active[child] = True
                queue.append(child)
    return active


def lt_reverse_reachable_set(
    graph: TagGraph,
    root: int,
    weights: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """One LT RR set: walk live edges backwards from the root.

    In the live-edge model every node has at most one incoming live
    edge, so the reverse structure from the root is a path/tree and is
    sampled lazily: each visited node picks its (single) live in-edge on
    first visit.
    """
    rng = ensure_rng(rng)
    check_node_ids([root], graph.num_nodes, context="lt_reverse_reachable_set")
    if weights.shape != (graph.num_edges,):
        raise InvalidQueryError(
            f"weights must have length m={graph.num_edges}"
        )

    rev_indptr, rev_edges = graph.reverse_csr()
    src = graph.src
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[root] = True
    members = [int(root)]
    node = int(root)
    while True:
        edge_ids = rev_edges[rev_indptr[node]:rev_indptr[node + 1]]
        if edge_ids.size == 0:
            break
        cumulative = 0.0
        draw = float(rng.random())
        chosen = -1
        for eid in edge_ids.tolist():
            cumulative += weights[eid]
            if draw < cumulative:
                chosen = eid
                break
        if chosen < 0:
            break
        parent = int(src[chosen])
        if visited[parent]:
            break  # live-edge cycle: stop, everything is collected
        visited[parent] = True
        members.append(parent)
        node = parent
    return np.array(members, dtype=np.int64)


def estimate_lt_spread(
    graph: TagGraph,
    seeds: Iterable[int],
    targets: Iterable[int],
    tags: Sequence[str],
    num_samples: int = 200,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Monte-Carlo ``σ_LT(S, T, C1)`` under normalized LT weights."""
    if num_samples <= 0:
        raise InvalidQueryError("num_samples must be positive")
    rng = ensure_rng(rng)
    seed_list = [int(s) for s in seeds]
    target_list = sorted({int(t) for t in targets})
    if not target_list:
        raise InvalidQueryError("target set must not be empty")
    check_node_ids(seed_list, graph.num_nodes, context="estimate_lt_spread")
    check_node_ids(target_list, graph.num_nodes, context="estimate_lt_spread")
    if not seed_list:
        return 0.0

    weights = lt_edge_weights(graph, tags)
    target_arr = np.array(target_list, dtype=np.int64)
    total = 0
    for _ in range(num_samples):
        active = simulate_lt_cascade(graph, seed_list, weights, rng)
        total += int(active[target_arr].sum())
    return total / num_samples
