"""Seed-finding algorithms (paper Section 3).

Given a fixed tag set the problem reduces to classical *targeted*
influence maximization: monotone and submodular in the seed set
(Lemma 2), so the greedy hill-climber carries the ``(1 - 1/e)``
guarantee and reverse sketching the ``(1 - 1/e - ε)`` one. Engines:

* ``greedy-mc`` — hill climbing with Monte-Carlo spread estimation and
  CELF / CELF++ lazy evaluation;
* ``trs`` — targeted reverse sketching (Section 3.1);
* ``itrs`` / ``ltrs`` / ``lltrs`` — index-based variants (Sections 3.2–3.3).
"""

from repro.seeds.api import SeedSelection, find_seeds
from repro.seeds.greedy_mc import GreedyMCResult, greedy_mc_select_seeds

__all__ = [
    "GreedyMCResult",
    "SeedSelection",
    "find_seeds",
    "greedy_mc_select_seeds",
]
