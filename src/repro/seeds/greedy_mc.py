"""Greedy hill-climbing seed selection with CELF / CELF++ lazy evaluation.

The classical ``(1 - 1/e)`` greedy (Kempe et al.): at every step add the
node with the largest marginal spread gain (Eq. 7), estimated by
Monte-Carlo. Submodularity makes marginal gains non-increasing, which is
what CELF (Leskovec et al.) exploits: a stale upper bound that is still
below the best fresh gain never needs recomputing. CELF++ (Goyal et al.)
additionally caches each node's gain w.r.t. ``S ∪ {current best}`` so
that when the current best is indeed picked, the runner-up's cached
value is already fresh.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.diffusion.monte_carlo import estimate_spread, target_mask
from repro.exceptions import BudgetExceededError
from repro.graphs.tag_graph import TagGraph
from repro.utils.rng import ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import check_budget, check_tags_exist

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.parallel import SamplingEngine
    from repro.engine.runtime import RunBudget


@dataclass(frozen=True)
class GreedyMCResult:
    """Outcome of MC hill climbing.

    Attributes
    ----------
    seeds:
        Selected nodes in pick order.
    estimated_spread:
        MC estimate of ``σ(S, T, C1)`` for the final seed set.
    spread_evaluations:
        How many MC spread estimations were performed — the quantity
        CELF/CELF++ exist to minimize.
    elapsed_seconds:
        Wall-clock selection time.
    telemetry:
        Runtime failure counters when an engine ran the simulation;
        ``None`` on the scalar path.
    report:
        Observability report (metrics + trace + phases) when the call
        ran inside an :func:`repro.obs.observe` scope; ``None``
        otherwise.
    """

    seeds: tuple[int, ...]
    estimated_spread: float
    spread_evaluations: int
    elapsed_seconds: float
    telemetry: dict | None = None
    report: dict | None = None


def greedy_mc_select_seeds(
    graph: TagGraph,
    targets: Sequence[int],
    tags: Sequence[str],
    k: int,
    num_samples: int = 100,
    candidates: Sequence[int] | None = None,
    use_celf_plus_plus: bool = True,
    rng: np.random.Generator | int | None = None,
    engine: "SamplingEngine | None" = None,
    budget: "RunBudget | None" = None,
) -> GreedyMCResult:
    """Pick ``k`` seeds by lazy greedy hill climbing (Eq. 7).

    Parameters
    ----------
    num_samples:
        MC samples per spread estimation.
    candidates:
        Optional restriction of the seed universe; defaults to all nodes.
    use_celf_plus_plus:
        Enable the CELF++ look-ahead cache on top of plain CELF.
    engine:
        Optional :class:`~repro.engine.SamplingEngine` for
        frontier-batched (and multi-process) cascade simulation.
    budget:
        Optional :class:`~repro.engine.RunBudget` spanning every MC
        evaluation; a tripped limit raises
        :class:`~repro.exceptions.BudgetExceededError` whose ``partial``
        is a :class:`GreedyMCResult` with the seeds picked so far.

    Notes
    -----
    MC noise can make an apparently "fresh" stale bound slightly wrong;
    that affects constants, not the algorithm's structure, and matches
    how every MC-based CELF implementation behaves in practice.
    """
    rng = ensure_rng(rng)
    check_tags_exist(tags, graph.tags)
    pool = (
        list(range(graph.num_nodes))
        if candidates is None
        else sorted({int(c) for c in candidates})
    )
    check_budget(k, len(pool), what="seeds")

    edge_probs = graph.edge_probabilities(tags)
    # Like edge_probs, the target mask is hoisted out of the estimation
    # loop — thousands of CELF evaluations share one validation.
    targets_mask = target_mask(graph, targets)
    evaluations = 0

    def spread_of(seed_set: Sequence[int]) -> float:
        nonlocal evaluations
        if not seed_set:
            return 0.0
        evaluations += 1
        obs.count("celf.spread_evaluations")
        return estimate_spread(
            graph,
            seed_set,
            None,
            tags,
            num_samples=num_samples,
            rng=rng,
            edge_probs=edge_probs,
            targets_mask=targets_mask,
            engine=engine,
            budget=budget,
        )

    timer = Timer()
    seeds: list[int] = []
    base_spread = 0.0
    try:
        with timer, obs.span("greedy_mc", k=k, num_samples=num_samples):
            # Heap entries: (-gain, node, round_when_computed,
            # gain_after_best). gain_after_best is the CELF++ cache: the
            # node's marginal gain assuming the round's current best is
            # also added.
            heap: list[list[float | int | None]] = []
            for node in pool:
                gain = spread_of([node])
                heapq.heappush(heap, [-gain, node, 0, None])

            round_no = 0
            while heap and len(seeds) < k:
                entry = heapq.heappop(heap)
                neg_gain, node, computed_at, gain_after_best = entry

                if computed_at == round_no:
                    # Fresh bound: by submodularity nothing below can
                    # beat it.
                    seeds.append(int(node))
                    base_spread = base_spread + (-neg_gain)
                    round_no += 1
                    continue

                if (
                    use_celf_plus_plus
                    and gain_after_best is not None
                    and computed_at == round_no - 1
                ):
                    # CELF++ shortcut: the cached "gain if best is
                    # added" became exact when that best was indeed the
                    # last pick.
                    heapq.heappush(
                        heap, [-gain_after_best, node, round_no, None]
                    )
                    continue

                fresh = spread_of(seeds + [int(node)]) - base_spread
                cache = None
                if use_celf_plus_plus and heap:
                    current_best = int(heap[0][1])
                    cache = (
                        spread_of(seeds + [current_best, int(node)])
                        - spread_of(seeds + [current_best])
                    )
                heapq.heappush(
                    heap, [-max(fresh, 0.0), node, round_no, cache]
                )

            final_spread = spread_of(seeds)
    except BudgetExceededError as exc:
        exc.partial = GreedyMCResult(
            seeds=tuple(seeds),
            estimated_spread=0.0 if not seeds else base_spread,
            spread_evaluations=evaluations,
            elapsed_seconds=timer.elapsed,
            telemetry=(
                engine.telemetry.as_dict() if engine is not None else None
            ),
        )
        raise

    return GreedyMCResult(
        seeds=tuple(seeds),
        estimated_spread=final_spread,
        spread_evaluations=evaluations,
        elapsed_seconds=timer.elapsed,
        telemetry=engine.telemetry.as_dict() if engine is not None else None,
        report=obs.snapshot_report(),
    )
