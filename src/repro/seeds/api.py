"""Unified entry point for seed selection across all engines."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.tag_graph import TagGraph
from repro.index.itrs import (
    indexed_select_seeds,
    make_itrs_manager,
    make_lltrs_manager,
    make_ltrs_manager,
)
from repro.index.lazy import IndexManager
from repro.seeds.greedy_mc import greedy_mc_select_seeds
from repro.sketch.imm import imm_select_seeds
from repro.sketch.theta import SketchConfig
from repro.sketch.trs import trs_select_seeds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.parallel import SamplingEngine

ENGINES = ("trs", "imm", "itrs", "ltrs", "lltrs", "greedy-mc")


@dataclass(frozen=True)
class SeedSelection:
    """Engine-agnostic seed-selection outcome.

    Attributes
    ----------
    seeds:
        Selected node ids, in pick order.
    estimated_spread:
        The engine's own estimate of ``σ(S, T, C1)``.
    engine:
        Which engine produced the result.
    elapsed_seconds:
        Wall-clock time of the selection (online part for index engines).
    """

    seeds: tuple[int, ...]
    estimated_spread: float
    engine: str
    elapsed_seconds: float


def find_seeds(
    graph: TagGraph,
    targets: Sequence[int],
    tags: Sequence[str],
    k: int,
    engine: str = "trs",
    config: SketchConfig = SketchConfig(),
    manager: IndexManager | None = None,
    num_samples: int = 100,
    rng: np.random.Generator | int | None = None,
    sampler: "SamplingEngine | None" = None,
) -> SeedSelection:
    """Find the top-``k`` seeds for targeted spread under fixed ``tags``.

    Parameters
    ----------
    engine:
        One of ``"trs"`` (targeted reverse sketching, the guarantee-
        bearing default), ``"imm"`` (martingale-sized sampling — same
        guarantee, usually fewer RR sets), ``"itrs"`` / ``"ltrs"`` /
        ``"lltrs"`` (index-based), or ``"greedy-mc"`` (CELF-accelerated
        Monte-Carlo hill climbing — the most accurate and by far the
        slowest).
    manager:
        Index manager for the index engines. When omitted, one is
        created on the spot: eager all-tag for ``itrs``, empty lazy for
        ``ltrs``, local lazy for ``lltrs``. Passing your own lets
        indexes persist across calls (how the iterative framework uses
        L-TRS).
    num_samples:
        MC samples per estimation (``greedy-mc`` only).
    sampler:
        Optional :class:`~repro.engine.SamplingEngine` — the
        frontier-batched / multi-process sampling substrate every
        algorithmic engine above can run on. ``None`` keeps the scalar
        oracle path.
    """
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )

    if engine == "trs":
        result = trs_select_seeds(
            graph, targets, tags, k, config, rng, engine=sampler
        )
        return SeedSelection(
            seeds=result.seeds,
            estimated_spread=result.estimated_spread,
            engine=engine,
            elapsed_seconds=result.elapsed_seconds,
        )

    if engine == "imm":
        imm = imm_select_seeds(
            graph, targets, tags, k, config, rng=rng, engine=sampler
        )
        return SeedSelection(
            seeds=imm.seeds,
            estimated_spread=imm.estimated_spread,
            engine=engine,
            elapsed_seconds=imm.elapsed_seconds,
        )

    if engine == "greedy-mc":
        greedy = greedy_mc_select_seeds(
            graph, targets, tags, k, num_samples=num_samples, rng=rng,
            engine=sampler,
        )
        return SeedSelection(
            seeds=greedy.seeds,
            estimated_spread=greedy.estimated_spread,
            engine=engine,
            elapsed_seconds=greedy.elapsed_seconds,
        )

    if manager is None:
        if engine == "itrs":
            manager = make_itrs_manager(
                graph, theta=config.theta_max, r=max(len(tags), 1),
                config=config, rng=rng,
            )
        elif engine == "ltrs":
            manager = make_ltrs_manager(graph)
        else:  # lltrs
            manager = make_lltrs_manager(graph, targets, config)

    indexed = indexed_select_seeds(
        graph, targets, tags, k, manager, config, rng, engine=sampler
    )
    return SeedSelection(
        seeds=indexed.seeds,
        estimated_spread=indexed.estimated_spread,
        engine=engine,
        elapsed_seconds=indexed.query_seconds,
    )
