"""Unified entry point for seed selection across all engines."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import BudgetExceededError, ConfigurationError
from repro.graphs.tag_graph import TagGraph
from repro.index.itrs import (
    indexed_select_seeds,
    make_itrs_manager,
    make_lltrs_manager,
    make_ltrs_manager,
)
from repro.index.lazy import IndexManager
from repro.seeds.greedy_mc import greedy_mc_select_seeds
from repro.sketch.imm import imm_select_seeds
from repro.sketch.theta import SketchConfig
from repro.sketch.trs import trs_select_seeds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.parallel import SamplingEngine
    from repro.engine.runtime import RunBudget

ENGINES = ("trs", "imm", "itrs", "ltrs", "lltrs", "greedy-mc")


@dataclass(frozen=True)
class SeedSelection:
    """Engine-agnostic seed-selection outcome.

    Attributes
    ----------
    seeds:
        Selected node ids, in pick order.
    estimated_spread:
        The engine's own estimate of ``σ(S, T, C1)``.
    engine:
        Which engine produced the result.
    elapsed_seconds:
        Wall-clock time of the selection (online part for index engines).
    telemetry:
        Runtime failure counters (shards retried, pool rebuilds, ...)
        when a fault-tolerant sampler ran the engine; ``None`` on the
        scalar path.
    report:
        Observability report (metrics + trace + phases) when the call
        ran inside an :func:`repro.obs.observe` scope; ``None``
        otherwise.
    """

    seeds: tuple[int, ...]
    estimated_spread: float
    engine: str
    elapsed_seconds: float
    telemetry: dict | None = None
    report: dict | None = None


def find_seeds(
    graph: TagGraph,
    targets: Sequence[int],
    tags: Sequence[str],
    k: int,
    engine: str = "trs",
    config: SketchConfig = SketchConfig(),
    manager: IndexManager | None = None,
    num_samples: int = 100,
    rng: np.random.Generator | int | None = None,
    sampler: "SamplingEngine | None" = None,
    budget: "RunBudget | None" = None,
) -> SeedSelection:
    """Find the top-``k`` seeds for targeted spread under fixed ``tags``.

    Parameters
    ----------
    engine:
        One of ``"trs"`` (targeted reverse sketching, the guarantee-
        bearing default), ``"imm"`` (martingale-sized sampling — same
        guarantee, usually fewer RR sets), ``"itrs"`` / ``"ltrs"`` /
        ``"lltrs"`` (index-based), or ``"greedy-mc"`` (CELF-accelerated
        Monte-Carlo hill climbing — the most accurate and by far the
        slowest).
    manager:
        Index manager for the index engines. When omitted, one is
        created on the spot: eager all-tag for ``itrs``, empty lazy for
        ``ltrs``, local lazy for ``lltrs``. Passing your own lets
        indexes persist across calls (how the iterative framework uses
        L-TRS).
    num_samples:
        MC samples per estimation (``greedy-mc`` only).
    sampler:
        Optional :class:`~repro.engine.SamplingEngine` — the
        frontier-batched / multi-process sampling substrate every
        algorithmic engine above can run on. ``None`` keeps the scalar
        oracle path.
    budget:
        Optional :class:`~repro.engine.RunBudget` forwarded to the
        engine; a tripped limit raises
        :class:`~repro.exceptions.BudgetExceededError` whose ``partial``
        is re-wrapped as a best-effort :class:`SeedSelection`.
    """
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )

    if engine == "trs":
        run = lambda: trs_select_seeds(  # noqa: E731
            graph, targets, tags, k, config, rng, engine=sampler,
            budget=budget,
        )
    elif engine == "imm":
        run = lambda: imm_select_seeds(  # noqa: E731
            graph, targets, tags, k, config, rng=rng, engine=sampler,
            budget=budget,
        )
    elif engine == "greedy-mc":
        run = lambda: greedy_mc_select_seeds(  # noqa: E731
            graph, targets, tags, k, num_samples=num_samples, rng=rng,
            engine=sampler, budget=budget,
        )
    else:
        if manager is None:
            if engine == "itrs":
                manager = make_itrs_manager(
                    graph, theta=config.theta_max, r=max(len(tags), 1),
                    config=config, rng=rng,
                )
            elif engine == "ltrs":
                manager = make_ltrs_manager(graph)
            else:  # lltrs
                manager = make_lltrs_manager(graph, targets, config)
        mgr = manager
        run = lambda: indexed_select_seeds(  # noqa: E731
            graph, targets, tags, k, mgr, config, rng, engine=sampler,
            budget=budget,
        )

    try:
        result = run()
    except BudgetExceededError as exc:
        if exc.partial is not None and hasattr(exc.partial, "seeds"):
            exc.partial = _as_selection(exc.partial, engine)
        raise
    return _as_selection(result, engine)


def _as_selection(result, engine: str) -> SeedSelection:
    """Re-wrap any engine's (possibly partial) result uniformly."""
    elapsed = getattr(result, "elapsed_seconds", None)
    if elapsed is None:
        elapsed = getattr(result, "query_seconds", 0.0)
    return SeedSelection(
        seeds=result.seeds,
        estimated_spread=result.estimated_spread,
        engine=engine,
        elapsed_seconds=elapsed,
        telemetry=getattr(result, "telemetry", None),
        report=getattr(result, "report", None),
    )
