"""Vectorized frontier-batched sampling engine with parallel fan-out.

This package is the performance layer of the reproduction:

* :mod:`repro.engine.frontier` — level-synchronous BFS kernels that
  expand whole frontiers with numpy CSR gathers and flip all frontier
  coins in one call (no per-edge Python loop);
* :mod:`repro.engine.bitworld` — bit-parallel possible-world kernels:
  64 worlds per uint64 word, counter-based coins (pure function of
  ``(key, world, edge)``), popcount size accounting; one traversal
  yields 64 RR sets or 64 cascades;
* :mod:`repro.engine.shared_csr` — zero-copy shared-memory (or
  memmap-spilled) publication of a graph's CSR arrays, so pool workers
  attach by name instead of unpickling the graph per shard task;
* :mod:`repro.engine.rr_storage` — :class:`RRCollection`, a CSR-style
  flat store for RR sets with a lazy inverted node→set index, enabling
  an O(total membership) greedy max-coverage pass;
* :mod:`repro.engine.parallel` — :class:`SamplingEngine`, the
  ``ProcessPoolExecutor``-backed driver with deterministic per-shard
  RNG streams (same master seed ⇒ identical results for any worker
  count).

On top of the fan-out sits the fault-tolerant runtime:

* :mod:`repro.engine.runtime` — :class:`RetryPolicy`-driven shard
  retry with backoff, pool rebuilds and graceful degradation to the
  in-process path; :class:`Deadline`/:class:`RunBudget` guards that
  raise :class:`~repro.exceptions.BudgetExceededError` carrying the
  partial result; :class:`RunTelemetry` failure counters;
* :mod:`repro.engine.checkpoint` — :class:`CheckpointManager`,
  shard-granular checkpoint/resume of the flat collections under a
  deterministic-replay contract;
* :mod:`repro.engine.faults` — :class:`FaultPlan`, a deterministic
  fault-injection harness (scripted shard failures, hangs, worker
  kills, pool poisoning, interrupts) used to exercise every recovery
  path in tests.

The scalar implementations in :mod:`repro.sketch` and
:mod:`repro.diffusion` remain the correctness oracle; pass a
``SamplingEngine`` through the ``engine=`` knobs of the high-level APIs
to opt into this layer.
"""

from repro.engine.checkpoint import CheckpointManager, rng_state_digest
from repro.engine.faults import FaultPlan, InjectedFault, InjectedPermanentFault
from repro.engine.frontier import (
    batched_cascade_counts,
    batched_rr_members,
    bitparallel_cascade_counts,
    bitparallel_rr_members,
    cascade_frontier,
    hybrid_rr_frontier,
    rr_fixed_frontier,
    rr_frontier,
)
from repro.engine.parallel import (
    DEFAULT_BITPARALLEL_SHARD_SIZE,
    DEFAULT_SHARD_SIZE,
    MODES,
    QueryEngineView,
    SamplingEngine,
)
from repro.engine.shared_csr import (
    CSRGraphHandle,
    CSRGraphView,
    SharedCSR,
    SharedProbs,
    SharedTagGraph,
    TagGraphHandle,
)
from repro.engine.rr_storage import RRCollection
from repro.engine.runtime import (
    Deadline,
    RetryPolicy,
    RunBudget,
    RunTelemetry,
)

__all__ = [
    "DEFAULT_BITPARALLEL_SHARD_SIZE",
    "DEFAULT_SHARD_SIZE",
    "MODES",
    "CSRGraphHandle",
    "CSRGraphView",
    "CheckpointManager",
    "Deadline",
    "FaultPlan",
    "InjectedFault",
    "InjectedPermanentFault",
    "QueryEngineView",
    "RRCollection",
    "RetryPolicy",
    "RunBudget",
    "RunTelemetry",
    "SamplingEngine",
    "SharedCSR",
    "SharedProbs",
    "SharedTagGraph",
    "TagGraphHandle",
    "batched_cascade_counts",
    "batched_rr_members",
    "bitparallel_cascade_counts",
    "bitparallel_rr_members",
    "cascade_frontier",
    "hybrid_rr_frontier",
    "rng_state_digest",
    "rr_fixed_frontier",
    "rr_frontier",
]
