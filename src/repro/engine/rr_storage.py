"""Flat CSR-style storage for RR-set collections.

The scalar pipeline stores θ RR sets as ``list[np.ndarray]`` — θ small
heap objects whose membership the greedy max-coverage pass rescans per
pick. :class:`RRCollection` concatenates all members into one array with
an ``indptr`` (exactly the CSR layout the graph already uses for
adjacency) and derives the inverted node→set index lazily; greedy
coverage over it is an ``np.bincount``-based O(total membership) pass
(see :func:`repro.sketch.coverage.greedy_max_coverage`, which
dispatches here automatically).

An ``RRCollection`` behaves as a read-only sequence of int64 arrays, so
every existing consumer of ``list[np.ndarray]`` RR sets accepts one
unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidQueryError


class RRCollection(Sequence):
    """θ RR sets stored flat: concatenated members + ``indptr``.

    Parameters
    ----------
    members:
        All member node ids, set after set
        (``members[indptr[i]:indptr[i+1]]`` is set ``i``).
    indptr:
        Monotone offsets, length ``num_sets + 1``.
    num_nodes:
        Size of the node universe (needed for the inverted index).
    """

    __slots__ = ("_members", "_indptr", "_num_nodes", "_inverted")

    def __init__(
        self, members: np.ndarray, indptr: np.ndarray, num_nodes: int
    ) -> None:
        members = np.asarray(members, dtype=np.int64)
        indptr = np.asarray(indptr, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size == 0:
            raise InvalidQueryError("indptr must be a non-empty 1-D array")
        if indptr[0] != 0 or indptr[-1] != members.size:
            raise InvalidQueryError(
                "indptr must start at 0 and end at len(members), got "
                f"[{indptr[0]}, {indptr[-1]}] for {members.size} members"
            )
        if num_nodes <= 0:
            raise InvalidQueryError("num_nodes must be positive")
        self._members = members
        self._indptr = indptr
        self._num_nodes = int(num_nodes)
        self._inverted: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sets(
        cls, sets: Iterable[np.ndarray], num_nodes: int
    ) -> "RRCollection":
        """Build from an iterable of per-set member arrays."""
        arrays = [np.asarray(s, dtype=np.int64) for s in sets]
        counts = np.array([a.size for a in arrays], dtype=np.int64)
        indptr = np.zeros(len(arrays) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        members = (
            np.concatenate(arrays) if arrays else np.empty(0, dtype=np.int64)
        )
        return cls(members, indptr, num_nodes)

    @classmethod
    def concat(cls, collections: Sequence["RRCollection"]) -> "RRCollection":
        """Concatenate collections (same node universe), preserving order."""
        if not collections:
            raise InvalidQueryError("cannot concat zero collections")
        num_nodes = collections[0]._num_nodes
        for other in collections[1:]:
            if other._num_nodes != num_nodes:
                raise InvalidQueryError(
                    "cannot concat collections over different node universes"
                )
        members = np.concatenate([c._members for c in collections])
        counts = np.concatenate([np.diff(c._indptr) for c in collections])
        indptr = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(members, indptr, num_nodes)

    def truncated(self, count: int) -> "RRCollection":
        """First ``count`` sets as a new collection (views, no copy)."""
        count = max(0, min(int(count), self.num_sets))
        indptr = self._indptr[: count + 1]
        return RRCollection(
            self._members[: indptr[-1]], indptr, self._num_nodes
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def members(self) -> np.ndarray:
        """The concatenated member array (flat view)."""
        return self._members

    @property
    def indptr(self) -> np.ndarray:
        """Set offsets into :attr:`members`."""
        return self._indptr

    @property
    def num_nodes(self) -> int:
        """Size of the node universe."""
        return self._num_nodes

    @property
    def num_sets(self) -> int:
        """Number of RR sets stored."""
        return self._indptr.size - 1

    @property
    def total_members(self) -> int:
        """Total membership across all sets (storage cost)."""
        return int(self._members.size)

    def set_ids_per_member(self) -> np.ndarray:
        """Owning set id of every entry of :attr:`members`."""
        return np.repeat(
            np.arange(self.num_sets, dtype=np.int64), np.diff(self._indptr)
        )

    def inverted(self) -> tuple[np.ndarray, np.ndarray]:
        """Inverted node→set index as ``(indptr, set_ids)`` CSR arrays.

        ``set_ids[indptr[v]:indptr[v+1]]`` lists the RR sets containing
        node ``v`` (ascending). Built once, cached.
        """
        if self._inverted is None:
            order = np.argsort(self._members, kind="stable")
            set_ids = self.set_ids_per_member()[order]
            counts = np.bincount(self._members, minlength=self._num_nodes)
            indptr = np.zeros(self._num_nodes + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._inverted = (indptr, set_ids)
        return self._inverted

    def member_counts(self) -> np.ndarray:
        """Per-node membership counts (length ``num_nodes``)."""
        return np.bincount(self._members, minlength=self._num_nodes)

    # ------------------------------------------------------------------
    # Incremental repair support (touch traces)
    # ------------------------------------------------------------------
    def dirty_set_ids(self, nodes: np.ndarray) -> np.ndarray:
        """Ids of sets whose membership intersects ``nodes`` (ascending).

        The flat membership *is* each set's reverse-BFS touch trace: a
        reverse-reachable sample examines edge ``(u, v)``'s coin exactly
        when member ``v`` is dequeued, so after an edit the affected
        sets are precisely those containing a dirty edge's destination.
        Answered from the cached inverted index in
        O(|nodes| + |matching entries|).
        """
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        nodes = nodes[(nodes >= 0) & (nodes < self._num_nodes)]
        if not nodes.size:
            return np.empty(0, dtype=np.int64)
        indptr, set_ids = self.inverted()
        starts = indptr[nodes]
        counts = indptr[nodes + 1] - starts
        total = int(counts.sum())
        if not total:
            return np.empty(0, dtype=np.int64)
        # Gather set_ids[starts[i] : starts[i]+counts[i]] for all i.
        offsets = np.zeros(nodes.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        positions = np.arange(total, dtype=np.int64)
        positions += np.repeat(starts - offsets, counts)
        return np.unique(set_ids[positions])

    def replaced(
        self, set_ids: np.ndarray, new_sets: Sequence[np.ndarray]
    ) -> "RRCollection":
        """Return a collection with sets ``set_ids`` swapped for ``new_sets``.

        ``set_ids`` must be strictly ascending and ``new_sets`` parallel
        to it; every other set keeps its position and membership. The
        receiver is left untouched (copy-on-write — in-flight readers of
        the old collection never observe the splice).
        """
        set_ids = np.asarray(set_ids, dtype=np.int64)
        if len(new_sets) != set_ids.size:
            raise InvalidQueryError(
                f"{set_ids.size} set ids but {len(new_sets)} replacements"
            )
        if not set_ids.size:
            return self
        if set_ids.size > 1 and not (np.diff(set_ids) > 0).all():
            raise InvalidQueryError("set_ids must be strictly ascending")
        if set_ids[0] < 0 or set_ids[-1] >= self.num_sets:
            raise InvalidQueryError(
                f"set ids outside [0, {self.num_sets})"
            )
        counts = np.diff(self._indptr).copy()
        replacements = [np.asarray(s, dtype=np.int64) for s in new_sets]
        counts[set_ids] = [r.size for r in replacements]
        indptr = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # Alternate bulk slices of untouched runs with the new arrays:
        # O(sets touched) pieces, each a contiguous view of the source.
        pieces: list[np.ndarray] = []
        cursor = 0  # old-member offset of the next untouched run
        for sid, new in zip(set_ids.tolist(), replacements):
            lo, hi = self._indptr[sid], self._indptr[sid + 1]
            if cursor < lo:
                pieces.append(self._members[cursor:lo])
            pieces.append(new)
            cursor = hi
        if cursor < self._members.size:
            pieces.append(self._members[cursor:])
        members = (
            np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        )
        return RRCollection(members, indptr, self._num_nodes)

    # ------------------------------------------------------------------
    # Sequence protocol — list[np.ndarray] compatibility
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_sets

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self.num_sets)
            if step != 1:
                return [self[i] for i in range(start, stop, step)]
            if start == 0:
                return self.truncated(stop)
            counts = np.diff(self._indptr[start:stop + 1])
            indptr = np.zeros(counts.size + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            members = self._members[self._indptr[start]:self._indptr[stop]]
            return RRCollection(members.copy(), indptr, self._num_nodes)
        idx = int(index)
        if idx < 0:
            idx += self.num_sets
        if not (0 <= idx < self.num_sets):
            raise IndexError(
                f"set index {index} outside [0, {self.num_sets})"
            )
        return self._members[self._indptr[idx]:self._indptr[idx + 1]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RRCollection(sets={self.num_sets}, "
            f"members={self.total_members}, n={self._num_nodes})"
        )
