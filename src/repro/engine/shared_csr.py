"""Zero-copy graph transport for the sampling pool.

Pool fan-out used to pickle the whole :class:`~repro.graphs.tag_graph.TagGraph`
into every shard task: six int64 CSR arrays plus the per-tag probability
table, serialized and copied once per shard per attempt. This module
replaces that with *named* shared storage — the parent publishes the CSR
structure once, tasks carry a tiny picklable handle, and every worker
maps the same physical pages read-only:

* :class:`SharedCSR` — owns the backing store for one graph's CSR
  structure (``fwd_indptr``, ``fwd_edges``, ``rev_indptr``,
  ``rev_edges``, ``src``, ``dst``). Small graphs live in POSIX shared
  memory (:mod:`multiprocessing.shared_memory`); graphs whose arrays
  exceed :data:`SPILL_THRESHOLD_BYTES` spill to a ``numpy.memmap`` file
  when a spill directory is configured, so graphs larger than RAM can
  still fan out (the kernel pages them on demand).
* :class:`CSRGraphHandle` — the frozen, picklable address of a
  :class:`SharedCSR`. ``handle.attach()`` in any process returns a
  :class:`CSRGraphView`; attachments are cached per process, so a
  worker maps each graph exactly once no matter how many shards it runs.
* :class:`CSRGraphView` — a read-only stand-in exposing the slice of
  the ``TagGraph`` surface the batched kernels consume (``num_nodes``,
  ``num_edges``, ``src``, ``dst``, ``forward_csr``, ``reverse_csr``).
* :class:`SharedProbs` — per-operation transport for the aggregated
  edge-probability vector. Workers *copy* it out on fetch (it is small
  and operation-scoped), so unlinking after the operation leaves no
  dangling mappings behind in the pool.

Lifecycle notes. Pool workers share the parent's ``resource_tracker``
daemon, so a worker re-attaching to a segment is a no-op registration
and exactly one unregister happens — in the creator's unlink. Creation
is tracked in :func:`active_tokens` and every owner carries a
``weakref.finalize`` guard, so even an engine that is never
``close()``-d cannot leak ``/dev/shm`` entries (or spill files) past
garbage collection.
"""

from __future__ import annotations

import os
import tempfile
import weakref
from dataclasses import dataclass

import numpy as np

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - exotic platforms only
    shared_memory = None

#: Arrays past this total size spill to a memmap file instead of POSIX
#: shared memory, provided the owner was given a ``spill_dir``. ``/dev/shm``
#: is RAM-backed, so spilling is what lets a graph bigger than memory
#: still be shared (the OS pages the file in on demand).
SPILL_THRESHOLD_BYTES = 1 << 31

#: 64-byte alignment for every array inside a segment (cache-line sized,
#: and satisfies any numpy dtype alignment requirement).
_ALIGN = 64

#: Tokens (shm names / spill paths) created and not yet unlinked by this
#: process. Tests assert this drains back to empty — a leak here is a
#: leak in ``/dev/shm`` or the spill directory.
_LIVE_TOKENS: set[str] = set()

#: Per-process attachment cache: ``(backend, token) -> (resource, arrays)``.
#: ``resource`` keeps the mapping alive (``SharedMemory`` object or
#: ``np.memmap``); ``arrays`` are read-only views into it.
_ATTACH_CACHE: dict[tuple[str, str], tuple[object, dict[str, np.ndarray]]] = {}


def active_tokens() -> frozenset[str]:
    """Backing-store tokens created by this process and still live."""
    return frozenset(_LIVE_TOKENS)


def _plan_layout(
    arrays: dict[str, np.ndarray],
) -> tuple[int, tuple[tuple[str, int, tuple[int, ...], str], ...]]:
    """Total byte size + per-array ``(name, offset, shape, dtype)`` slots."""
    offset = 0
    slots = []
    for name, arr in arrays.items():
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        slots.append((name, offset, arr.shape, arr.dtype.str))
        offset += arr.nbytes
    return max(offset, 1), tuple(slots)


def _views(
    buf, layout: tuple[tuple[str, int, tuple[int, ...], str], ...],
    writeable: bool = False,
) -> dict[str, np.ndarray]:
    """Array views into ``buf`` following ``layout``."""
    out = {}
    for name, offset, shape, dtype in layout:
        count = int(np.prod(shape, dtype=np.int64))
        view = np.frombuffer(buf, dtype=np.dtype(dtype), count=count,
                             offset=offset).reshape(shape)
        if not writeable:
            view = view.view()
            view.flags.writeable = False
        out[name] = view
    return out


def _attach(
    backend: str, token: str,
    layout: tuple[tuple[str, int, tuple[int, ...], str], ...],
) -> tuple[object, dict[str, np.ndarray]]:
    """Map an existing segment/file; returns ``(resource, views)``."""
    if backend == "mmap":
        mm = np.memmap(token, dtype=np.uint8, mode="r")
        return mm, _views(mm, layout)
    # Note: attaching re-registers the name with the resource tracker on
    # Python < 3.13, but pool workers inherit the *parent's* tracker
    # daemon, whose cache is a set — the re-register is a no-op and the
    # single unregister happens in the creator's unlink. Unregistering
    # here would cancel the creator's registration and desync the
    # tracker (KeyError storms at shutdown).
    shm = shared_memory.SharedMemory(name=token)
    return shm, _views(shm.buf, layout)


def _attach_cached(
    backend: str, token: str,
    layout: tuple[tuple[str, int, tuple[int, ...], str], ...],
) -> dict[str, np.ndarray]:
    """Per-process cached attach: each (backend, token) maps once."""
    key = (backend, token)
    entry = _ATTACH_CACHE.get(key)
    if entry is None:
        entry = _attach(backend, token, layout)
        _ATTACH_CACHE[key] = entry
    return entry[1]


#: Mappings that could not be closed because a caller still holds views
#: into them (e.g. a CSRGraphView kept past unlink). Held here so their
#: ``__del__`` never runs mid-process and raises an unraisable
#: BufferError; the OS reclaims the mappings at process exit.
_ZOMBIE_MAPPINGS: list[object] = []


def _evict(backend: str, token: str) -> None:
    """Drop a cached attachment (creator-side, on unlink)."""
    entry = _ATTACH_CACHE.pop((backend, token), None)
    if entry is None:
        return
    resource, arrays = entry
    arrays.clear()
    if hasattr(resource, "close"):
        try:
            resource.close()
        except BufferError:
            # Someone still holds a view. The backing *name* is gone
            # either way; park the mapping until process exit.
            _ZOMBIE_MAPPINGS.append(resource)


@dataclass(frozen=True)
class PackHandle:
    """Picklable address of one shared array pack.

    ``backend`` is ``"shm"`` or ``"mmap"``; ``token`` is the segment
    name or spill-file path; ``layout`` places each named array inside
    the mapping. Handles are tiny (a few hundred bytes) regardless of
    graph size — that is the whole point.
    """

    backend: str
    token: str
    layout: tuple[tuple[str, int, tuple[int, ...], str], ...]

    def attach(self) -> dict[str, np.ndarray]:
        """Read-only views of the pack's arrays (cached per process)."""
        return _attach_cached(self.backend, self.token, self.layout)

    def fetch_copy(self) -> dict[str, np.ndarray]:
        """Private copies of the pack's arrays; leaves no mapping behind.

        For short-lived packs (per-operation probability vectors):
        attach, copy, release. The caller owns plain arrays, so the
        creator can unlink immediately after the operation without any
        worker holding a stale mapping.
        """
        key = (self.backend, self.token)
        cached = _ATTACH_CACHE.get(key)
        if cached is not None:  # creator process: copy straight out
            return {name: arr.copy() for name, arr in cached[1].items()}
        resource, views = _attach(self.backend, self.token, self.layout)
        out = {name: arr.copy() for name, arr in views.items()}
        views.clear()
        if hasattr(resource, "close"):
            resource.close()
        return out


class SharedArrayPack:
    """Owner of one named shared segment holding several numpy arrays.

    The creating process writes every array once at construction and
    keeps read-only views of its own (registered in the attach cache, so
    in-process ``handle.attach()`` is free). :meth:`unlink` destroys the
    backing store; a ``weakref.finalize`` guard makes that automatic at
    garbage collection for owners that are never closed explicitly.
    """

    def __init__(
        self,
        arrays: dict[str, np.ndarray],
        spill_dir: str | None = None,
        spill_threshold: int | None = None,
    ) -> None:
        arrays = {
            name: np.ascontiguousarray(arr) for name, arr in arrays.items()
        }
        total, layout = _plan_layout(arrays)
        threshold = (
            SPILL_THRESHOLD_BYTES if spill_threshold is None
            else spill_threshold
        )
        if spill_dir is not None and total >= threshold:
            backend = "mmap"
            fd, token = tempfile.mkstemp(suffix=".csrpack", dir=spill_dir)
            os.close(fd)
            resource = np.memmap(token, dtype=np.uint8, mode="r+",
                                 shape=(total,))
            buf = resource
        else:
            if shared_memory is None:  # pragma: no cover - exotic platforms
                raise RuntimeError(
                    "multiprocessing.shared_memory is unavailable; "
                    "configure a spill_dir to use the mmap backend"
                )
            backend = "shm"
            resource = shared_memory.SharedMemory(create=True, size=total)
            token = resource.name
            buf = resource.buf
        for name, view in _views(buf, layout, writeable=True).items():
            np.copyto(view, arrays[name])
        if backend == "mmap":
            resource.flush()
        self.backend = backend
        self.token = token
        self.nbytes = total
        self.handle = PackHandle(backend, token, layout)
        self._resource = resource
        _LIVE_TOKENS.add(token)
        # Creator-side attach-cache entry: in-process handle.attach()
        # (serial fallback path) reuses these views instead of remapping.
        _ATTACH_CACHE[(backend, token)] = (
            resource, _views(buf, layout, writeable=False)
        )
        self._finalizer = weakref.finalize(
            self, _unlink_backing, backend, token
        )

    def unlink(self) -> None:
        """Destroy the backing store (idempotent)."""
        if self._finalizer.detach() is None:
            return  # already unlinked
        _evict(self.backend, self.token)
        self._resource = None
        _unlink_backing(self.backend, self.token)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedArrayPack(backend={self.backend!r}, "
            f"token={self.token!r}, nbytes={self.nbytes})"
        )


def _unlink_backing(backend: str, token: str) -> None:
    """Remove the named backing store; module-level for finalizers."""
    _LIVE_TOKENS.discard(token)
    if backend == "mmap":
        try:
            os.unlink(token)
        except OSError:  # pragma: no cover - already gone
            pass
        return
    try:
        seg = shared_memory.SharedMemory(name=token)
    except FileNotFoundError:  # pragma: no cover - already gone
        return
    seg.close()
    seg.unlink()  # shm_unlink + the one balancing tracker unregister


class CSRGraphView:
    """Read-only graph stand-in over attached CSR arrays.

    Duck-types the slice of :class:`~repro.graphs.tag_graph.TagGraph`
    that the batched kernels touch: ``num_nodes``, ``num_edges``,
    ``src``, ``dst``, ``forward_csr()``, ``reverse_csr()`` and the
    degree helpers. Tag-conditional probability aggregation is *not*
    here — probability vectors travel separately (:class:`SharedProbs`),
    already aggregated by the parent.
    """

    __slots__ = ("_arrays", "_num_nodes", "_num_edges")

    def __init__(
        self, arrays: dict[str, np.ndarray], num_nodes: int, num_edges: int
    ) -> None:
        self._arrays = arrays
        self._num_nodes = int(num_nodes)
        self._num_edges = int(num_edges)

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def src(self) -> np.ndarray:
        return self._arrays["src"]

    @property
    def dst(self) -> np.ndarray:
        return self._arrays["dst"]

    def forward_csr(self) -> tuple[np.ndarray, np.ndarray]:
        return self._arrays["fwd_indptr"], self._arrays["fwd_edges"]

    def reverse_csr(self) -> tuple[np.ndarray, np.ndarray]:
        return self._arrays["rev_indptr"], self._arrays["rev_edges"]

    def out_degrees(self) -> np.ndarray:
        return np.diff(self._arrays["fwd_indptr"])

    def in_degrees(self) -> np.ndarray:
        return np.diff(self._arrays["rev_indptr"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraphView(num_nodes={self._num_nodes}, "
            f"num_edges={self._num_edges})"
        )


@dataclass(frozen=True)
class CSRGraphHandle:
    """Picklable address of a :class:`SharedCSR` (travels in shard tasks)."""

    pack: PackHandle
    num_nodes: int
    num_edges: int

    def attach(self) -> CSRGraphView:
        """Map (or reuse this process's mapping of) the shared CSR."""
        return CSRGraphView(self.pack.attach(), self.num_nodes,
                            self.num_edges)


class SharedCSR:
    """One graph's CSR structure, published for zero-copy pool fan-out."""

    def __init__(self, graph, spill_dir: str | None = None,
                 spill_threshold: int | None = None) -> None:
        fwd_indptr, fwd_edges = graph.forward_csr()
        rev_indptr, rev_edges = graph.reverse_csr()
        self._pack = SharedArrayPack(
            {
                "fwd_indptr": fwd_indptr,
                "fwd_edges": fwd_edges,
                "rev_indptr": rev_indptr,
                "rev_edges": rev_edges,
                "src": graph.src,
                "dst": graph.dst,
            },
            spill_dir=spill_dir,
            spill_threshold=spill_threshold,
        )
        self.handle = CSRGraphHandle(
            self._pack.handle, graph.num_nodes, graph.num_edges
        )

    @property
    def backend(self) -> str:
        return self._pack.backend

    @property
    def nbytes(self) -> int:
        return self._pack.nbytes

    def unlink(self) -> None:
        """Destroy the backing store (idempotent)."""
        self._pack.unlink()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedCSR(backend={self.backend!r}, nbytes={self.nbytes}, "
            f"num_nodes={self.handle.num_nodes}, "
            f"num_edges={self.handle.num_edges})"
        )


@dataclass(frozen=True)
class ProbsHandle:
    """Picklable address of one operation's edge-probability vector."""

    pack: PackHandle

    def fetch(self) -> np.ndarray:
        """A private (owned) copy of the probability vector."""
        return self.pack.fetch_copy()["probs"]


class SharedProbs:
    """Operation-scoped shared transport for the aggregated probabilities.

    Created per sampling operation, unlinked in a ``finally`` as soon as
    the operation returns. Workers fetch *copies* (see
    :meth:`PackHandle.fetch_copy`), so nothing in the pool outlives the
    unlink.
    """

    def __init__(self, edge_probs: np.ndarray,
                 spill_dir: str | None = None) -> None:
        self._pack = SharedArrayPack(
            {"probs": np.asarray(edge_probs, dtype=np.float64)},
            spill_dir=spill_dir,
        )
        self.handle = ProbsHandle(self._pack.handle)

    def unlink(self) -> None:
        self._pack.unlink()


@dataclass(frozen=True)
class TagGraphHandle:
    """Picklable address of a :class:`SharedTagGraph`.

    Unlike :class:`CSRGraphHandle` (structure only, kernels consume a
    pre-aggregated probability vector), this handle reconstructs a full
    :class:`~repro.graphs.tag_graph.TagGraph` — edge endpoints *and* the
    per-tag conditional probability table — so an attaching process can
    run tag aggregation, serving, and sketch builds of its own. The
    shard-service workers attach one of these instead of unpickling a
    private graph copy apiece.
    """

    pack: PackHandle
    num_nodes: int
    tags: tuple[str, ...]

    def attach(self):
        """A :class:`TagGraph` over this process's shared mapping.

        The edge-endpoint and tag-table arrays are zero-copy read-only
        views into the shared segment (``TagGraph.__init__`` keeps
        int64/float64 inputs as-is); only the CSR index, rebuilt at
        construction, is private to the attaching process.
        """
        from repro.graphs.tag_graph import TagGraph

        views = self.pack.attach()
        tag_probs = {
            tag: (views[f"tag.{i}.ids"], views[f"tag.{i}.probs"])
            for i, tag in enumerate(self.tags)
        }
        return TagGraph(self.num_nodes, views["src"], views["dst"],
                        tag_probs)


class SharedTagGraph:
    """A whole tag graph published once for multi-process serving.

    The owner (the shard router) packs ``src``/``dst`` plus every tag's
    ``(edge_ids, probs)`` pair into one named segment; each worker
    process attaches by token and rebuilds a :class:`TagGraph` whose
    edge arrays alias the shared pages. Creator-owned lifecycle, same
    as :class:`SharedCSR`: workers never unlink, a SIGKILLed worker
    leaks nothing, and the owner's ``unlink()`` (or its
    ``weakref.finalize`` backstop) destroys the one backing store.
    """

    def __init__(self, graph, spill_dir: str | None = None,
                 spill_threshold: int | None = None) -> None:
        arrays: dict[str, np.ndarray] = {
            "src": graph.src, "dst": graph.dst,
        }
        tags = tuple(graph.tags)
        for i, tag in enumerate(tags):
            ids, probs = graph.tag_edges(tag)
            arrays[f"tag.{i}.ids"] = ids
            arrays[f"tag.{i}.probs"] = probs
        self._pack = SharedArrayPack(
            arrays, spill_dir=spill_dir, spill_threshold=spill_threshold
        )
        self.handle = TagGraphHandle(
            self._pack.handle, graph.num_nodes, tags
        )

    @property
    def backend(self) -> str:
        return self._pack.backend

    @property
    def nbytes(self) -> int:
        return self._pack.nbytes

    def unlink(self) -> None:
        """Destroy the backing store (idempotent)."""
        self._pack.unlink()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedTagGraph(backend={self.backend!r}, "
            f"nbytes={self.nbytes}, num_nodes={self.handle.num_nodes}, "
            f"num_tags={len(self.handle.tags)})"
        )


def resolve_graph(graph_ref):
    """A usable graph from a task argument: pass-through or attach."""
    if isinstance(graph_ref, CSRGraphHandle):
        return graph_ref.attach()
    return graph_ref


def resolve_edge_probs(probs_ref) -> np.ndarray:
    """A usable probability vector from a task argument."""
    if isinstance(probs_ref, ProbsHandle):
        return probs_ref.fetch()
    return probs_ref
