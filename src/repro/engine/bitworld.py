"""Bit-parallel possible-world kernels: 64 worlds per ``uint64`` lane.

Every sampling primitive in this repo asks the same question many times
over: *in a random possible world, who reaches whom?* The scalar and
frontier-batched kernels answer it one world at a time. The kernels
here pack **64 independent possible worlds into one machine word**: bit
``b`` of ``mask[v]`` means "node ``v`` is reached in world ``b`` of the
current block", so a single bitwise OR advances 64 BFS traversals at
once and a single popcount accounts 64 sample sizes.

Coin model
----------
Edge coins are *counter-based*: world ``(block, lane)`` decides edge
``e`` by hashing ``((block * m + e) << 6) | lane`` with a SplitMix64
finalizer keyed by a per-shard stream key. The comparison
``(hash >> 11) < ceil(p * 2**53)`` is exactly equivalent to drawing a
53-bit uniform float ``u`` and testing ``u < p`` (including ``p == 1``),
so every coin is a pure function of ``(key, block, edge, lane)``. That
buys three properties the engine's determinism contract needs:

* **replayability** — :func:`world_edge_mask` reconstructs any single
  world's full edge mask, so the scalar fixed-world oracle
  (:func:`repro.sketch.rr_sets.rr_set_from_edge_mask`) can verify any
  lane of any block bit-for-bit;
* **order independence** — lanes can be evaluated in any grouping
  (dense blocks, sparse strips, re-batched block ranges) without
  changing a single coin;
* **worker invariance** — the key comes from the shard's
  ``SeedSequence`` stream, so pooled and serial execution agree.

Root-grouped packing
--------------------
Targeted RR sampling draws roots from the (small) target set, so many
samples share a root. Slots are assigned to samples in stable
root-sorted order, which packs same-root samples into the same 64-world
block: the 64 traversals of a block then overlap heavily and the
frontier collapses from ``O(samples)`` to ``O(distinct (block, node))``
rows. The slot permutation is deterministic (stable sort), recorded via
:func:`rr_world_of_sample`, and inverted during collection so sample
``i`` keeps its drawn root.
"""

from __future__ import annotations

import numpy as np

U64 = np.uint64
_ONE = U64(1)
_FULL = U64(0xFFFFFFFFFFFFFFFF)
_SPLITMIX_C1 = U64(0xBF58476D1CE4E5B9)
_SPLITMIX_C2 = U64(0x94D049BB133111EB)
_GOLDEN = U64(0x9E3779B97F4A7C15)
_LANES64 = np.arange(64, dtype=np.uint64)

#: Mean active lanes per frontier row above which the cascade kernel
#: evaluates all 64 lane coins of a row in one dense 2-D pass instead
#: of stripping lanes one bit at a time.
DENSE_LANE_THRESHOLD = 8.0

#: Pairs-per-row ratio above which an RR level expands in row space
#: (shared edge gather per (block, node) row) instead of pair space.
ROW_MODE_LANES = 16.0

#: Mean candidate lanes per edge row above which row-space levels hash
#: all 64 lanes densely rather than extracting active lanes first.
ROW_DENSE_LANES = 32.0

#: Soft cap on the ``blocks * nodes`` uint64 visited words of one block
#: batch (32 MiB), mirroring ``frontier.DEFAULT_BATCH_CELLS``.
DEFAULT_BLOCK_CELLS = 1 << 22


def mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer (vectorized); the coin hash."""
    z = x * _GOLDEN
    z ^= z >> U64(30)
    z *= _SPLITMIX_C1
    z ^= z >> U64(27)
    z *= _SPLITMIX_C2
    return z ^ (z >> U64(31))


def coin_thresholds(edge_probs: np.ndarray) -> np.ndarray:
    """Packed Bernoulli thresholds: coin succeeds iff ``hash>>11 < thr``.

    ``thr = ceil(p * 2**53)`` makes the integer comparison exactly
    equivalent to ``(hash >> 11) * 2**-53 < p`` — the standard 53-bit
    uniform-float draw — for every ``p`` in ``[0, 1]``.
    """
    return np.ceil(
        np.asarray(edge_probs, dtype=np.float64) * float(1 << 53)
    ).astype(np.uint64)


def live_csr(
    indptr: np.ndarray, csr_edges: np.ndarray, edge_probs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Filter a CSR adjacency down to edges with nonzero probability.

    Tag-conditioned probabilities zero out most edges (a query activates
    few tags), so traversals that pre-drop dead edges gather far fewer
    candidates per level. Returns ``(indptr', edges')`` over the same
    node ids with original edge ids preserved.
    """
    keep = edge_probs[csr_edges] > 0.0
    cumulative = np.zeros(csr_edges.size + 1, dtype=np.int64)
    np.cumsum(keep, out=cumulative[1:])
    return cumulative[indptr], csr_edges[keep]


def world_edge_mask(
    num_edges: int, thr53: np.ndarray, key: int, block: int, lane: int
) -> np.ndarray:
    """Full edge-existence mask of one world — the scalar oracle hook.

    Evaluates the same counter hash the kernels use, for every edge of
    world ``(block, lane)``; feeding the result to
    :func:`repro.sketch.rr_sets.rr_set_from_edge_mask` must reproduce
    the bit-parallel kernel's membership for that world exactly.
    """
    eids = np.arange(num_edges, dtype=np.int64)
    ctr = (
        (np.int64(block) * num_edges + eids).astype(np.uint64) << U64(6)
    ) | U64(lane)
    z = mix64(ctr ^ U64(key))
    return (z >> U64(11)) < thr53


def rr_world_of_sample(
    roots: np.ndarray, sample: int, num_nodes: int
) -> tuple[int, int]:
    """``(block, lane)`` world coordinates of one RR sample.

    Inverts the root-grouped slot assignment of :func:`bit_rr_members`
    for oracle checks: sample ``i``'s RR set was traversed in this
    world.
    """
    slot_order = _stable_argsort(np.asarray(roots, dtype=np.int64), num_nodes)
    slot = int(np.flatnonzero(slot_order == sample)[0])
    return slot >> 6, slot & 63


def _stable_argsort(values: np.ndarray, bound: int) -> np.ndarray:
    """Stable argsort, routed through int16 radix sort when values fit.

    numpy's ``kind="stable"`` picks an O(n) radix sort only for dtypes
    up to 16 bits (wider ints fall back to timsort, ~10x slower); shard
    sizes and node counts on the evaluation graphs fit comfortably.
    """
    if 0 <= bound <= 32767:
        return np.argsort(values.astype(np.int16), kind="stable")
    return np.argsort(values, kind="stable")


def _group_starts(sorted_keys: np.ndarray) -> np.ndarray:
    """First index of each run of equal values in a sorted key array."""
    boundary = np.empty(sorted_keys.size, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    return np.flatnonzero(boundary)


def _block_batches(num_blocks: int, num_nodes: int) -> list[tuple[int, int]]:
    """Split blocks into ranges whose visited words stay cache-sized."""
    per = max(1, DEFAULT_BLOCK_CELLS // max(num_nodes, 1))
    return [
        (lo, min(lo + per, num_blocks)) for lo in range(0, num_blocks, per)
    ]


_I32_MAX = (1 << 31) - 1


def _bit_rr_block_range(
    num_nodes: int,
    block_stride: np.uint64,
    rev_indptr: np.ndarray,
    rev_parent: np.ndarray,
    rev_thr: np.ndarray,
    rev_ctr: np.ndarray,
    slot_lo: int,
    slots: np.ndarray,
    slot_roots: np.ndarray,
    key: np.uint64,
    node_bits: int,
    pack_dtype: type,
    slot_chunks: list[np.ndarray],
    node_chunks: list[np.ndarray],
) -> None:
    """Reverse-BFS one contiguous block range; append (slot, node) pairs.

    The frontier is a pair of (slot, node) arrays — slots carry their
    global 64-world coordinates so coin counters are batch-invariant —
    while the visited state is one uint64 lane-mask per (block, node).
    Each level gathers the in-edges of every frontier pair, draws the
    pair's single lane coin, masks out already-visited worlds, and
    canonicalizes survivors via one packed ``(block, node, lane)`` sort
    that deduplicates, groups the visited-OR scatter, and fixes the
    emission order in a single pass.

    Index arrays arrive in the narrowest safe dtype (int32 when slots,
    nodes, and per-batch visited cells all fit) — the level loop is
    memory-bound, so halving index width buys real throughput.
    """
    idx = slots.dtype
    n_idx = idx.type(num_nodes)
    block_lo = slot_lo >> 6
    blocks_here = ((int(slots[-1]) >> 6) - block_lo) + 1
    visited = np.zeros(blocks_here * num_nodes, dtype=np.uint64)
    node_mask = (1 << node_bits) - 1

    def absorb(
        packed: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fold a sorted canonical (block, node, lane) level into state.

        One sorted pass deduplicates within-level repeats, groups the
        visited OR-scatter, and fixes a deterministic emission order;
        returns the next frontier in both pair form (slot, node) and
        row form (block, node, lane-mask) so the loop can pick the
        cheaper representation per level.
        """
        row_key = packed >> 6
        boundary = np.empty(packed.size, dtype=bool)
        boundary[0] = True
        np.not_equal(packed[1:], packed[:-1], out=boundary[1:])
        unique = np.flatnonzero(boundary)
        if unique.size < packed.size:
            packed = packed[unique]
            row_key = row_key[unique]
        group = _group_starts(row_key)
        group_key = row_key[group]
        masks = np.bitwise_or.reduceat(
            _ONE << (packed & 63).astype(np.uint64), group
        )
        row_block = (group_key >> node_bits).astype(idx, copy=False)
        row_node = (group_key & node_mask).astype(idx, copy=False)
        visited[(row_block - block_lo) * n_idx + row_node] |= masks
        next_node = (row_key & node_mask).astype(idx, copy=False)
        next_slot = (
            ((row_key >> node_bits) << 6) | (packed & 63)
        ).astype(idx, copy=False)
        slot_chunks.append(next_slot)
        node_chunks.append(next_node)
        return next_slot, next_node, row_block, row_node, masks

    # Seed lanes grouped by (block, root); ghost lanes of a ragged tail
    # simply never get a bit and can never activate.
    init_key = ((slots >> 6) - block_lo) * n_idx + slot_roots
    starts = _group_starts(init_key)
    lane_bit = _ONE << (slots & 63).astype(np.uint64)
    init_mask = np.bitwise_or.reduceat(lane_bit, starts)
    visited[init_key[starts]] = init_mask
    slot_chunks.append(slots)
    node_chunks.append(slot_roots)

    frontier_slot = slots
    frontier_node = slot_roots
    row_block = slots[starts] >> 6
    row_node = slot_roots[starts]
    row_mask = init_mask

    while frontier_slot.size:
        if frontier_slot.size >= row_node.size * ROW_MODE_LANES:
            # Row space: lanes of a (block, node) row share their whole
            # edge list, so lane-dense levels expand each row once and
            # draw all lane coins per edge row — a fraction of the
            # array traffic of the pair loop. Root-grouped packing
            # makes the first levels extremely lane-dense.
            edge_start = rev_indptr[row_node]
            degrees = rev_indptr[row_node + 1] - edge_start
            total = int(degrees.sum())
            if total == 0:
                return
            level_dtype = idx if total <= _I32_MAX else np.dtype(np.int64)
            cumulative = np.cumsum(degrees, dtype=level_dtype)
            positions = np.arange(total, dtype=level_dtype) + np.repeat(
                edge_start - (cumulative - degrees), degrees
            )
            er_parent = rev_parent[positions]
            er_block = np.repeat(row_block, degrees)
            cand = np.repeat(row_mask, degrees) & ~visited[
                (er_block - block_lo) * n_idx + er_parent
            ]
            ebase = (
                er_block.astype(np.uint64) * block_stride
                + rev_ctr[positions]
            )
            er_thr = rev_thr[positions]
            if float(np.bitwise_count(cand).mean()) >= ROW_DENSE_LANES:
                # Near-full rows: hashing all 64 lanes in one 2-D pass
                # beats extracting the active ones first.
                live = _dense_coins(ebase, er_thr, cand, key)
                alive = np.flatnonzero(live)
                if alive.size == 0:
                    return
                bits = np.unpackbits(
                    live[alive, None].view(np.uint8),
                    axis=1,
                    bitorder="little",
                )
                bit_row, bit_lane = np.nonzero(bits)
                row = alive[bit_row]
                lane_col = bit_lane
            else:
                # Moderate density: expand candidate lanes to pairs and
                # hash exactly one coin per active (edge row, lane).
                cbits = np.unpackbits(
                    cand[:, None].view(np.uint8), axis=1, bitorder="little"
                )
                crow, clane = np.nonzero(cbits)
                z = mix64((ebase[crow] | clane.astype(np.uint64)) ^ key)
                ok = np.flatnonzero((z >> U64(11)) < er_thr[crow])
                if ok.size == 0:
                    return
                row = crow[ok]
                lane_col = clane[ok]
            packed = (
                (er_block[row].astype(pack_dtype, copy=False) << node_bits)
                | er_parent[row]
            ) << 6 | lane_col.astype(pack_dtype, copy=False)
        else:
            # Pair space: one coin per (slot, node) frontier pair edge;
            # cheapest once lane masks thin out.
            edge_start = rev_indptr[frontier_node]
            degrees = rev_indptr[frontier_node + 1] - edge_start
            total = int(degrees.sum())
            if total == 0:
                return
            level_dtype = idx if total <= _I32_MAX else np.dtype(np.int64)
            cumulative = np.cumsum(degrees, dtype=level_dtype)
            positions = np.arange(total, dtype=level_dtype) + np.repeat(
                edge_start - (cumulative - degrees), degrees
            )
            parent = rev_parent[positions]
            edge_slot = np.repeat(frontier_slot, degrees)
            edge_block = edge_slot >> 6
            lane = (edge_slot & 63).astype(np.uint64)
            visited_key = (edge_block - block_lo) * n_idx + parent
            # One fused filter: the lane's counter coin must land AND
            # the world must not have reached the parent already.
            z = mix64(
                (
                    edge_block.astype(np.uint64) * block_stride
                    + (rev_ctr[positions] | lane)
                )
                ^ key
            )
            good = ((z >> U64(11)) < rev_thr[positions]) & (
                (visited[visited_key] >> lane) & _ONE == 0
            )
            hit = np.flatnonzero(good)
            if hit.size == 0:
                return
            packed = (
                (edge_block[hit].astype(pack_dtype, copy=False) << node_bits)
                | parent[hit]
            ) << 6 | (edge_slot[hit] & 63)
        packed.sort()
        frontier_slot, frontier_node, row_block, row_node, row_mask = absorb(
            packed
        )


def bit_rr_members(
    num_nodes: int,
    num_edges: int,
    rev_indptr: np.ndarray,
    rev_edges: np.ndarray,
    src: np.ndarray,
    roots: np.ndarray,
    thr53: np.ndarray,
    key: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample one RR set per root across 64-world blocks; flat CSR out.

    ``rev_indptr``/``rev_edges`` should be the :func:`live_csr`-filtered
    reverse adjacency. Returns ``(members, indptr)`` where sample ``i``
    of ``roots`` owns ``members[indptr[i]:indptr[i+1]]`` (root first,
    level order). Deterministic in ``(roots, thr53, key)`` alone —
    block batching and worker layout cannot change a bit.
    """
    S = int(roots.size)
    if S == 0:
        return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    key = U64(key)
    node_bits = max(int(num_nodes - 1).bit_length(), 1)
    num_blocks = (S + 63) // 64
    blocks_per_batch = max(1, DEFAULT_BLOCK_CELLS // max(num_nodes, 1))
    use32 = (
        S <= _I32_MAX
        and num_nodes <= _I32_MAX
        and min(blocks_per_batch, num_blocks) * num_nodes <= _I32_MAX
    )
    idx = np.dtype(np.int32) if use32 else np.dtype(np.int64)
    pack_dtype = (
        np.int32
        if num_blocks << (node_bits + 6) <= _I32_MAX
        else np.int64
    )
    # Edge-aligned pre-gathers: the level loop then indexes each live
    # edge position once instead of chaining edge-id lookups per level.
    rev_indptr = rev_indptr.astype(idx, copy=False)
    rev_parent = src[rev_edges].astype(idx, copy=False)
    rev_thr = thr53[rev_edges]
    rev_ctr = rev_edges.astype(np.uint64) << U64(6)
    block_stride = U64(num_edges) << U64(6)

    slot_order = _stable_argsort(
        np.asarray(roots, dtype=np.int64), num_nodes
    )  # slot -> sample id (root-grouped packing)
    slot_roots = np.asarray(roots, dtype=np.int64)[slot_order].astype(
        idx, copy=False
    )

    slot_chunks: list[np.ndarray] = []
    node_chunks: list[np.ndarray] = []
    all_slots = np.arange(S, dtype=idx)
    for block_lo, block_hi in _block_batches(num_blocks, num_nodes):
        lo = block_lo * 64
        hi = min(block_hi * 64, S)
        _bit_rr_block_range(
            num_nodes, block_stride, rev_indptr, rev_parent, rev_thr,
            rev_ctr, lo, all_slots[lo:hi], slot_roots[lo:hi], key,
            node_bits, pack_dtype, slot_chunks, node_chunks,
        )

    slots = np.concatenate(slot_chunks)
    nodes = np.concatenate(node_chunks)
    samples = slot_order[slots]
    order = _stable_argsort(samples, S - 1)
    members = nodes[order]
    counts = np.bincount(samples, minlength=S)
    indptr = np.zeros(S + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return members, indptr


def _dense_coins(
    ebase: np.ndarray, thr: np.ndarray, cand: np.ndarray, key: np.uint64
) -> np.ndarray:
    """All-64-lane coin evaluation per row (dense frontiers)."""
    z = mix64((ebase[:, None] | _LANES64[None, :]) ^ key)
    succ = (z >> U64(11)) < thr[:, None]
    live = np.packbits(succ, axis=1, bitorder="little").view(np.uint64)
    return live.ravel() & cand


def _sparse_coins(
    ebase: np.ndarray, thr: np.ndarray, cand: np.ndarray, key: np.uint64
) -> np.ndarray:
    """Lowest-bit-stripping coin evaluation (sparse frontiers).

    Each pass evaluates one lane per row and drops exhausted rows, so
    total hash work equals the number of active (row, lane) pairs.
    """
    live = np.zeros(cand.size, dtype=np.uint64)
    active = cand
    rows = None
    eb = ebase
    th = thr
    while True:
        low = active & (~active + _ONE)
        lane = np.bitwise_count(low - _ONE).astype(np.uint64)
        z = mix64((eb | lane) ^ key)
        succ = (z >> U64(11)) < th
        contribution = low * succ.astype(np.uint64)
        if rows is None:
            live |= contribution
        else:
            live[rows] |= contribution
        active = active ^ low
        remaining = np.flatnonzero(active)
        if remaining.size == 0:
            return live
        active = active[remaining]
        eb = eb[remaining]
        th = th[remaining]
        rows = remaining if rows is None else rows[remaining]


def bit_cascade_counts(
    num_nodes: int,
    num_edges: int,
    fwd_indptr: np.ndarray,
    fwd_edges: np.ndarray,
    dst: np.ndarray,
    seed_arr: np.ndarray,
    num_samples: int,
    target_arr: np.ndarray,
    thr53: np.ndarray,
    key: int,
) -> np.ndarray:
    """IC cascades across 64-world blocks; per-sample target popcounts.

    All worlds of a block share the seed set, so frontier lane masks
    stay dense and each (node, block) row advances 64 cascades per OR.
    Target accounting unpacks the final lane masks over target rows and
    popcount-sums per lane. Ghost lanes of the ragged tail block start
    inactive and stay inactive.
    """
    if num_samples <= 0 or seed_arr.size == 0:
        return np.zeros(max(num_samples, 0), dtype=np.int64)
    key = U64(key)
    n64 = np.int64(num_nodes)
    m64 = np.int64(num_edges)
    n = int(num_nodes)
    num_blocks = (num_samples + 63) // 64

    counts = np.empty(num_samples, dtype=np.int64)
    for block_lo, block_hi in _block_batches(num_blocks, num_nodes):
        blocks_here = block_hi - block_lo
        visited = np.zeros(blocks_here * n, dtype=np.uint64)
        block_masks = np.full(blocks_here, _FULL, dtype=np.uint64)
        tail = num_samples - (num_blocks - 1) * 64
        if block_hi == num_blocks and tail < 64:
            block_masks[-1] = (_ONE << U64(tail)) - _ONE
        local = np.arange(blocks_here, dtype=np.int64)
        frontier_key = (local[:, None] * n64 + seed_arr[None, :]).ravel()
        frontier_mask = np.repeat(block_masks, seed_arr.size)
        visited[frontier_key] = frontier_mask
        frontier_node = frontier_key % n64
        frontier_block = frontier_key // n64
        while frontier_node.size:
            edge_start = fwd_indptr[frontier_node]
            degrees = fwd_indptr[frontier_node + 1] - edge_start
            total = int(degrees.sum())
            if total == 0:
                break
            cumulative = np.cumsum(degrees)
            positions = np.arange(total, dtype=np.int64) + np.repeat(
                edge_start - (cumulative - degrees), degrees
            )
            eids = fwd_edges[positions]
            edge_block = np.repeat(frontier_block, degrees)
            edge_mask = np.repeat(frontier_mask, degrees)
            child = dst[eids]
            child_key = edge_block * n64 + child
            cand = edge_mask & ~visited[child_key]
            keep = cand != 0
            if not keep.all():
                eids = eids[keep]
                cand = cand[keep]
                edge_block = edge_block[keep]
                child = child[keep]
            if eids.size == 0:
                break
            # Coin counters use the *global* block id so batching over
            # block ranges cannot change any world's coins.
            ebase = (
                (edge_block + block_lo) * m64 + eids
            ).astype(np.uint64) << U64(6)
            thr = thr53[eids]
            if float(np.bitwise_count(cand).mean()) >= DENSE_LANE_THRESHOLD:
                live = _dense_coins(ebase, thr, cand, key)
            else:
                live = _sparse_coins(ebase, thr, cand, key)
            alive = live != 0
            if not alive.any():
                break
            if not alive.all():
                edge_block = edge_block[alive]
                child = child[alive]
                live = live[alive]
            if num_nodes <= 32767 and blocks_here <= 32767:
                o1 = np.argsort(child.astype(np.int16), kind="stable")
                o2 = np.argsort(
                    edge_block[o1].astype(np.int16), kind="stable"
                )
                order = o1[o2]
            else:
                order = np.argsort(edge_block * n64 + child)
            sorted_key = (edge_block * n64 + child)[order]
            group = _group_starts(sorted_key)
            new_mask = np.bitwise_or.reduceat(live[order], group)
            new_key = sorted_key[group]
            new_mask &= ~visited[new_key]
            fresh = new_mask != 0
            if not fresh.all():
                new_key = new_key[fresh]
                new_mask = new_mask[fresh]
            if new_key.size == 0:
                break
            visited[new_key] |= new_mask
            frontier_key = new_key
            frontier_mask = new_mask
            frontier_node = frontier_key % n64
            frontier_block = frontier_key // n64
        # Popcount accounting: lane b of block k is sample k*64+b.
        target_masks = np.ascontiguousarray(
            visited.reshape(blocks_here, n)[:, target_arr]
        )
        bits = np.unpackbits(
            target_masks.reshape(-1)[:, None].view(np.uint8),
            axis=1,
            bitorder="little",
        ).reshape(blocks_here, target_arr.size, 64)
        lane_counts = bits.sum(axis=1, dtype=np.int64).reshape(-1)
        lo = block_lo * 64
        hi = min(block_hi * 64, num_samples)
        counts[lo:hi] = lane_counts[: hi - lo]
    return counts
