"""Shard-granular checkpoint/resume for sampling runs.

A θ-sized sampling campaign is a deterministic function of the master
seed, so a checkpoint does not need to freeze process state — it only
needs (a) the flat arrays produced by the contiguous *done-prefix* of
shards and (b) enough of the run's identity to prove a resumed run is
replaying the same computation. The resume model is therefore
*deterministic replay with a memo cache*: a restarted session replays
its operations in order; each engine-level sampling operation carries a
monotonically increasing ``op`` index and a **signature** (operation
kind, sample counts, shard plan, engine mode, and a digest of the
master RNG state at the operation's start). Operations whose checkpoint
signature matches load instantly from disk; a partially checkpointed
operation resumes from its last done-prefix; everything else is
computed fresh. Because shard streams come from the ``SeedSequence``
spawn tree, the spliced run is bit-identical to an uninterrupted one —
the kill-and-resume tests assert exactly that.

Signature mismatches (different seed, different θ, different shard
size) are treated as "someone else's checkpoint": silently ignored and
overwritten, never an error. Writes are atomic (tmp file +
``os.replace``), so a SIGKILL mid-write leaves the previous checkpoint
intact.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.exceptions import CheckpointError, ConfigurationError


def rng_state_digest(rng: np.random.Generator) -> str:
    """Short stable digest of a generator's full state.

    Two generators with equal digests produce identical futures, which
    is what makes a matching checkpoint provably safe to splice in.
    """
    state = rng.bit_generator.state
    payload = json.dumps(state, sort_keys=True, default=int)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


class CheckpointManager:
    """Reads and writes per-operation shard checkpoints in a directory.

    Parameters
    ----------
    directory:
        Checkpoint directory; created on first write.
    resume:
        When ``False`` (a fresh run) existing checkpoints are never
        *loaded* — only written — so stale state cannot leak into a run
        that did not ask for it. ``--resume`` flips this on.
    every:
        Write cadence: flush when the done-prefix has advanced by at
        least this many shards since the last write (forced flushes —
        interrupts, run completion — ignore the cadence).
    """

    def __init__(
        self, directory: str | os.PathLike, resume: bool = False,
        every: int = 4,
    ) -> None:
        if every < 1:
            raise ConfigurationError(
                f"checkpoint cadence 'every' must be >= 1, got {every}"
            )
        self.directory = Path(directory)
        self.resume = bool(resume)
        self.every = int(every)
        self._last_flushed: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def op_path(self, op_index: int) -> Path:
        """File path of operation ``op_index``'s checkpoint."""
        return self.directory / f"op{int(op_index):05d}.npz"

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    def should_flush(self, op_index: int, shards_done: int,
                     force: bool = False) -> bool:
        """Whether the prefix has advanced enough to warrant a write."""
        last = self._last_flushed.get(op_index, 0)
        if shards_done <= last and not force:
            return False
        return force or shards_done - last >= self.every

    def save(
        self,
        op_index: int,
        signature: dict,
        arrays: dict[str, np.ndarray],
        shards_done: int,
        total_shards: int,
    ) -> None:
        """Atomically write one operation's done-prefix checkpoint."""
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            meta = dict(signature)
            meta["shards_done"] = int(shards_done)
            meta["total_shards"] = int(total_shards)
            path = self.op_path(op_index)
            tmp = path.with_suffix(".npz.tmp")
            payload = {
                "__meta__": np.frombuffer(
                    json.dumps(meta, sort_keys=True).encode("utf-8"),
                    dtype=np.uint8,
                ),
            }
            payload.update(arrays)
            with open(tmp, "wb") as handle:
                np.savez(handle, **payload)
            os.replace(tmp, path)
            self._last_flushed[op_index] = int(shards_done)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint for op {op_index} under "
                f"{self.directory}: {exc}"
            ) from exc

    def load(
        self, op_index: int, signature: dict
    ) -> tuple[dict[str, np.ndarray], int, int] | None:
        """Load op ``op_index`` if its signature matches.

        Returns ``(arrays, shards_done, total_shards)``, or ``None``
        when resuming is off, the file is missing, unreadable, or was
        written by a different run (signature mismatch).
        """
        if not self.resume:
            return None
        path = self.op_path(op_index)
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
                arrays = {
                    key: data[key] for key in data.files if key != "__meta__"
                }
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None  # corrupt / foreign file: recompute from scratch
        shards_done = int(meta.pop("shards_done", 0))
        total_shards = int(meta.pop("total_shards", 0))
        if meta != dict(signature):
            return None
        self._last_flushed[op_index] = shards_done
        return arrays, shards_done, total_shards

    def clear(self) -> None:
        """Delete every checkpoint file in the directory."""
        if not self.directory.exists():
            return
        for path in self.directory.glob("op*.npz"):
            path.unlink(missing_ok=True)
        self._last_flushed.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CheckpointManager(directory={str(self.directory)!r}, "
            f"resume={self.resume}, every={self.every})"
        )
