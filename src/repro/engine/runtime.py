"""Fault-tolerant execution layer for shard fan-out.

PR 1's :class:`~repro.engine.parallel.SamplingEngine` made θ-sized
sample campaigns parallel; this module makes them *survivable*. A long
IMM/ITRS run is minutes of embarrassingly parallel shards, and on real
machines workers get OOM-killed, pools break, shards hang, and
operators hit Ctrl-C. The runtime turns each of those from "lose
everything, print a traceback" into a recoverable event:

* **Recovery** — every shard is tracked through a small state machine
  (pending → in flight → done/failed). A transiently failed shard is
  retried with exponential backoff + jitter under a
  :class:`RetryPolicy`; a broken process pool is rebuilt (bounded by
  ``max_pool_rebuilds``), and when the pool is beyond saving the run
  **degrades gracefully** to the in-process serial path and still
  completes.
* **Determinism under failure** — each shard is keyed to a
  ``SeedSequence`` from the master generator's spawn tree, so attempt
  ``j`` of shard ``i`` replays exactly the samples attempt ``0`` would
  have produced. Any retry schedule therefore yields bit-identical
  output; the fault-injection tests assert this property directly.
* **Deadlines & budgets** — a :class:`RunBudget` (wall-clock
  :class:`Deadline`, max samples, max RR memory) is checked between
  shard completions and raises
  :class:`~repro.exceptions.BudgetExceededError` carrying the partial
  result instead of dying.
* **Observability** — a :class:`RunTelemetry` counter block records
  retries, rebuilds, degradations and checkpoint activity so failures
  are visible in result objects and CLI summaries, not silent.

Error classification: :class:`~repro.exceptions.ReproError` (and the
fault harness's ``InjectedPermanentFault``) are *permanent* — they mean
the inputs are wrong and retrying cannot help — and surface immediately
as :class:`~repro.exceptions.ShardFailedError`. Everything else
(``BrokenProcessPool``, ``TimeoutError``, ``OSError``, injected
transients) is *transient* and retried.
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.engine.faults import FaultPlan, InjectedPermanentFault
from repro.exceptions import (
    BudgetExceededError,
    ConfigurationError,
    ReproError,
    ShardFailedError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.parallel import SamplingEngine


# ---------------------------------------------------------------------------
# Policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the runtime fights for a shard before giving up.

    Attributes
    ----------
    max_attempts:
        Total attempts per shard (first run included). ``1`` disables
        retries.
    backoff_base, backoff_factor, backoff_max:
        Attempt ``j`` (0-based retries) sleeps
        ``min(backoff_base * backoff_factor**j, backoff_max)`` seconds
        before rerunning, plus jitter.
    jitter:
        Uniform jitter fraction added to each delay (``0.1`` → up to
        +10%). Jitter only affects *timing*, never results.
    max_pool_rebuilds:
        Broken-pool events tolerated before the run degrades to the
        in-process serial path.
    shard_timeout:
        Optional per-shard wall-clock watchdog (pool mode): a shard in
        flight longer than this is presumed hung, the pool is rebuilt
        and the shard retried. ``None`` disables.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    max_pool_rebuilds: int = 2
    shard_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not (0.0 <= self.jitter <= 1.0):
            raise ConfigurationError(
                f"jitter must lie in [0, 1], got {self.jitter}"
            )
        if self.max_pool_rebuilds < 0:
            raise ConfigurationError("max_pool_rebuilds must be >= 0")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ConfigurationError("shard_timeout must be positive")

    def delay(self, retry_number: int, jitter_rng: random.Random) -> float:
        """Backoff delay (seconds) before retry ``retry_number`` (0-based)."""
        base = min(
            self.backoff_base * self.backoff_factor ** retry_number,
            self.backoff_max,
        )
        return base * (1.0 + self.jitter * jitter_rng.random())


def is_permanent(exc: BaseException) -> bool:
    """Classify an exception: permanent (don't retry) vs transient."""
    return isinstance(exc, (ReproError, InjectedPermanentFault))


# ---------------------------------------------------------------------------
# Deadlines & budgets
# ---------------------------------------------------------------------------


class Deadline:
    """A wall-clock deadline anchored at construction time.

    ``Deadline(None)`` never expires; ``Deadline(30.0)`` expires 30
    seconds after it is created (monotonic clock).
    """

    __slots__ = ("seconds", "_expires_at")

    def __init__(self, seconds: float | None) -> None:
        if seconds is not None and seconds <= 0:
            raise ConfigurationError(
                f"deadline seconds must be positive, got {seconds}"
            )
        self.seconds = seconds
        self._expires_at = (
            None if seconds is None else time.monotonic() + seconds
        )

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    def remaining(self) -> float | None:
        """Seconds left, or ``None`` for a never-expiring deadline."""
        if self._expires_at is None:
            return None
        return self._expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(seconds={self.seconds})"


class RunBudget:
    """Hard limits on one run: wall clock, sample count, RR memory.

    Threaded through the high-level entry points
    (``trs``/``imm``/``itrs``/``greedy_mc``/``estimate_spread``) and
    checked between shard completions; exceeding any limit raises
    :class:`~repro.exceptions.BudgetExceededError` whose ``partial``
    attribute carries the work completed so far. The wall deadline is
    anchored lazily at the first check, so a budget can be built ahead
    of the run it guards.
    """

    def __init__(
        self,
        wall_seconds: float | None = None,
        max_samples: int | None = None,
        max_rr_members: int | None = None,
    ) -> None:
        if max_samples is not None and max_samples <= 0:
            raise ConfigurationError(
                f"max_samples must be positive, got {max_samples}"
            )
        if max_rr_members is not None and max_rr_members <= 0:
            raise ConfigurationError(
                f"max_rr_members must be positive, got {max_rr_members}"
            )
        if wall_seconds is not None and wall_seconds <= 0:
            raise ConfigurationError(
                f"wall_seconds must be positive, got {wall_seconds}"
            )
        self.wall_seconds = wall_seconds
        self.max_samples = max_samples
        self.max_rr_members = max_rr_members
        self.samples_used = 0
        self.rr_members_used = 0
        self._deadline: Deadline | None = None

    def deadline(self) -> Deadline:
        """The (lazily anchored) wall-clock deadline of this budget."""
        if self._deadline is None:
            self._deadline = Deadline(self.wall_seconds)
        return self._deadline

    def check(self, partial: object = None) -> None:
        """Raise :class:`BudgetExceededError` if any limit is exceeded."""
        if self.deadline().expired():
            raise BudgetExceededError("wall_seconds", partial=partial)
        if (
            self.max_samples is not None
            and self.samples_used > self.max_samples
        ):
            raise BudgetExceededError("max_samples", partial=partial)
        if (
            self.max_rr_members is not None
            and self.rr_members_used > self.max_rr_members
        ):
            raise BudgetExceededError("max_rr_members", partial=partial)

    def charge_samples(self, count: int, partial: object = None) -> None:
        """Account for ``count`` drawn samples, then :meth:`check`."""
        self.samples_used += int(count)
        self.check(partial=partial)

    def charge_rr_members(self, count: int, partial: object = None) -> None:
        """Account for ``count`` stored RR members, then :meth:`check`."""
        self.rr_members_used += int(count)
        self.check(partial=partial)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunBudget(wall_seconds={self.wall_seconds}, "
            f"max_samples={self.max_samples}, "
            f"max_rr_members={self.max_rr_members}, "
            f"samples_used={self.samples_used}, "
            f"rr_members_used={self.rr_members_used})"
        )


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


class RunTelemetry:
    """Counters that make failure handling observable.

    Attached to a :class:`~repro.engine.parallel.SamplingEngine` and
    accumulated across its runs; result objects snapshot it via
    :meth:`as_dict` and :class:`~repro.core.session.CampaignSession`
    exposes :meth:`summary` in its repr.

    Since the observability PR this is a *view* over a
    :class:`~repro.obs.metrics.MetricsRegistry`: each field reads and
    writes a ``runtime.<field>`` counter. An engine constructed inside
    an :func:`repro.obs.observe` scope binds to that scope's registry,
    so runtime counters appear in the global run report for free; with
    no scope active (the default) each telemetry block owns a private
    registry and behaves exactly like the old plain-field dataclass.
    """

    FIELDS = (
        "shards_run",
        "shards_retried",
        "shards_failed",
        "pool_rebuilds",
        "degradations",
        "checkpoint_writes",
        "checkpoint_loads",
        "parallel_fallbacks",
    )
    _PREFIX = "runtime."

    __slots__ = ("registry",)

    def __init__(self, registry=None, **counts: int) -> None:
        if registry is None:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
        object.__setattr__(self, "registry", registry)
        for key, value in counts.items():
            if key not in self.FIELDS:
                raise TypeError(
                    f"RunTelemetry has no counter {key!r}"
                )
            if value:
                setattr(self, key, value)

    def __getattr__(self, name: str) -> int:
        if name in self.FIELDS:
            return int(self.registry.value(self._PREFIX + name, 0))
        raise AttributeError(
            f"{type(self).__name__!s} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value: int) -> None:
        if name in self.FIELDS:
            self.registry.counter(self._PREFIX + name).value = int(value)
        else:
            object.__setattr__(self, name, value)

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (for result objects / JSON)."""
        return {name: getattr(self, name) for name in self.FIELDS}

    def merge(self, other: "RunTelemetry") -> None:
        """Add another telemetry block into this one."""
        for key, value in other.as_dict().items():
            setattr(self, key, getattr(self, key) + value)

    def summary(self) -> str:
        """One-line human-readable summary (only non-zero counters)."""
        parts = [f"{k}={v}" for k, v in self.as_dict().items() if v]
        return ", ".join(parts) if parts else "clean"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunTelemetry({self.summary()})"


# ---------------------------------------------------------------------------
# Shard execution
# ---------------------------------------------------------------------------

#: Placeholder for a shard whose result is not yet available.
_PENDING = object()


def _attempt_shard(worker, args, shard_index: int, attempt: int,
                   fault_plan: FaultPlan | None, in_pool: bool):
    """Run one shard attempt; module-level so pools can pickle it."""
    if fault_plan is not None:
        fault_plan.apply(shard_index, attempt, in_pool=in_pool)
    return worker(*args)


def execute_shards(
    engine: "SamplingEngine",
    worker: Callable,
    tasks: list[tuple],
    budget: RunBudget | None = None,
    on_prefix: Callable[[int, list, bool], None] | None = None,
    preloaded: int = 0,
    preloaded_results: list | None = None,
    force_serial: bool = False,
) -> list:
    """Run shard ``tasks`` under the engine's retry policy.

    Parameters
    ----------
    engine:
        The owning :class:`SamplingEngine` — supplies worker count, the
        pool (with rebuild), the :class:`RetryPolicy`, the optional
        :class:`~repro.engine.faults.FaultPlan` and the
        :class:`RunTelemetry` sink.
    worker:
        Module-level shard function; ``tasks[i]`` is its argument tuple.
        Each task must derive all randomness from the ``SeedSequence``
        embedded in its arguments so reruns are bit-identical.
    budget:
        Optional :class:`RunBudget`, checked between shard completions.
    on_prefix:
        ``on_prefix(done, results, force)`` is invoked whenever the
        contiguous done-prefix advances (checkpoint hook), and once with
        ``force=True`` when the run is interrupted.
    preloaded / preloaded_results:
        Resume support: the first ``preloaded`` shards are taken from
        ``preloaded_results`` and never executed.
    force_serial:
        Run on the in-process path even when the engine has a pool —
        used by the small-run fallback, which has already decided that
        pool dispatch would cost more than the sampling itself.

    Returns the shard results in shard order. Raises
    :class:`ShardFailedError` when a shard exhausts its attempts,
    :class:`BudgetExceededError` (partial = done-prefix results) on
    budget exhaustion, and re-raises ``KeyboardInterrupt`` after
    cancelling outstanding work and force-flushing the prefix.
    """
    policy = engine.retry_policy or RetryPolicy()
    plan = engine.fault_plan
    telemetry = engine.telemetry
    n = len(tasks)
    results: list = [_PENDING] * n
    for i in range(min(preloaded, n)):
        results[i] = preloaded_results[i]
    prefix = _prefix_len(results)
    jitter_rng = random.Random(0x5EED ^ n)

    def flush(force: bool = False) -> None:
        if on_prefix is not None:
            on_prefix(_prefix_len(results), results, force)

    pending = [i for i in range(n) if results[i] is _PENDING]
    if not pending:
        flush()
        return results

    try:
        if force_serial or engine.workers == 1 or len(pending) == 1:
            _execute_serial(
                engine, worker, tasks, results, pending, policy, plan,
                telemetry, budget, jitter_rng, flush,
            )
        else:
            _execute_pool(
                engine, worker, tasks, results, pending, policy, plan,
                telemetry, budget, jitter_rng, flush,
            )
    except KeyboardInterrupt:
        engine.abort_pool()
        flush(force=True)
        raise
    except BudgetExceededError as exc:
        flush(force=True)
        if exc.partial is None:
            exc.partial = results[: _prefix_len(results)]
        raise
    # A completed operation always gets a durable checkpoint (one write
    # per op), so a later interrupt never forces recomputing it.
    flush(force=True)
    assert _prefix_len(results) == n
    return results


def _prefix_len(results: list) -> int:
    """Length of the contiguous done-prefix."""
    for i, value in enumerate(results):
        if value is _PENDING:
            return i
    return len(results)


def _run_with_retries(
    worker, args, idx: int, first_attempt: int, policy: RetryPolicy,
    plan: FaultPlan | None, telemetry: RunTelemetry,
    budget: RunBudget | None, jitter_rng: random.Random,
):
    """Serial retry loop for one shard. Returns the shard result."""
    attempt = first_attempt
    while True:
        if budget is not None:
            budget.check()
        try:
            result = _attempt_shard(worker, args, idx, attempt, plan,
                                    in_pool=False)
            telemetry.shards_run += 1
            return result
        except Exception as exc:  # noqa: BLE001 - classified below
            attempt += 1
            if is_permanent(exc) or attempt >= policy.max_attempts:
                telemetry.shards_failed += 1
                raise ShardFailedError(idx, attempt, exc) from exc
            telemetry.shards_retried += 1
            time.sleep(policy.delay(attempt - 1, jitter_rng))


def _execute_serial(
    engine, worker, tasks, results, pending, policy, plan, telemetry,
    budget, jitter_rng, flush,
) -> None:
    """In-process path: shards in order, retries inline."""
    for idx in pending:
        results[idx] = _run_with_retries(
            worker, tasks[idx], idx, 0, policy, plan, telemetry, budget,
            jitter_rng,
        )
        flush()
        if plan is not None:
            plan.after_shard_done()


def _execute_pool(
    engine, worker, tasks, results, pending, policy, plan, telemetry,
    budget, jitter_rng, flush,
) -> None:
    """Pool path: full fan-out with rebuilds, watchdog, degradation."""
    attempts = {idx: 0 for idx in pending}
    queue = deque(pending)
    retry_at: list[tuple[float, int]] = []  # (ready time, shard index)
    in_flight: dict = {}  # future -> (idx, submitted_at)
    rebuilds = 0

    def requeue_in_flight(charged: set[int] | None) -> None:
        """Requeue in-flight shards; ``charged=None`` charges them all.

        A broken pool kills every in-flight shard, so each one consumed
        an attempt — charging only the shard whose future happened to
        surface the error first would let a pool-killing shard be
        resubmitted at its original attempt number and kill the rebuilt
        pool again (and again). The watchdog path passes an explicit set
        instead: shards that merely lost their pool are rerun without
        charge (bit-identical replay makes that free).
        """
        for fut, (idx, _t0) in list(in_flight.items()):
            fut.cancel()
            if charged is None or idx in charged:
                attempts[idx] += 1
                telemetry.shards_retried += 1
                if attempts[idx] >= policy.max_attempts:
                    telemetry.shards_failed += 1
                    raise ShardFailedError(
                        idx, attempts[idx],
                        TimeoutError("shard lost with its pool"),
                    )
            queue.append(idx)
        in_flight.clear()

    def handle_broken_pool(charged: set[int] | None) -> None:
        nonlocal rebuilds
        rebuilds += 1
        requeue_in_flight(charged)
        if rebuilds > policy.max_pool_rebuilds:
            telemetry.degradations += 1
            engine.abort_pool()
            # Graceful degradation: finish everything left in-process.
            remaining = sorted(set(queue) | {i for _, i in retry_at})
            queue.clear()
            retry_at.clear()
            for idx in remaining:
                results[idx] = _run_with_retries(
                    worker, tasks[idx], idx, attempts[idx], policy, plan,
                    telemetry, budget, jitter_rng,
                )
                flush()
                if plan is not None:
                    plan.after_shard_done()
        else:
            telemetry.pool_rebuilds += 1
            engine.rebuild_pool()

    while queue or retry_at or in_flight:
        now = time.monotonic()
        # Promote due retries back into the submission queue.
        retry_at, due = (
            [(t, i) for t, i in retry_at if t > now],
            [i for t, i in retry_at if t <= now],
        )
        queue.extend(due)
        # Submit everything submittable.
        while queue:
            idx = queue.popleft()
            try:
                if plan is not None:
                    plan.before_submit()
                fut = engine.pool().submit(
                    _attempt_shard, worker, tasks[idx], idx, attempts[idx],
                    plan, True,
                )
            except BrokenProcessPool:
                queue.appendleft(idx)
                handle_broken_pool(charged=None)
                if not in_flight and not queue and not retry_at:
                    return
                continue
            in_flight[fut] = (idx, time.monotonic())
        if not in_flight:
            if retry_at:
                time.sleep(max(0.0, min(t for t, _ in retry_at) - now))
            continue

        timeout = 0.05
        if policy.shard_timeout is not None:
            timeout = min(timeout, policy.shard_timeout / 4.0)
        done, _ = wait(
            set(in_flight), timeout=timeout, return_when=FIRST_COMPLETED
        )

        for fut in done:
            idx, _t0 = in_flight.pop(fut)
            try:
                results[idx] = fut.result()
            except BrokenProcessPool:
                queue.append(idx)
                attempts[idx] += 1
                telemetry.shards_retried += 1
                if attempts[idx] >= policy.max_attempts:
                    telemetry.shards_failed += 1
                    raise ShardFailedError(
                        idx, attempts[idx], BrokenProcessPool("pool broke")
                    )
                handle_broken_pool(charged=None)
                break
            except Exception as exc:  # noqa: BLE001 - classified below
                attempts[idx] += 1
                if is_permanent(exc) or attempts[idx] >= policy.max_attempts:
                    telemetry.shards_failed += 1
                    raise ShardFailedError(idx, attempts[idx], exc) from exc
                telemetry.shards_retried += 1
                retry_at.append((
                    time.monotonic()
                    + policy.delay(attempts[idx] - 1, jitter_rng),
                    idx,
                ))
            else:
                telemetry.shards_run += 1
                flush()
                if budget is not None:
                    budget.check()
                if plan is not None:
                    plan.after_shard_done()

        # Hung-shard watchdog: anything in flight beyond the timeout is
        # presumed stuck; the only way to reclaim its worker is a pool
        # rebuild.
        if policy.shard_timeout is not None and in_flight:
            now = time.monotonic()
            stuck = {
                idx
                for fut, (idx, t0) in in_flight.items()
                if not fut.done() and now - t0 > policy.shard_timeout
            }
            if stuck:
                handle_broken_pool(charged=stuck)
