"""Deterministic fault injection for the sampling runtime.

Testing a recovery path by hoping the OS misbehaves on cue is not a
strategy; a :class:`FaultPlan` *scripts* the misbehavior. The plan is
consulted from two sides:

* **worker-side** — :meth:`FaultPlan.apply` runs at the top of every
  shard attempt (inside the child process when a pool is active) and
  can raise a transient error, raise a permanent error, sleep to
  simulate a hang, or ``os._exit`` to genuinely kill the worker and
  break the ``ProcessPoolExecutor``;
* **driver-side** — :meth:`FaultPlan.before_submit` can poison the pool
  (simulate ``BrokenProcessPool`` at submission time) and
  :meth:`FaultPlan.after_shard_done` can raise ``KeyboardInterrupt``
  after a prescribed number of completed shards, which is how the
  kill-and-resume tests interrupt a checkpointed run at an exact,
  reproducible point.

Faults are keyed by ``(shard_index, attempt)`` so "fail shard 3 on its
first two attempts, then succeed" is expressible — exactly the schedule
the determinism-under-retry tests need. A plan is picklable (plain
dicts of plain values), so it rides along to pool workers unchanged.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field


class InjectedFault(RuntimeError):
    """A scripted *transient* failure raised by a :class:`FaultPlan`.

    Deliberately **not** a :class:`~repro.exceptions.ReproError`: the
    runtime classifies ``ReproError`` as permanent, and injected faults
    exist to exercise the retry path.
    """


class InjectedPermanentFault(RuntimeError):
    """A scripted failure the runtime must treat as permanent."""


#: Worker-side fault kinds understood by :meth:`FaultPlan.apply`.
KINDS = ("fail", "fail_permanent", "hang", "kill")


@dataclass
class FaultPlan:
    """A deterministic schedule of injected failures.

    All mutating builder methods return ``self`` so plans read as one
    chained expression::

        plan = FaultPlan().fail_shard(2, attempts=(0, 1)).hang_shard(5)
    """

    #: ``(shard, attempt) -> kind`` for worker-side faults.
    shard_faults: dict[tuple[int, int], str] = field(default_factory=dict)
    #: Seconds a ``"hang"`` fault sleeps before returning normally.
    hang_seconds: float = 30.0
    #: Poison the pool at submission ``poison_after`` (0-based counter
    #: over all submissions), at most ``poison_times`` times.
    poison_after: int | None = None
    poison_times: int = 1
    #: Raise ``KeyboardInterrupt`` once this many shards have completed.
    interrupt_after: int | None = None

    # Driver-side mutable counters (never consulted in workers).
    _submissions: int = field(default=0, repr=False)
    _poisoned: int = field(default=0, repr=False)
    _completions: int = field(default=0, repr=False)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def fail_shard(
        self, shard: int, attempts: tuple[int, ...] = (0,),
        permanent: bool = False,
    ) -> "FaultPlan":
        """Fail ``shard`` on each attempt number in ``attempts``."""
        kind = "fail_permanent" if permanent else "fail"
        for attempt in attempts:
            self.shard_faults[(int(shard), int(attempt))] = kind
        return self

    def hang_shard(
        self, shard: int, attempts: tuple[int, ...] = (0,),
        seconds: float | None = None,
    ) -> "FaultPlan":
        """Make ``shard`` sleep ``seconds`` before completing normally."""
        if seconds is not None:
            self.hang_seconds = float(seconds)
        for attempt in attempts:
            self.shard_faults[(int(shard), int(attempt))] = "hang"
        return self

    def kill_shard(
        self, shard: int, attempts: tuple[int, ...] = (0,)
    ) -> "FaultPlan":
        """Kill the worker process running ``shard`` (breaks the pool).

        In the in-process serial path, where there is no worker to kill,
        this degenerates to a transient :class:`InjectedFault`.
        """
        for attempt in attempts:
            self.shard_faults[(int(shard), int(attempt))] = "kill"
        return self

    def poison_pool_after(self, tasks: int, times: int = 1) -> "FaultPlan":
        """Simulate a broken pool at submission number ``tasks`` onward.

        Fires at most ``times`` times, so a plan can script "the pool
        breaks once, the rebuild fixes it" as well as "the pool is
        cursed, degrade to in-process".
        """
        self.poison_after = int(tasks)
        self.poison_times = int(times)
        return self

    def interrupt_after_shards(self, count: int) -> "FaultPlan":
        """Raise ``KeyboardInterrupt`` after ``count`` completed shards."""
        self.interrupt_after = int(count)
        return self

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def apply(self, shard: int, attempt: int, in_pool: bool) -> None:
        """Worker-side hook: act on any fault scheduled for this attempt."""
        kind = self.shard_faults.get((int(shard), int(attempt)))
        if kind is None:
            return
        if kind == "fail":
            raise InjectedFault(
                f"injected transient fault: shard {shard} attempt {attempt}"
            )
        if kind == "fail_permanent":
            raise InjectedPermanentFault(
                f"injected permanent fault: shard {shard} attempt {attempt}"
            )
        if kind == "hang":
            time.sleep(self.hang_seconds)
            return
        if kind == "kill":
            if in_pool:  # pragma: no cover - runs inside a doomed child
                os._exit(1)
            raise InjectedFault(
                f"injected kill (serial fallback): shard {shard} "
                f"attempt {attempt}"
            )
        raise ValueError(f"unknown fault kind {kind!r}")  # pragma: no cover

    def before_submit(self) -> None:
        """Driver-side hook: poison the pool at the scripted submission."""
        current = self._submissions
        self._submissions += 1
        if (
            self.poison_after is not None
            and current >= self.poison_after
            and self._poisoned < self.poison_times
        ):
            self._poisoned += 1
            from concurrent.futures.process import BrokenProcessPool

            raise BrokenProcessPool(
                f"injected pool poison at submission {current}"
            )

    def after_shard_done(self) -> None:
        """Driver-side hook: interrupt after the scripted completion."""
        self._completions += 1
        if (
            self.interrupt_after is not None
            and self._completions >= self.interrupt_after
        ):
            raise KeyboardInterrupt(
                f"injected interrupt after {self._completions} shards"
            )

    def reset_counters(self) -> "FaultPlan":
        """Zero the driver-side counters (for plan reuse across runs)."""
        self._submissions = 0
        self._poisoned = 0
        self._completions = 0
        return self

    def __getstate__(self):
        # Workers only need the fault table; driver counters stay home.
        state = self.__dict__.copy()
        state["_submissions"] = 0
        state["_poisoned"] = 0
        state["_completions"] = 0
        return state
