"""The sampling engine: shard-parallel RR-set and cascade fan-out.

Sketch-based influence maximization is embarrassingly parallel across
samples (Cohen et al., VLDB 2014): each RR set / cascade only reads the
graph. :class:`SamplingEngine` exploits that with a
``ProcessPoolExecutor``-backed driver that shards the θ samples into
fixed-size shards and runs each shard with its own child RNG stream.

Determinism contract
--------------------
Sharding depends only on ``(theta, shard_size)`` — never on ``workers``
— and each shard is keyed to a child ``SeedSequence`` spawned from the
master generator's spawn tree, in shard order. A shard's samples are a
pure function of its seed sequence, so shard ``i`` produces the same
output no matter which worker runs it, in what order shards finish, or
**how many times it had to be attempted** — the fault-tolerant runtime
(:mod:`repro.engine.runtime`) leans on this to retry failed shards,
rebuild broken pools, degrade to the in-process path, and splice
checkpointed prefixes, all without changing a single sampled bit.
Results are concatenated in shard order. Consequences:

* same master seed ⇒ bit-identical output for any ``workers`` count
  and any retry/failure schedule;
* the serial path (``workers=1``) runs in-process — no pool, no pickling;
* successive calls on one engine with a shared generator consume the
  generator's spawn counter, so a session remains replayable end to end.

The ``mode`` knob selects the per-shard kernel: ``"vectorized"`` uses
the frontier-batched kernels of :mod:`repro.engine.frontier`;
``"bitparallel"`` packs 64 possible worlds per uint64 word with
counter-based coins (:mod:`repro.engine.bitworld`) — the fastest
substrate; ``"scalar"`` runs the original per-edge Python loops (the
correctness oracle), which keeps cross-mode comparisons honest under
the identical sharding and driver overheads.

Multi-worker engines in the shared-memory-capable modes (vectorized,
bit-parallel) do not pickle the graph into shard tasks. The engine
publishes each graph's CSR arrays once through
:class:`~repro.engine.shared_csr.SharedCSR` and ships a tiny attach
handle instead; every worker maps the same physical pages read-only.
The per-operation probability vector travels the same way and is
unlinked as soon as the operation completes.
"""

from __future__ import annotations

import threading
import weakref
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro import obs
from repro.engine.checkpoint import CheckpointManager, rng_state_digest
from repro.engine.faults import FaultPlan
from repro.engine.frontier import (
    batched_cascade_counts,
    batched_rr_members,
    bitparallel_cascade_counts,
    bitparallel_rr_members,
)
from repro.engine.rr_storage import RRCollection
from repro.engine.shared_csr import (
    CSRGraphHandle,
    CSRGraphView,
    SharedCSR,
    SharedProbs,
    resolve_edge_probs,
    resolve_graph,
)
from repro.engine.runtime import (
    RetryPolicy,
    RunBudget,
    RunTelemetry,
    execute_shards,
)
from repro.exceptions import BudgetExceededError, ConfigurationError
from repro.graphs.tag_graph import TagGraph
from repro.utils.rng import ensure_rng, spawn_seed_sequences

MODES = ("scalar", "vectorized", "bitparallel")

#: Default samples per shard. Small enough that a handful of shards
#: exist even at pilot sizes (so ``workers=4`` has work to spread),
#: large enough that per-shard dispatch overhead is negligible.
DEFAULT_SHARD_SIZE = 512

#: Default samples per shard for the bit-parallel kernel. Each uint64
#: word carries 64 worlds, so a 512-sample shard would use only 8
#: blocks — too little work to amortize the per-level numpy overhead.
#: 8192 samples = 128 blocks keeps the kernel in its efficient regime
#: while still producing multiple shards at realistic θ. Like
#: ``shard_size`` generally, this is part of the determinism contract.
DEFAULT_BITPARALLEL_SHARD_SIZE = 8192

#: Below this many total samples, pool dispatch costs more than the
#: sampling itself (``BENCH_engine.json`` showed parallel_speedup
#: 0.04-0.78 on the quick configs), so a multi-worker engine falls
#: back to the in-process vectorized path. Results are unaffected —
#: the determinism contract already guarantees serial == pooled.
DEFAULT_PARALLEL_THRESHOLD = 4096

#: Pickle-transport surcharge for modes that ship the whole graph into
#: every shard task (currently only ``"scalar"``; the vectorized and
#: bit-parallel modes attach to a :class:`SharedCSR` by name instead).
#: Serializing + deserializing one edge costs about as much as sampling
#: 1/200th of a sample on the evaluation graphs, so an operation must
#: bring at least ``num_edges / 200`` extra samples of work before the
#: pool pays for the copies it forces.
TRANSPORT_EDGES_PER_SAMPLE = 200


def _shard_counts(total: int, shard_size: int) -> list[int]:
    """Split ``total`` samples into fixed-size shards (last one ragged)."""
    if shard_size < 1:
        raise ConfigurationError(
            f"shard_size must be >= 1, got {shard_size}"
        )
    if total <= 0:
        return []
    full, rest = divmod(total, shard_size)
    return [shard_size] * full + ([rest] if rest else [])


def _rr_shard(
    graph: TagGraph | CSRGraphHandle,
    target_arr: np.ndarray,
    edge_probs,
    count: int,
    seed_seq: np.random.SeedSequence,
    mode: str,
    batch_size: int | None,
) -> tuple[np.ndarray, np.ndarray]:
    """One shard of RR samples; module-level so process pools can pickle it.

    The shard's generator is rebuilt from ``seed_seq`` at the top of
    every attempt, so retries replay the shard bit-identically.
    ``graph`` is either the graph itself (serial path / scalar mode) or
    a :class:`~repro.engine.shared_csr.CSRGraphHandle` the worker
    attaches to by name — same for ``edge_probs`` and
    :class:`~repro.engine.shared_csr.ProbsHandle`.
    """
    graph = resolve_graph(graph)
    edge_probs = resolve_edge_probs(edge_probs)
    rng = np.random.default_rng(seed_seq)
    roots = rng.choice(target_arr, size=count)
    if mode == "scalar":
        from repro.sketch.rr_sets import reverse_reachable_set

        sets = [
            reverse_reachable_set(graph, int(root), edge_probs, rng)
            for root in roots
        ]
        flat = RRCollection.from_sets(sets, graph.num_nodes)
        return flat.members, flat.indptr
    if mode == "bitparallel":
        # The coin-stream key is drawn *after* the roots from the same
        # shard stream, so the (roots, key) pair is a pure function of
        # seed_seq — replayable across retries and worker counts.
        key = int(rng.integers(np.iinfo(np.int64).max, dtype=np.int64))
        return bitparallel_rr_members(graph, roots, edge_probs, key)
    return batched_rr_members(
        graph, roots, edge_probs, rng, batch_size=batch_size
    )


def _cascade_shard(
    graph: TagGraph | CSRGraphHandle,
    seed_arr: np.ndarray,
    edge_probs,
    count: int,
    target_arr: np.ndarray,
    seed_seq: np.random.SeedSequence,
    mode: str,
    batch_size: int | None,
) -> np.ndarray:
    """One shard of IC cascades; returns per-sample target counts."""
    graph = resolve_graph(graph)
    edge_probs = resolve_edge_probs(edge_probs)
    rng = np.random.default_rng(seed_seq)
    if mode == "scalar":
        from repro.diffusion.cascade import simulate_cascade

        counts = np.empty(count, dtype=np.int64)
        for i in range(count):
            active = simulate_cascade(graph, seed_arr, edge_probs, rng)
            counts[i] = int(active[target_arr].sum())
        return counts
    if mode == "bitparallel":
        key = int(rng.integers(np.iinfo(np.int64).max, dtype=np.int64))
        return bitparallel_cascade_counts(
            graph, seed_arr, edge_probs, count, target_arr, key
        )
    return batched_cascade_counts(
        graph, seed_arr, edge_probs, count, target_arr, rng,
        batch_size=batch_size,
    )


def _rr_prefix_arrays(shards: list) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-shard ``(members, indptr)`` results into flat CSR."""
    if not shards:
        return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
    members = np.concatenate([m for m, _ in shards])
    counts = np.concatenate([np.diff(p) for _, p in shards])
    indptr = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return members, indptr


def _split_rr_prefix(
    members: np.ndarray, indptr: np.ndarray, counts: list[int],
    shards_done: int,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Invert :func:`_rr_prefix_arrays` back into per-shard results."""
    results = []
    cursor = 0
    for i in range(shards_done):
        c = counts[i]
        base = indptr[cursor]
        sub_indptr = (indptr[cursor:cursor + c + 1] - base).astype(np.int64)
        sub_members = members[base:indptr[cursor + c]].astype(np.int64)
        results.append((sub_members, sub_indptr))
        cursor += c
    return results


def _split_count_prefix(
    flat: np.ndarray, counts: list[int], shards_done: int
) -> list[np.ndarray]:
    """Split a flat cascade-count prefix back into per-shard arrays."""
    results = []
    cursor = 0
    for i in range(shards_done):
        results.append(flat[cursor:cursor + counts[i]].astype(np.int64))
        cursor += counts[i]
    return results


class SamplingEngine:
    """Frontier-batched, optionally multi-process sampling driver.

    Parameters
    ----------
    mode:
        ``"vectorized"`` (frontier-batched numpy kernels, the default),
        ``"bitparallel"`` (64 possible worlds per uint64 word, the
        fastest substrate — see :mod:`repro.engine.bitworld`) or
        ``"scalar"`` (the original Python loops, as oracle).
    workers:
        Process count; ``1`` (default) runs in-process. Results are
        identical for any value — see the module determinism contract.
        Multi-worker engines in the vectorized and bit-parallel modes
        publish the graph's CSR structure once through a
        :class:`~repro.engine.shared_csr.SharedCSR` and ship tiny
        handles in shard tasks instead of pickling the graph.
    shard_size:
        Samples per shard; ``None`` (default) resolves to
        :data:`DEFAULT_SHARD_SIZE` (or
        :data:`DEFAULT_BITPARALLEL_SHARD_SIZE` for the bit-parallel
        mode). Part of the determinism contract: changing it changes
        the RNG stream layout, so outputs for a fixed seed are only
        comparable at equal ``shard_size``.
    batch_size:
        Samples per frontier batch inside a shard (vectorized mode);
        ``None`` sizes batches from the node count automatically.
        Does not affect results, only memory/locality.
    retry_policy:
        :class:`~repro.engine.runtime.RetryPolicy` governing shard
        retries, backoff, pool rebuilds, the hung-shard watchdog and
        graceful degradation. ``None`` uses the defaults.
    fault_plan:
        Optional :class:`~repro.engine.faults.FaultPlan` for
        deterministic fault injection (tests / chaos drills).
    checkpoint:
        Optional :class:`~repro.engine.checkpoint.CheckpointManager`;
        sampling operations then persist their shard done-prefix and,
        when the manager is in resume mode, splice matching checkpoints
        back in instead of recomputing.
    parallel_threshold:
        Sampling operations totalling fewer samples than this run on
        the in-process path even when ``workers > 1`` (pool dispatch
        dominates at small sizes). ``0`` disables the fallback. The
        scalar mode additionally pays a graph-transport surcharge of
        ``num_edges / TRANSPORT_EDGES_PER_SAMPLE`` samples, because it
        pickles the graph into every shard task; the shared-memory
        modes do not. Each fallback is recorded in
        ``telemetry.parallel_fallbacks``, the aggregate
        ``engine.parallel_fallbacks`` metric, and a reason-suffixed
        metric (``engine.parallel_fallbacks.below_threshold`` or
        ``engine.parallel_fallbacks.transport_cost``). A
        :class:`~repro.engine.faults.FaultPlan` suppresses the
        fallback — fault injection exists to exercise the pool paths.
    spill_dir:
        Optional directory for the shared-CSR memmap spill: graphs
        whose CSR arrays exceed
        :data:`~repro.engine.shared_csr.SPILL_THRESHOLD_BYTES` are
        published as a memory-mapped file there instead of POSIX shared
        memory, so graphs larger than RAM can still fan out.

    Failure handling never changes results (retried shards replay their
    ``SeedSequence`` bit-identically); it only changes whether the run
    survives. Counters live on :attr:`telemetry`.
    """

    def __init__(
        self,
        mode: str = "vectorized",
        workers: int = 1,
        shard_size: int | None = None,
        batch_size: int | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        checkpoint: CheckpointManager | None = None,
        parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
        spill_dir: str | None = None,
    ) -> None:
        if mode not in MODES:
            raise ConfigurationError(
                f"unknown engine mode {mode!r}; expected one of {MODES}"
            )
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        if shard_size is None:
            shard_size = (
                DEFAULT_BITPARALLEL_SHARD_SIZE
                if mode == "bitparallel"
                else DEFAULT_SHARD_SIZE
            )
        if shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be >= 1, got {shard_size}"
            )
        if parallel_threshold < 0:
            raise ConfigurationError(
                f"parallel_threshold must be >= 0, got {parallel_threshold}"
            )
        self.mode = mode
        self.workers = int(workers)
        self.shard_size = int(shard_size)
        self.batch_size = batch_size
        self.spill_dir = spill_dir
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.checkpoint = checkpoint
        self.parallel_threshold = int(parallel_threshold)
        # Bind runtime counters to the observation active *now*, so an
        # engine built inside an ``obs.observe()`` scope reports its
        # retries/rebuilds/fallbacks in the global run report.
        self.telemetry = RunTelemetry(registry=obs.current_registry())
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._op_counter = 0
        # Published shared-CSR segments, one per distinct graph object:
        # id(graph) -> (weakref, SharedCSR). QueryEngineViews delegate
        # here, so concurrent queries over one graph share one segment.
        self._shared_graphs: dict[int, tuple] = {}
        # RLock: the weakref-callback cleanup path can fire from a GC
        # triggered while this thread already holds the lock.
        self._shared_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    def pool(self) -> ProcessPoolExecutor:
        """The live worker pool, created on first use (thread-safe)."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool

    def rebuild_pool(self) -> ProcessPoolExecutor:
        """Tear down a (presumed broken) pool and start a fresh one."""
        self.abort_pool()
        return self.pool()

    def abort_pool(self) -> None:
        """Shut the pool down without waiting (cancel what can be)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def close(self) -> None:
        """Shut down the worker pool and unlink shared-CSR segments."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None
        self._unlink_shared()

    # ------------------------------------------------------------------
    # Shared-memory graph transport
    # ------------------------------------------------------------------
    def _shared_csr(self, graph: TagGraph) -> SharedCSR:
        """The (cached) :class:`SharedCSR` publication of ``graph``."""
        gid = id(graph)
        with self._shared_lock:
            entry = self._shared_graphs.get(gid)
            if entry is not None:
                ref, shared = entry
                if ref() is graph:
                    return shared
                shared.unlink()  # dead graph whose id was reused
            shared = SharedCSR(graph, spill_dir=self.spill_dir)

            def _drop(_ref, *, _gid=gid, _self=weakref.ref(self)) -> None:
                engine = _self()
                if engine is None:
                    return  # SharedCSR's own finalizer handles unlink
                with engine._shared_lock:
                    stale = engine._shared_graphs.pop(_gid, None)
                if stale is not None:
                    stale[1].unlink()

            self._shared_graphs[gid] = (weakref.ref(graph, _drop), shared)
            return shared

    def _unlink_shared(self) -> None:
        """Destroy every published shared-CSR segment (idempotent)."""
        with self._shared_lock:
            entries = list(self._shared_graphs.values())
            self._shared_graphs.clear()
        for _ref, shared in entries:
            shared.unlink()

    def release_graph(self, graph: TagGraph) -> bool:
        """Unlink the shared-CSR publication of ``graph``, if any.

        An epoch write path may call this after swapping in a new
        snapshot, once it can prove no in-flight operation still
        samples the old graph; otherwise the superseded snapshot's
        segment lingers until garbage collection runs its weakref
        cleanup. Callers that cannot prove quiescence (the serve
        layer, whose queries pin snapshots for their whole lifetime)
        should simply drop their references and let the weakref path
        reclaim the segment.
        Returns whether a segment was found (and unlinked).
        """
        with self._shared_lock:
            entry = self._shared_graphs.pop(id(graph), None)
        if entry is None:
            return False
        entry[1].unlink()
        return True

    def published_graph_count(self) -> int:
        """Number of live shared-CSR publications (epoch republish probe)."""
        with self._shared_lock:
            return len(self._shared_graphs)

    def _graph_ref(self, graph):
        """The transport form of ``graph`` for one sampling operation.

        Serial engines and the scalar mode (whose traversals need the
        full :class:`TagGraph` surface) pass the graph object through;
        shared-memory-capable pooled modes swap in a picklable
        :class:`CSRGraphHandle` so workers attach by name instead of
        unpickling the CSR arrays per task.
        """
        if (
            self.workers == 1
            or self.mode == "scalar"
            or isinstance(graph, CSRGraphView)
        ):
            return graph
        return self._shared_csr(graph).handle

    def for_query(self, registry=None) -> "QueryEngineView":
        """A per-query view of this engine with isolated telemetry.

        The view shares the (expensive, process-backed) worker pool and
        every sampling knob with its parent, but owns a fresh
        :class:`~repro.engine.runtime.RunTelemetry` bound to ``registry``
        (default: the observation active on the *calling thread*) and an
        independent operation counter. Concurrent queries served off one
        pooled engine therefore keep exact per-query ``runtime.*``
        counters — nothing bleeds between queries — while still reusing
        one set of worker processes. Checkpointing stays with the parent:
        views never write checkpoints (per-query checkpoint files would
        collide across threads).
        """
        return QueryEngineView(self, registry=registry)

    def __enter__(self) -> "SamplingEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Context-manager safety: on an exception the pool may hold
        # doomed futures — abort rather than wait on them.
        if exc_type is not None:
            self.abort_pool()
            self._unlink_shared()
        else:
            self.close()

    def reset_ops(self) -> None:
        """Restart the operation counter (begin a new logical run).

        Checkpoint files are keyed by operation index; a resumed run
        must replay its operations from index 0 with a fresh engine or
        after calling this.
        """
        self._op_counter = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SamplingEngine(mode={self.mode!r}, workers={self.workers}, "
            f"shard_size={self.shard_size}, "
            f"telemetry=[{self.telemetry.summary()}])"
        )

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def _signature(
        self, kind: str, total: int, rng: np.random.Generator,
        extra: int,
    ) -> dict:
        """Checkpoint signature pinning one sampling operation's identity."""
        seed_seq = rng.bit_generator.seed_seq
        return {
            "kind": kind,
            "total": int(total),
            "shard_size": self.shard_size,
            "mode": self.mode,
            "extra": int(extra),
            "rng": rng_state_digest(rng),
            "spawn_cursor": int(getattr(seed_seq, "n_children_spawned", 0)),
        }

    def _transport_penalty(self, graph) -> int:
        """Extra samples the pool must bring to pay for graph transport.

        The scalar mode pickles ``graph`` into every shard task, so its
        break-even point shifts up by ``num_edges /``
        :data:`TRANSPORT_EDGES_PER_SAMPLE`. The vectorized and
        bit-parallel modes attach to a :class:`SharedCSR` by name —
        their transport cost is constant and tiny, so no surcharge.
        """
        if self.workers > 1 and self.mode == "scalar":
            return int(graph.num_edges) // TRANSPORT_EDGES_PER_SAMPLE
        return 0

    def _run_op(
        self,
        worker,
        tasks: list[tuple],
        counts: list[int],
        signature: dict,
        pack,
        split,
        budget: RunBudget | None,
        charge=None,
        transport_penalty: int = 0,
    ) -> list:
        """Run one checkpointable sampling operation through the runtime.

        ``pack(shards) -> dict[str, ndarray]`` flattens a done-prefix
        for storage; ``split(arrays, shards_done)`` inverts it back into
        per-shard results for resume splicing. ``charge(shard_result)``
        accounts one newly completed shard against the budget (raising
        :class:`BudgetExceededError` stops the run mid-growth).

        Small runs skip the pool: when the operation totals fewer than
        ``parallel_threshold + transport_penalty`` samples, dispatch
        (plus, for pickled-graph modes, transport) overhead exceeds the
        sampling work, so a multi-worker engine runs it in-process.
        Identical results either way (determinism contract); only the
        wall clock and the ``parallel_fallbacks`` counters notice. The
        fallback *reason* is published as a suffixed counter —
        ``engine.parallel_fallbacks.below_threshold`` when the run was
        small outright, ``engine.parallel_fallbacks.transport_cost``
        when only the graph-shipping surcharge tipped the decision. A
        fault plan disables the fallback because fault injection
        explicitly targets the pool recovery paths.
        """
        op_index = self._op_counter
        self._op_counter += 1
        charged_upto = 0

        total = sum(counts)
        force_serial = (
            self.workers > 1
            and self.fault_plan is None
            and self.parallel_threshold > 0
            and total < self.parallel_threshold + transport_penalty
        )
        if force_serial:
            reason = (
                "below_threshold"
                if total < self.parallel_threshold
                else "transport_cost"
            )
            self.telemetry.parallel_fallbacks += 1
            obs.count("engine.parallel_fallbacks")
            obs.count(f"engine.parallel_fallbacks.{reason}")

        preloaded: list = []
        if self.checkpoint is not None:
            loaded = self.checkpoint.load(op_index, signature)
            if loaded is not None:
                arrays, shards_done, _total = loaded
                preloaded = split(arrays, min(shards_done, len(counts)))
                self.telemetry.checkpoint_loads += 1
                charged_upto = len(preloaded)

        def on_prefix(done: int, results: list, force: bool) -> None:
            nonlocal charged_upto
            if self.checkpoint is not None and done > 0 and (
                self.checkpoint.should_flush(op_index, done, force)
            ):
                self.checkpoint.save(
                    op_index, signature, pack(results[:done]), done,
                    len(counts),
                )
                self.telemetry.checkpoint_writes += 1
            if charge is not None and not force:
                while charged_upto < done:
                    charge(results[charged_upto])
                    charged_upto += 1

        return execute_shards(
            self, worker, tasks,
            budget=budget,
            on_prefix=on_prefix,
            preloaded=len(preloaded),
            preloaded_results=preloaded,
            force_serial=force_serial,
        )

    def sample_rr_sets(
        self,
        graph: TagGraph,
        target_arr: np.ndarray,
        edge_probs: np.ndarray,
        theta: int,
        rng: np.random.Generator | int | None = None,
        budget: RunBudget | None = None,
    ) -> RRCollection:
        """Sample ``theta`` targeted RR sets (roots uniform over targets).

        ``target_arr`` must be a pre-validated int64 node-id array (see
        :func:`repro.utils.validation.as_target_array`). Returns a flat
        :class:`RRCollection`, deterministic for a fixed master ``rng``
        regardless of ``workers`` and of any failure/retry schedule.
        With a ``budget``, raises
        :class:`~repro.exceptions.BudgetExceededError` whose ``partial``
        is the prefix :class:`RRCollection` collected so far.
        """
        rng = ensure_rng(rng)
        signature = self._signature("rr", theta, rng, extra=target_arr.size)
        counts = _shard_counts(theta, self.shard_size)
        streams = spawn_seed_sequences(rng, len(counts))
        graph_ref = self._graph_ref(graph)
        probs_ref: object = edge_probs
        shared_probs = None
        if isinstance(graph_ref, CSRGraphHandle):
            shared_probs = SharedProbs(edge_probs, spill_dir=self.spill_dir)
            probs_ref = shared_probs.handle
        tasks = [
            (graph_ref, target_arr, probs_ref, count, stream, self.mode,
             self.batch_size)
            for count, stream in zip(counts, streams)
        ]

        def pack(shards):
            members, indptr = _rr_prefix_arrays(shards)
            return {"members": members, "indptr": indptr}

        def split(arrays, shards_done):
            return _split_rr_prefix(
                arrays["members"], arrays["indptr"], counts, shards_done
            )

        def charge(shard) -> None:
            budget.charge_rr_members(len(shard[0]))

        with obs.span(
            "engine.sample_rr_sets", theta=int(theta), mode=self.mode,
            workers=self.workers,
        ):
            try:
                if budget is not None:
                    budget.charge_samples(theta)
                shards = self._run_op(
                    _rr_shard, tasks, counts, signature, pack, split,
                    budget,
                    charge=charge if budget is not None else None,
                    transport_penalty=self._transport_penalty(graph),
                )
            except BudgetExceededError as exc:
                if exc.partial is None or isinstance(exc.partial, list):
                    exc.partial = self._collect_rr(
                        exc.partial or [], graph.num_nodes
                    )
                raise
            finally:
                if shared_probs is not None:
                    shared_probs.unlink()
            collection = self._collect_rr(shards, graph.num_nodes)
        # Counted from the returned object, at the driver: invariant to
        # worker count, retries, and checkpoint/resume splicing.
        obs.count("rr.samples_drawn", len(collection))
        obs.count("rr.members", int(collection.members.size))
        return collection

    def sample_rr_partition(
        self,
        graph: TagGraph,
        target_arr: np.ndarray,
        edge_probs: np.ndarray,
        theta: int,
        rng: np.random.Generator | int | None,
        part_index: int,
        part_count: int,
    ) -> tuple[RRCollection, int]:
        """Sample only this participant's slice of the ``theta`` shard plan.

        The determinism contract of :meth:`sample_rr_sets` makes RR
        sampling partitionable across *processes*, not just pool
        workers: the shard plan (``_shard_counts``) and the per-shard
        seed-sequence spawn tree depend only on ``(theta, shard_size,
        rng)``, and each shard's samples are a pure function of its
        seed sequence. This method spawns the **full** stream list —
        keeping the spawn tree identical to a monolithic run — then
        materializes only the shards with ``index % part_count ==
        part_index``, round-robin so the ragged tail shard doesn't
        always land on the same participant.

        The union of all ``part_count`` partitions contains exactly the
        RR sets a single :meth:`sample_rr_sets` call would have drawn
        (grouped by shard, which per-set aggregates like coverage
        counts are invariant to). Returns ``(collection,
        total_shards)``; shards run in-process — in the sharded
        campaign service the calling worker process *is* the unit of
        parallelism.
        """
        if part_count < 1 or not 0 <= part_index < part_count:
            raise ConfigurationError(
                f"invalid partition {part_index}/{part_count}"
            )
        rng = ensure_rng(rng)
        counts = _shard_counts(theta, self.shard_size)
        streams = spawn_seed_sequences(rng, len(counts))
        shards = [
            _rr_shard(
                graph, target_arr, edge_probs, counts[i], streams[i],
                self.mode, self.batch_size,
            )
            for i in range(part_index, len(counts), part_count)
        ]
        collection = self._collect_rr(shards, graph.num_nodes)
        obs.count("rr.samples_drawn", len(collection))
        obs.count("rr.members", int(collection.members.size))
        return collection, len(counts)

    @staticmethod
    def _collect_rr(shards: list, num_nodes: int) -> RRCollection:
        if not shards:
            return RRCollection(
                np.empty(0, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                num_nodes,
            )
        return RRCollection.concat(
            [
                RRCollection(members, indptr, num_nodes)
                for members, indptr in shards
            ]
        )

    def cascade_target_counts(
        self,
        graph: TagGraph,
        seed_arr: np.ndarray,
        edge_probs: np.ndarray,
        num_samples: int,
        target_arr: np.ndarray,
        rng: np.random.Generator | int | None = None,
        budget: RunBudget | None = None,
    ) -> np.ndarray:
        """Per-cascade activated-target counts for ``num_samples`` runs.

        Deterministic for a fixed master ``rng`` regardless of
        ``workers`` and of any failure/retry schedule; the Monte-Carlo
        spread estimate is the mean.
        """
        rng = ensure_rng(rng)
        signature = self._signature(
            "cascade", num_samples, rng, extra=seed_arr.size
        )
        counts = _shard_counts(num_samples, self.shard_size)
        streams = spawn_seed_sequences(rng, len(counts))
        graph_ref = self._graph_ref(graph)
        probs_ref: object = edge_probs
        shared_probs = None
        if isinstance(graph_ref, CSRGraphHandle):
            shared_probs = SharedProbs(edge_probs, spill_dir=self.spill_dir)
            probs_ref = shared_probs.handle
        tasks = [
            (graph_ref, seed_arr, probs_ref, count, target_arr, stream,
             self.mode, self.batch_size)
            for count, stream in zip(counts, streams)
        ]

        def pack(shards):
            return {"counts": np.concatenate(shards)}

        def split(arrays, shards_done):
            return _split_count_prefix(arrays["counts"], counts, shards_done)

        with obs.span(
            "engine.cascade_target_counts", num_samples=int(num_samples),
            mode=self.mode, workers=self.workers,
        ):
            try:
                if budget is not None:
                    budget.charge_samples(num_samples)
                shards = self._run_op(
                    _cascade_shard, tasks, counts, signature, pack, split,
                    budget,
                    transport_penalty=self._transport_penalty(graph),
                )
            except BudgetExceededError as exc:
                if exc.partial is None or isinstance(exc.partial, list):
                    exc.partial = (
                        np.concatenate(exc.partial)
                        if exc.partial else np.empty(0, dtype=np.int64)
                    )
                raise
            finally:
                if shared_probs is not None:
                    shared_probs.unlink()
            if shards:
                flat = np.concatenate(shards)
            else:
                flat = np.empty(0, dtype=np.int64)
        obs.count("cascade.samples_drawn", int(flat.size))
        return flat

    def estimate_spread(
        self,
        graph: TagGraph,
        seed_arr: np.ndarray,
        edge_probs: np.ndarray,
        num_samples: int,
        target_arr: np.ndarray,
        rng: np.random.Generator | int | None = None,
        budget: RunBudget | None = None,
    ) -> float:
        """Monte-Carlo ``σ(S, T, C1)`` through the engine (Eq. 5).

        On a budget stop the re-raised error's ``partial`` is the mean
        over however many cascades completed (``0.0`` when none did),
        matching the scalar path's partial shape.
        """
        try:
            counts = self.cascade_target_counts(
                graph, seed_arr, edge_probs, num_samples, target_arr, rng,
                budget=budget,
            )
        except BudgetExceededError as exc:
            done = exc.partial
            if isinstance(done, np.ndarray) and done.size > 0:
                exc.partial = float(done.sum()) / done.size
            else:
                exc.partial = 0.0
            raise
        if counts.size == 0:
            return 0.0
        return float(counts.sum()) / counts.size


class QueryEngineView(SamplingEngine):
    """A telemetry-isolated view over a shared :class:`SamplingEngine`.

    Created by :meth:`SamplingEngine.for_query`. The view inherits every
    sampling knob (mode, workers, shard size, batch size, retry policy,
    fault plan, parallel threshold, spill dir) and *delegates pool and
    shared-CSR management to the parent*, so any number of views share
    one set of worker processes and one published copy of each graph.
    What it does **not** share:

    * ``telemetry`` — a fresh :class:`RunTelemetry` bound to the
      registry passed in (or the caller thread's active observation),
      so ``runtime.*`` counters are exact per query;
    * the operation counter — each view numbers its own operations;
    * ``checkpoint`` — always ``None`` (concurrent queries must not
      interleave writes into one checkpoint directory).

    The determinism contract is unchanged: a view runs the same shards
    through the same pool, so results are bit-identical to running the
    parent engine (or a fresh engine with the same knobs) solo.
    """

    def __init__(self, parent: SamplingEngine, registry=None) -> None:
        # Deliberately does NOT call SamplingEngine.__init__: knobs are
        # inherited from the parent, never re-validated or re-defaulted.
        self._parent = parent
        self.mode = parent.mode
        self.workers = parent.workers
        self.shard_size = parent.shard_size
        self.batch_size = parent.batch_size
        self.retry_policy = parent.retry_policy
        self.fault_plan = parent.fault_plan
        self.checkpoint = None
        self.parallel_threshold = parent.parallel_threshold
        self.spill_dir = parent.spill_dir
        self.telemetry = RunTelemetry(
            registry=registry
            if registry is not None
            else obs.current_registry()
        )
        self._pool = None  # unused; pool access goes through the parent
        self._pool_lock = parent._pool_lock
        self._op_counter = 0

    @property
    def parent(self) -> SamplingEngine:
        """The engine whose pool this view shares."""
        return self._parent

    def pool(self) -> ProcessPoolExecutor:
        return self._parent.pool()

    def rebuild_pool(self) -> ProcessPoolExecutor:
        return self._parent.rebuild_pool()

    def abort_pool(self) -> None:
        self._parent.abort_pool()

    def _shared_csr(self, graph: TagGraph) -> SharedCSR:
        """Shared-CSR segments live with the parent, like the pool."""
        return self._parent._shared_csr(graph)

    def _unlink_shared(self) -> None:
        """No-op: the parent owns the shared segments."""

    def close(self) -> None:
        """No-op: the parent owns (and eventually closes) the pool."""

    def for_query(self, registry=None) -> "QueryEngineView":
        """Views chain back to the parent, never stack."""
        return QueryEngineView(self._parent, registry=registry)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryEngineView(mode={self.mode!r}, workers={self.workers}, "
            f"telemetry=[{self.telemetry.summary()}])"
        )
