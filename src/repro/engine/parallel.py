"""The sampling engine: shard-parallel RR-set and cascade fan-out.

Sketch-based influence maximization is embarrassingly parallel across
samples (Cohen et al., VLDB 2014): each RR set / cascade only reads the
graph. :class:`SamplingEngine` exploits that with a
``ProcessPoolExecutor``-backed driver that shards the θ samples into
fixed-size shards and runs each shard with its own child RNG stream.

Determinism contract
--------------------
Sharding depends only on ``(theta, shard_size)`` — never on ``workers``
— and each shard's generator is spawned from the master generator's
``SeedSequence`` (``Generator.spawn``), so shard ``i`` produces the same
samples no matter which worker runs it or in what order shards finish.
Results are concatenated in shard order. Consequences:

* same master seed ⇒ bit-identical output for any ``workers`` count;
* the serial path (``workers=1``) runs in-process — no pool, no pickling;
* successive calls on one engine with a shared generator consume the
  generator's spawn counter, so a session remains replayable end to end.

The ``mode`` knob selects the per-shard kernel: ``"vectorized"`` uses
the frontier-batched kernels of :mod:`repro.engine.frontier`;
``"scalar"`` runs the original per-edge Python loops (the correctness
oracle), which keeps scalar-vs-vectorized comparisons honest under the
identical sharding and driver overheads.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.engine.frontier import batched_cascade_counts, batched_rr_members
from repro.engine.rr_storage import RRCollection
from repro.exceptions import ConfigurationError
from repro.graphs.tag_graph import TagGraph
from repro.utils.rng import ensure_rng, spawn_generators

MODES = ("scalar", "vectorized")

#: Default samples per shard. Small enough that a handful of shards
#: exist even at pilot sizes (so ``workers=4`` has work to spread),
#: large enough that per-shard dispatch overhead is negligible.
DEFAULT_SHARD_SIZE = 512


def _shard_counts(total: int, shard_size: int) -> list[int]:
    """Split ``total`` samples into fixed-size shards (last one ragged)."""
    if total <= 0:
        return []
    full, rest = divmod(total, shard_size)
    return [shard_size] * full + ([rest] if rest else [])


def _rr_shard(
    graph: TagGraph,
    target_arr: np.ndarray,
    edge_probs: np.ndarray,
    count: int,
    rng: np.random.Generator,
    mode: str,
    batch_size: int | None,
) -> tuple[np.ndarray, np.ndarray]:
    """One shard of RR samples; module-level so process pools can pickle it."""
    roots = rng.choice(target_arr, size=count)
    if mode == "scalar":
        from repro.sketch.rr_sets import reverse_reachable_set

        sets = [
            reverse_reachable_set(graph, int(root), edge_probs, rng)
            for root in roots
        ]
        flat = RRCollection.from_sets(sets, graph.num_nodes)
        return flat.members, flat.indptr
    return batched_rr_members(
        graph, roots, edge_probs, rng, batch_size=batch_size
    )


def _cascade_shard(
    graph: TagGraph,
    seed_arr: np.ndarray,
    edge_probs: np.ndarray,
    count: int,
    target_arr: np.ndarray,
    rng: np.random.Generator,
    mode: str,
    batch_size: int | None,
) -> np.ndarray:
    """One shard of IC cascades; returns per-sample target counts."""
    if mode == "scalar":
        from repro.diffusion.cascade import simulate_cascade

        counts = np.empty(count, dtype=np.int64)
        for i in range(count):
            active = simulate_cascade(graph, seed_arr, edge_probs, rng)
            counts[i] = int(active[target_arr].sum())
        return counts
    return batched_cascade_counts(
        graph, seed_arr, edge_probs, count, target_arr, rng,
        batch_size=batch_size,
    )


class SamplingEngine:
    """Frontier-batched, optionally multi-process sampling driver.

    Parameters
    ----------
    mode:
        ``"vectorized"`` (frontier-batched numpy kernels, the default)
        or ``"scalar"`` (the original Python loops, as oracle).
    workers:
        Process count; ``1`` (default) runs in-process. Results are
        identical for any value — see the module determinism contract.
    shard_size:
        Samples per shard. Part of the determinism contract: changing it
        changes the RNG stream layout, so outputs for a fixed seed are
        only comparable at equal ``shard_size``.
    batch_size:
        Samples per frontier batch inside a shard (vectorized mode);
        ``None`` sizes batches from the node count automatically.
        Does not affect results, only memory/locality.
    """

    def __init__(
        self,
        mode: str = "vectorized",
        workers: int = 1,
        shard_size: int = DEFAULT_SHARD_SIZE,
        batch_size: int | None = None,
    ) -> None:
        if mode not in MODES:
            raise ConfigurationError(
                f"unknown engine mode {mode!r}; expected one of {MODES}"
            )
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        if shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be >= 1, got {shard_size}"
            )
        self.mode = mode
        self.workers = int(workers)
        self.shard_size = int(shard_size)
        self.batch_size = batch_size
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (no-op for the serial engine)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SamplingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SamplingEngine(mode={self.mode!r}, workers={self.workers}, "
            f"shard_size={self.shard_size})"
        )

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def _run_shards(self, worker, tasks: list[tuple]) -> list:
        """Run shard tasks, preserving shard order in the result list."""
        if self.workers == 1 or len(tasks) <= 1:
            return [worker(*task) for task in tasks]
        return list(self._executor().map(worker, *zip(*tasks)))

    def sample_rr_sets(
        self,
        graph: TagGraph,
        target_arr: np.ndarray,
        edge_probs: np.ndarray,
        theta: int,
        rng: np.random.Generator | int | None = None,
    ) -> RRCollection:
        """Sample ``theta`` targeted RR sets (roots uniform over targets).

        ``target_arr`` must be a pre-validated int64 node-id array (see
        :func:`repro.utils.validation.as_target_array`). Returns a flat
        :class:`RRCollection`, deterministic for a fixed master ``rng``
        regardless of ``workers``.
        """
        rng = ensure_rng(rng)
        counts = _shard_counts(theta, self.shard_size)
        streams = spawn_generators(rng, len(counts))
        tasks = [
            (graph, target_arr, edge_probs, count, stream, self.mode,
             self.batch_size)
            for count, stream in zip(counts, streams)
        ]
        shards = self._run_shards(_rr_shard, tasks)
        if not shards:
            return RRCollection(
                np.empty(0, dtype=np.int64),
                np.zeros(1, dtype=np.int64),
                graph.num_nodes,
            )
        return RRCollection.concat(
            [
                RRCollection(members, indptr, graph.num_nodes)
                for members, indptr in shards
            ]
        )

    def cascade_target_counts(
        self,
        graph: TagGraph,
        seed_arr: np.ndarray,
        edge_probs: np.ndarray,
        num_samples: int,
        target_arr: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Per-cascade activated-target counts for ``num_samples`` runs.

        Deterministic for a fixed master ``rng`` regardless of
        ``workers``; the Monte-Carlo spread estimate is the mean.
        """
        rng = ensure_rng(rng)
        counts = _shard_counts(num_samples, self.shard_size)
        streams = spawn_generators(rng, len(counts))
        tasks = [
            (graph, seed_arr, edge_probs, count, target_arr, stream,
             self.mode, self.batch_size)
            for count, stream in zip(counts, streams)
        ]
        shards = self._run_shards(_cascade_shard, tasks)
        if not shards:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(shards)

    def estimate_spread(
        self,
        graph: TagGraph,
        seed_arr: np.ndarray,
        edge_probs: np.ndarray,
        num_samples: int,
        target_arr: np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> float:
        """Monte-Carlo ``σ(S, T, C1)`` through the engine (Eq. 5)."""
        counts = self.cascade_target_counts(
            graph, seed_arr, edge_probs, num_samples, target_arr, rng
        )
        if counts.size == 0:
            return 0.0
        return float(counts.sum()) / counts.size
