"""Frontier-batched (level-synchronous) BFS kernels.

The scalar traversals in :mod:`repro.sketch.rr_sets` and
:mod:`repro.diffusion.cascade` process one node and one edge at a time
in Python. The kernels here expand the *whole frontier* per step with
numpy CSR gathers: the edge slices of every frontier node are
materialized in one ``np.repeat``/``np.arange`` pass, all frontier
coins are flipped in a single ``rng.random(E_frontier)`` call, and
newly-visited nodes are deduplicated with boolean masks — no per-edge
Python loop anywhere.

Two flavours are provided for each traversal:

* single-sample (``rr_frontier``, ``cascade_frontier``, …) — drop-in
  replacements for the scalar functions, used where per-sample state
  (e.g. a working-graph mask) differs between samples;
* multi-sample batched (``batched_rr_frontier``,
  ``batched_cascade_counts``) — advance *all* samples of a batch
  level-synchronously over a flattened ``(sample, node)`` state space,
  which is where the big constant-factor wins come from because tiny
  per-sample frontiers are fused into one large gather.

A third tier lives in :mod:`repro.engine.bitworld` and is fronted here
by ``bitparallel_rr_members`` / ``bitparallel_cascade_counts``: 64
possible worlds packed per uint64 word, with counter-based coins that
are a pure function of ``(key, world, edge)`` — no generator state at
all, so shards replay bit-identically from ``(roots, probs, key)``.

All kernels are distributionally identical to their scalar
counterparts (each edge coin is still flipped at most once per sample)
but consume the RNG stream in a different order, so outputs for a fixed
seed differ bitwise from the scalar oracle. Equivalence is asserted
statistically and against the exact possible-world oracle in the test
suite.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro import obs
from repro.engine import bitworld
from repro.graphs.tag_graph import TagGraph
from repro.obs.profile import kernel_timer
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_node_array, check_node_ids

#: Soft cap on the ``samples × nodes`` visited matrix of one batch.
#: 2**22 bytes (4 MiB of bools) keeps the working set cache-friendly
#: while still batching hundreds of samples on the evaluation graphs.
DEFAULT_BATCH_CELLS = 1 << 22


def _batch_size_for(num_nodes: int, requested: int | None) -> int:
    """Samples per batch so the visited matrix stays ~``DEFAULT_BATCH_CELLS``."""
    if requested is not None:
        return max(1, int(requested))
    return max(1, DEFAULT_BATCH_CELLS // max(num_nodes, 1))


def _frontier_edge_positions(
    indptr: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """CSR positions of every edge adjacent to ``frontier``.

    Returns ``(positions, degrees)`` where ``positions`` indexes the CSR
    edge-id array and ``degrees[i]`` is how many consecutive positions
    belong to ``frontier[i]`` — the vectorized equivalent of slicing
    ``indptr[v]:indptr[v+1]`` per node.
    """
    starts = indptr[frontier]
    degrees = indptr[frontier + 1] - starts
    total = int(degrees.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), degrees
    cumulative = np.cumsum(degrees)
    positions = np.arange(total, dtype=np.int64) + np.repeat(
        starts - (cumulative - degrees), degrees
    )
    return positions, degrees


def _expand(
    indptr: np.ndarray,
    csr_edges: np.ndarray,
    frontier: np.ndarray,
) -> np.ndarray:
    """All edge ids adjacent to the frontier, in CSR order."""
    positions, _ = _frontier_edge_positions(indptr, frontier)
    return csr_edges[positions]


# ----------------------------------------------------------------------
# Single-sample kernels (drop-in for the scalar traversals)
# ----------------------------------------------------------------------
def rr_frontier(
    graph: TagGraph,
    root: int,
    edge_probs: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Vectorized :func:`~repro.sketch.rr_sets.reverse_reachable_set`.

    Level-synchronous reverse BFS with one coin batch per level.
    Returns member node ids in discovery (level) order, root first.
    """
    rng = ensure_rng(rng)
    check_node_ids([root], graph.num_nodes, context="rr_frontier")

    rev_indptr, rev_edges = graph.reverse_csr()
    src = graph.src
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    levels = [frontier]
    while frontier.size:
        eids = _expand(rev_indptr, rev_edges, frontier)
        if eids.size == 0:
            break
        live = eids[rng.random(eids.size) < edge_probs[eids]]
        parents = src[live]
        parents = np.unique(parents[~visited[parents]])
        visited[parents] = True
        frontier = parents
        if parents.size:
            levels.append(parents)
    return np.concatenate(levels)


def rr_fixed_frontier(
    graph: TagGraph, root: int, edge_mask: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`~repro.sketch.rr_sets.rr_set_from_edge_mask`.

    Deterministic: returns exactly the reachability set of ``root`` in
    the fixed world, in level order.
    """
    check_node_ids([root], graph.num_nodes, context="rr_fixed_frontier")

    rev_indptr, rev_edges = graph.reverse_csr()
    src = graph.src
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    levels = [frontier]
    while frontier.size:
        eids = _expand(rev_indptr, rev_edges, frontier)
        parents = src[eids[edge_mask[eids]]]
        parents = np.unique(parents[~visited[parents]])
        visited[parents] = True
        frontier = parents
        if parents.size:
            levels.append(parents)
    return np.concatenate(levels)


def hybrid_rr_frontier(
    graph: TagGraph,
    root: int,
    working_mask: np.ndarray,
    covered: np.ndarray,
    edge_probs: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Vectorized hybrid reverse BFS (indexed edges + online coins).

    Indexed edges (``covered``) follow ``working_mask`` deterministically;
    the rest flip online coins at the aggregated probability — the
    frontier-batched analogue of the I-TRS/LL-TRS hybrid traversal.
    """
    rng = ensure_rng(rng)
    check_node_ids([root], graph.num_nodes, context="hybrid_rr_frontier")

    rev_indptr, rev_edges = graph.reverse_csr()
    src = graph.src
    visited = np.zeros(graph.num_nodes, dtype=bool)
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    levels = [frontier]
    while frontier.size:
        eids = _expand(rev_indptr, rev_edges, frontier)
        if eids.size == 0:
            break
        is_covered = covered[eids]
        coins = rng.random(eids.size) < edge_probs[eids]
        exists = np.where(is_covered, working_mask[eids], coins)
        parents = src[eids[exists]]
        parents = np.unique(parents[~visited[parents]])
        visited[parents] = True
        frontier = parents
        if parents.size:
            levels.append(parents)
    return np.concatenate(levels)


def cascade_frontier(
    graph: TagGraph,
    seeds: Iterable[int],
    edge_probs: np.ndarray,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Vectorized :func:`~repro.diffusion.cascade.simulate_cascade`.

    Returns the boolean activation mask (length ``n``), like the scalar
    version; each edge's coin is flipped at most once.
    """
    rng = ensure_rng(rng)
    seed_arr = np.unique(np.asarray(list(seeds), dtype=np.int64))
    check_node_array(seed_arr, graph.num_nodes, context="cascade_frontier")

    fwd_indptr, fwd_edges = graph.forward_csr()
    dst = graph.dst
    active = np.zeros(graph.num_nodes, dtype=bool)
    active[seed_arr] = True
    frontier = seed_arr
    while frontier.size:
        eids = _expand(fwd_indptr, fwd_edges, frontier)
        if eids.size == 0:
            break
        live = eids[rng.random(eids.size) < edge_probs[eids]]
        children = dst[live]
        children = np.unique(children[~active[children]])
        active[children] = True
        frontier = children
    return active


# ----------------------------------------------------------------------
# Multi-sample batched kernels
# ----------------------------------------------------------------------
def _batched_reverse_bfs(
    graph: TagGraph,
    roots: np.ndarray,
    edge_probs: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """One batch of independent RR samples, advanced level-synchronously.

    State lives in a ``(batch, n)`` visited matrix; the frontier is a
    pair of ``(sample, node)`` arrays so all samples share each gather
    and each coin batch. Returns ``(members, indptr)`` in CSR layout —
    ``members[indptr[i]:indptr[i+1]]`` is sample ``i``'s RR set in level
    order (root first, stable).
    """
    n = graph.num_nodes
    batch = int(roots.size)
    rev_indptr, rev_edges = graph.reverse_csr()
    src = graph.src
    # Hoisted flag: profiling must never add per-level work when off.
    profiling = obs.profiling_enabled()

    visited = np.zeros((batch, n), dtype=bool)
    frontier_sample = np.arange(batch, dtype=np.int64)
    frontier_node = roots.astype(np.int64, copy=True)
    visited[frontier_sample, frontier_node] = True
    sample_chunks = [frontier_sample]
    node_chunks = [frontier_node]

    while frontier_node.size:
        if profiling:
            obs.record("frontier.rr_level_size", frontier_node.size)
        positions, degrees = _frontier_edge_positions(rev_indptr, frontier_node)
        if positions.size == 0:
            break
        eids = rev_edges[positions]
        edge_sample = np.repeat(frontier_sample, degrees)
        live = rng.random(eids.size) < edge_probs[eids]
        parent_sample = edge_sample[live]
        parent_node = src[eids[live]]
        fresh = ~visited[parent_sample, parent_node]
        parent_sample = parent_sample[fresh]
        parent_node = parent_node[fresh]
        if parent_sample.size == 0:
            break
        # Dedup (sample, node) pairs discovered twice within this level.
        flat = np.unique(parent_sample * n + parent_node)
        parent_sample, parent_node = np.divmod(flat, n)
        visited[parent_sample, parent_node] = True
        sample_chunks.append(parent_sample)
        node_chunks.append(parent_node)
        frontier_sample, frontier_node = parent_sample, parent_node

    samples = np.concatenate(sample_chunks)
    nodes = np.concatenate(node_chunks)
    order = np.argsort(samples, kind="stable")
    members = nodes[order]
    counts = np.bincount(samples, minlength=batch)
    indptr = np.zeros(batch + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return members, indptr


def batched_rr_members(
    graph: TagGraph,
    roots: np.ndarray,
    edge_probs: np.ndarray,
    rng: np.random.Generator | int | None = None,
    batch_size: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample one RR set per root, batched; return flat CSR arrays.

    The batched state space is chunked so the visited matrix stays small
    (see :data:`DEFAULT_BATCH_CELLS`); chunks are processed in order so
    the result is deterministic for a fixed ``rng``.
    """
    rng = ensure_rng(rng)
    roots = np.asarray(roots, dtype=np.int64)
    check_node_array(roots, graph.num_nodes, context="batched_rr_members")
    batch = _batch_size_for(graph.num_nodes, batch_size)

    member_chunks: list[np.ndarray] = []
    count_chunks: list[np.ndarray] = []
    for lo in range(0, roots.size, batch):
        with kernel_timer("kernel.batched_reverse_bfs"):
            members, indptr = _batched_reverse_bfs(
                graph, roots[lo:lo + batch], edge_probs, rng
            )
        member_chunks.append(members)
        count_chunks.append(np.diff(indptr))
    members = (
        np.concatenate(member_chunks)
        if member_chunks
        else np.empty(0, dtype=np.int64)
    )
    counts = (
        np.concatenate(count_chunks)
        if count_chunks
        else np.empty(0, dtype=np.int64)
    )
    indptr = np.zeros(roots.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return members, indptr


def batched_cascade_counts(
    graph: TagGraph,
    seeds: np.ndarray,
    edge_probs: np.ndarray,
    num_samples: int,
    target_arr: np.ndarray,
    rng: np.random.Generator | int | None = None,
    batch_size: int | None = None,
) -> np.ndarray:
    """Run ``num_samples`` independent IC cascades; count targets per sample.

    All cascades of a batch advance together over the flattened
    ``(sample, node)`` state space. Returns an int array of length
    ``num_samples`` with the number of activated targets per cascade.
    """
    rng = ensure_rng(rng)
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    check_node_array(seeds, graph.num_nodes, context="batched_cascade_counts")
    target_arr = np.asarray(target_arr, dtype=np.int64)
    if seeds.size == 0 or num_samples <= 0:
        return np.zeros(max(num_samples, 0), dtype=np.int64)

    n = graph.num_nodes
    fwd_indptr, fwd_edges = graph.forward_csr()
    dst = graph.dst
    batch = _batch_size_for(n, batch_size)

    profiling = obs.profiling_enabled()
    counts_chunks: list[np.ndarray] = []
    for lo in range(0, num_samples, batch):
        with kernel_timer("kernel.batched_cascade"):
            b = min(batch, num_samples - lo)
            active = np.zeros((b, n), dtype=bool)
            frontier_sample = np.repeat(
                np.arange(b, dtype=np.int64), seeds.size
            )
            frontier_node = np.tile(seeds, b)
            active[frontier_sample, frontier_node] = True
            while frontier_node.size:
                if profiling:
                    obs.record(
                        "frontier.cascade_level_size", frontier_node.size
                    )
                positions, degrees = _frontier_edge_positions(
                    fwd_indptr, frontier_node
                )
                if positions.size == 0:
                    break
                eids = fwd_edges[positions]
                edge_sample = np.repeat(frontier_sample, degrees)
                live = rng.random(eids.size) < edge_probs[eids]
                child_sample = edge_sample[live]
                child_node = dst[eids[live]]
                fresh = ~active[child_sample, child_node]
                child_sample = child_sample[fresh]
                child_node = child_node[fresh]
                if child_sample.size == 0:
                    break
                flat = np.unique(child_sample * n + child_node)
                child_sample, child_node = np.divmod(flat, n)
                active[child_sample, child_node] = True
                frontier_sample, frontier_node = child_sample, child_node
            counts_chunks.append(active[:, target_arr].sum(axis=1))
    return np.concatenate(counts_chunks).astype(np.int64)


# ----------------------------------------------------------------------
# Bit-parallel kernels (64 possible worlds per uint64 lane)
# ----------------------------------------------------------------------
def bitparallel_rr_members(
    graph,
    roots: np.ndarray,
    edge_probs: np.ndarray,
    key: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample one RR set per root with the bit-parallel world kernel.

    Same flat-CSR return contract as :func:`batched_rr_members`, but the
    coins come from the counter-based stream of
    :mod:`repro.engine.bitworld` keyed by ``key`` — deterministic in
    ``(roots, edge_probs, key)`` alone, with no generator state to
    thread. 64 possible worlds share every uint64 word of traversal
    state; see the kernel module for the exact packing and the
    replayable-oracle contract.

    ``graph`` may be a :class:`~repro.graphs.tag_graph.TagGraph` or a
    :class:`~repro.engine.shared_csr.CSRGraphView`.
    """
    roots = np.asarray(roots, dtype=np.int64)
    check_node_array(roots, graph.num_nodes,
                     context="bitparallel_rr_members")
    rev_indptr, rev_edges = graph.reverse_csr()
    with kernel_timer("kernel.bitworld_rr"):
        thr53 = bitworld.coin_thresholds(edge_probs)
        live_indptr, live_edges = bitworld.live_csr(
            rev_indptr, rev_edges, edge_probs
        )
        return bitworld.bit_rr_members(
            graph.num_nodes, graph.num_edges, live_indptr, live_edges,
            graph.src, roots, thr53, key,
        )


def bitparallel_cascade_counts(
    graph,
    seeds: np.ndarray,
    edge_probs: np.ndarray,
    num_samples: int,
    target_arr: np.ndarray,
    key: int,
) -> np.ndarray:
    """Run ``num_samples`` IC cascades bit-parallel; count targets each.

    Same return contract as :func:`batched_cascade_counts`; cascade
    ``i`` lives in lane ``i % 64`` of world block ``i // 64`` and the
    coin for edge ``e`` in that world is a pure function of
    ``(key, i, e)`` — see :mod:`repro.engine.bitworld`.
    """
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    check_node_array(seeds, graph.num_nodes,
                     context="bitparallel_cascade_counts")
    target_arr = np.asarray(target_arr, dtype=np.int64)
    if seeds.size == 0 or num_samples <= 0:
        return np.zeros(max(num_samples, 0), dtype=np.int64)
    fwd_indptr, fwd_edges = graph.forward_csr()
    with kernel_timer("kernel.bitworld_cascade"):
        thr53 = bitworld.coin_thresholds(edge_probs)
        live_indptr, live_edges = bitworld.live_csr(
            fwd_indptr, fwd_edges, edge_probs
        )
        return bitworld.bit_cascade_counts(
            graph.num_nodes, graph.num_edges, live_indptr, live_edges,
            graph.dst, seeds, num_samples, target_arr, thr53, key,
        )
