"""Statistical check of Theorem 7 — monotone spread across iterations.

Theorem 7 guarantees monotone non-decrease when both sub-solvers are
exact; ours are heuristics evaluated by Monte-Carlo, so the check is
statistical: across several runs, (a) the *best* snapshot never falls
below the initial condition, (b) full-round spreads are approximately
non-decreasing up to an MC-noise tolerance, and (c) the returned
solution equals the best measured snapshot.
"""

from __future__ import annotations

import pytest

from repro import JointConfig, JointQuery, SketchConfig, TagSelectionConfig, jointly_select
from repro.datasets import bfs_targets, community_targets

CFG = JointConfig(
    max_rounds=4,
    sketch=SketchConfig(pilot_samples=80, theta_min=200, theta_max=800),
    tag_config=TagSelectionConfig(
        per_pair_paths=4, rr_theta=400, max_path_targets=20
    ),
    eval_samples=200,
)


@pytest.mark.parametrize("run_seed", [0, 1, 2])
def test_best_never_below_initialization(small_yelp, run_seed):
    targets = community_targets(small_yelp, "vegas", size=20, rng=run_seed)
    result = jointly_select(
        small_yelp.graph, JointQuery(targets, k=3, r=4), CFG, rng=run_seed
    )
    assert result.spread >= result.history[0].spread - 1e-9


@pytest.mark.parametrize("run_seed", [0, 1])
def test_round_spreads_approximately_monotone(small_yelp, run_seed):
    targets = community_targets(small_yelp, "vegas", size=20, rng=run_seed)
    result = jointly_select(
        small_yelp.graph, JointQuery(targets, k=3, r=4), CFG, rng=run_seed
    )
    # Full-round (integer-step) spreads; allow MC noise of 15% of |T|.
    rounds = [h.spread for h in result.history if h.step == int(h.step)]
    tolerance = 0.15 * len(targets)
    for earlier, later in zip(rounds, rounds[1:]):
        assert later >= earlier - tolerance


def test_returned_equals_best_snapshot(small_lastfm):
    targets = bfs_targets(small_lastfm.graph, 20)
    result = jointly_select(
        small_lastfm.graph, JointQuery(targets, k=3, r=4), CFG, rng=5
    )
    best = max(result.history, key=lambda h: h.spread)
    assert result.spread == pytest.approx(best.spread)
    assert result.seeds == best.seeds
    assert result.tags == best.tags


def test_seed_step_never_hurts_given_fixed_tags(small_yelp):
    # The seed half-step re-optimizes with tags unchanged: its measured
    # spread should not fall below the preceding snapshot by more than
    # MC noise (this is the Eq. 18 inequality, statistically).
    targets = community_targets(small_yelp, "vegas", size=20, rng=3)
    result = jointly_select(
        small_yelp.graph, JointQuery(targets, k=3, r=4), CFG, rng=3
    )
    by_step = {h.step: h.spread for h in result.history}
    tolerance = 0.15 * len(targets)
    for step, spread in by_step.items():
        if step != int(step):  # a seed half-step (x.5)
            previous = by_step.get(step - 0.5)
            if previous is not None:
                assert spread >= previous - tolerance
