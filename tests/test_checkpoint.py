"""Checkpoint/resume tests: kill a run mid-flight, resume, match bits.

The checkpoint layer's contract is *deterministic replay with a memo
cache* (see ``repro/engine/checkpoint.py``): a resumed run replays the
same operation sequence and splices in checkpointed shard prefixes.
These tests interrupt runs at exact shard boundaries with the fault
harness, then assert the resumed output is bit-identical to an
uninterrupted run — the strongest statement the resume model makes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import JointConfig, SketchConfig, TagSelectionConfig
from repro.core import CampaignSession
from repro.datasets import community_targets
from repro.engine import (
    CheckpointManager,
    FaultPlan,
    RetryPolicy,
    SamplingEngine,
)
from repro.engine.rr_storage import RRCollection
from repro.exceptions import ConfigurationError
from repro.sketch.trs import trs_select_seeds
from repro.utils.validation import as_target_array

FAST = RetryPolicy(backoff_base=0.001, backoff_max=0.005, jitter=0.0)

SIG = {"kind": "rr", "theta": 64, "mode": "vectorized"}


def _arrays(n=5, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "members": rng.integers(0, 100, size=n * 7),
        "indptr": np.arange(0, n * 7 + 1, 7),
    }


# ---------------------------------------------------------------------------
# CheckpointManager unit behaviour
# ---------------------------------------------------------------------------


class TestCheckpointManager:
    def test_roundtrip(self, tmp_path):
        manager = CheckpointManager(tmp_path, resume=True)
        arrays = _arrays()
        manager.save(0, SIG, arrays, shards_done=3, total_shards=8)
        loaded = manager.load(0, SIG)
        assert loaded is not None
        got, done, total = loaded
        assert (done, total) == (3, 8)
        np.testing.assert_array_equal(got["members"], arrays["members"])
        np.testing.assert_array_equal(got["indptr"], arrays["indptr"])

    def test_signature_mismatch_is_silently_ignored(self, tmp_path):
        manager = CheckpointManager(tmp_path, resume=True)
        manager.save(0, SIG, _arrays(), shards_done=3, total_shards=8)
        other = dict(SIG, theta=128)
        assert manager.load(0, other) is None

    def test_fresh_run_never_loads(self, tmp_path):
        writer = CheckpointManager(tmp_path, resume=True)
        writer.save(0, SIG, _arrays(), shards_done=3, total_shards=8)
        fresh = CheckpointManager(tmp_path, resume=False)
        assert fresh.load(0, SIG) is None
        assert writer.op_path(0).exists()  # file untouched

    def test_corrupt_file_recomputes(self, tmp_path):
        manager = CheckpointManager(tmp_path, resume=True)
        manager.save(0, SIG, _arrays(), shards_done=3, total_shards=8)
        manager.op_path(0).write_bytes(b"not an npz archive")
        assert manager.load(0, SIG) is None

    def test_missing_file_returns_none(self, tmp_path):
        manager = CheckpointManager(tmp_path, resume=True)
        assert manager.load(7, SIG) is None

    def test_clear_removes_checkpoints(self, tmp_path):
        manager = CheckpointManager(tmp_path, resume=True)
        manager.save(0, SIG, _arrays(), shards_done=2, total_shards=4)
        manager.save(1, SIG, _arrays(seed=1), shards_done=4, total_shards=4)
        manager.clear()
        assert manager.load(0, SIG) is None
        assert list(tmp_path.glob("op*.npz")) == []

    def test_flush_cadence(self, tmp_path):
        manager = CheckpointManager(tmp_path, resume=False, every=4)
        assert not manager.should_flush(0, 2)
        assert manager.should_flush(0, 4)
        assert manager.should_flush(0, 1, force=True)
        manager.save(0, SIG, _arrays(), shards_done=4, total_shards=8)
        assert not manager.should_flush(0, 5)  # only 1 past last flush
        assert manager.should_flush(0, 8)

    def test_cadence_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointManager(tmp_path, every=0)

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        manager = CheckpointManager(tmp_path, resume=True)
        manager.save(0, SIG, _arrays(), shards_done=3, total_shards=8)
        assert list(tmp_path.glob("*.tmp")) == []


# ---------------------------------------------------------------------------
# Engine-level kill-and-resume
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def query(small_yelp):
    graph = small_yelp.graph
    targets = as_target_array(
        list(range(12)), graph.num_nodes, context="test"
    )
    edge_probs = graph.edge_probabilities(list(graph.tags[:3]))
    return graph, targets, edge_probs


def _rr(engine, query, theta=64, seed=11):
    graph, targets, edge_probs = query
    return engine.sample_rr_sets(
        graph, targets, edge_probs, theta, np.random.default_rng(seed)
    )


def test_engine_kill_and_resume_is_bit_identical(tmp_path, query):
    with SamplingEngine(shard_size=8) as engine:
        clean = _rr(engine, query)

    plan = FaultPlan().interrupt_after_shards(3)
    first = CheckpointManager(tmp_path, resume=False, every=1)
    with SamplingEngine(
        shard_size=8, fault_plan=plan, checkpoint=first
    ) as engine:
        with pytest.raises(KeyboardInterrupt):
            _rr(engine, query)
        assert engine.telemetry.checkpoint_writes >= 1
    assert list(tmp_path.glob("op*.npz"))  # interrupt force-flushed

    second = CheckpointManager(tmp_path, resume=True, every=1)
    with SamplingEngine(shard_size=8, checkpoint=second) as engine:
        resumed = _rr(engine, query)
        assert engine.telemetry.checkpoint_loads == 1
    assert isinstance(resumed, RRCollection)
    np.testing.assert_array_equal(clean.members, resumed.members)
    np.testing.assert_array_equal(clean.indptr, resumed.indptr)


def test_completed_op_loads_whole(tmp_path, query):
    first = CheckpointManager(tmp_path, resume=False)
    with SamplingEngine(shard_size=8, checkpoint=first) as engine:
        clean = _rr(engine, query)
        assert engine.telemetry.checkpoint_writes >= 1

    second = CheckpointManager(tmp_path, resume=True)
    with SamplingEngine(shard_size=8, checkpoint=second) as engine:
        resumed = _rr(engine, query)
        # Fully checkpointed op: loaded, no shard recomputed.
        assert engine.telemetry.checkpoint_loads == 1
        assert engine.telemetry.shards_run == 0
    np.testing.assert_array_equal(clean.members, resumed.members)


def test_resume_with_faults_still_matches(tmp_path, query):
    """Resume + retries compose: remaining shards may fail and retry."""
    with SamplingEngine(shard_size=8) as engine:
        clean = _rr(engine, query)

    plan = FaultPlan().interrupt_after_shards(2)
    with SamplingEngine(
        shard_size=8, fault_plan=plan,
        checkpoint=CheckpointManager(tmp_path, resume=False, every=1),
    ) as engine:
        with pytest.raises(KeyboardInterrupt):
            _rr(engine, query)

    retry_plan = FaultPlan().fail_shard(5)
    with SamplingEngine(
        shard_size=8, retry_policy=FAST, fault_plan=retry_plan,
        checkpoint=CheckpointManager(tmp_path, resume=True, every=1),
    ) as engine:
        resumed = _rr(engine, query)
        assert engine.telemetry.shards_retried >= 1
    np.testing.assert_array_equal(clean.members, resumed.members)
    np.testing.assert_array_equal(clean.indptr, resumed.indptr)


# ---------------------------------------------------------------------------
# Pipeline-level resume (trs and the full joint session)
# ---------------------------------------------------------------------------


def test_trs_pipeline_kill_and_resume(tmp_path, small_yelp):
    graph = small_yelp.graph
    tags = list(graph.tags[:3])
    targets = list(range(20))
    config = SketchConfig(pilot_samples=60, theta_min=150, theta_max=400)

    with SamplingEngine(shard_size=16) as engine:
        clean = trs_select_seeds(
            graph, targets, tags, 3, config=config, rng=5, engine=engine
        )

    plan = FaultPlan().interrupt_after_shards(4)
    with SamplingEngine(
        shard_size=16, fault_plan=plan,
        checkpoint=CheckpointManager(tmp_path, resume=False, every=1),
    ) as engine:
        with pytest.raises(KeyboardInterrupt):
            trs_select_seeds(
                graph, targets, tags, 3, config=config, rng=5, engine=engine
            )

    with SamplingEngine(
        shard_size=16,
        checkpoint=CheckpointManager(tmp_path, resume=True, every=1),
    ) as engine:
        resumed = trs_select_seeds(
            graph, targets, tags, 3, config=config, rng=5, engine=engine
        )
        assert engine.telemetry.checkpoint_loads >= 1
    assert resumed.seeds == clean.seeds
    assert resumed.estimated_spread == pytest.approx(clean.estimated_spread)


JOINT_CFG = JointConfig(
    max_rounds=1,
    seed_engine="trs",
    sketch=SketchConfig(pilot_samples=60, theta_min=150, theta_max=400),
    tag_config=TagSelectionConfig(
        per_pair_paths=3, rr_theta=300, max_path_targets=15
    ),
    eval_samples=60,
)


def test_session_joint_kill_and_resume(tmp_path, small_yelp):
    graph = small_yelp.graph
    targets = community_targets(small_yelp, "vegas", size=15, rng=0)

    with SamplingEngine(shard_size=16) as sampler:
        session = CampaignSession(graph, JOINT_CFG, rng=7, sampler=sampler)
        clean = session.joint(targets, k=2, r=3)

    plan = FaultPlan().interrupt_after_shards(5)
    with SamplingEngine(
        shard_size=16, fault_plan=plan,
        checkpoint=CheckpointManager(tmp_path, resume=False, every=1),
    ) as sampler:
        session = CampaignSession(graph, JOINT_CFG, rng=7, sampler=sampler)
        with pytest.raises(KeyboardInterrupt):
            session.joint(targets, k=2, r=3)
    assert list(tmp_path.glob("op*.npz"))

    with SamplingEngine(
        shard_size=16,
        checkpoint=CheckpointManager(tmp_path, resume=True, every=1),
    ) as sampler:
        session = CampaignSession(graph, JOINT_CFG, rng=7, sampler=sampler)
        resumed = session.joint(targets, k=2, r=3)
        assert sampler.telemetry.checkpoint_loads >= 1
    assert resumed.seeds == clean.seeds
    assert resumed.tags == clean.tags
    assert resumed.spread == pytest.approx(clean.spread)


# ---------------------------------------------------------------------------
# CLI surface for the runtime flags
# ---------------------------------------------------------------------------


def test_cli_parses_runtime_flags():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        [
            "seeds", "graph.tsv", "--targets-file", "t.txt",
            "--tags", "a", "-k", "2",
            "--retries", "3", "--deadline", "60", "--max-samples", "1000",
            "--checkpoint-dir", "/tmp/ckpt", "--resume",
        ]
    )
    assert args.retries == 3
    assert args.deadline == pytest.approx(60.0)
    assert args.max_samples == 1000
    assert args.checkpoint_dir == "/tmp/ckpt"
    assert args.resume is True


def test_cli_joint_accepts_runtime_flags():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["joint", "graph.tsv", "--targets-file", "t.txt",
         "-k", "2", "-r", "2", "--checkpoint-dir", "/tmp/ckpt"]
    )
    assert args.checkpoint_dir == "/tmp/ckpt"
    assert args.resume is False
